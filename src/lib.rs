//! PixelsDB — serverless and NL-aided data analytics with flexible service
//! levels and prices.
//!
//! This facade crate re-exports the public API of every PixelsDB subsystem:
//!
//! - [`common`] — values, schemas, columnar batches, errors, JSON.
//! - [`storage`] — the Pixels columnar file format and the object store.
//! - [`catalog`] — database/table metadata and statistics.
//! - [`sql`] — SQL lexer, parser, and AST.
//! - [`planner`] — binder, logical optimizer, physical planner, CF plan split.
//! - [`exec`] — vectorized query execution.
//! - [`sim`] — the discrete-event simulation kernel.
//! - [`obs`] — clocks, tracing spans, and the unified metrics registry.
//! - [`chaos`] — deterministic fault injection and retry/backoff policies.
//! - [`turbo`] — Pixels-Turbo: VM cluster, CF service, coordinator, billing.
//! - [`server`] — the Query Server: service levels, queues, pricing.
//! - [`nl2sql`] — the CodeS-style natural-language-to-SQL service.
//! - [`rover`] — the Pixels-Rover terminal client.
//! - [`workload`] — TPC-H-subset and web-log generators, arrival processes.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use pixels_catalog as catalog;
pub use pixels_chaos as chaos;
pub use pixels_common as common;
pub use pixels_exec as exec;
pub use pixels_nl2sql as nl2sql;
pub use pixels_obs as obs;
pub use pixels_planner as planner;
pub use pixels_rover as rover;
pub use pixels_server as server;
pub use pixels_sim as sim;
pub use pixels_sql as sql;
pub use pixels_storage as storage;
pub use pixels_turbo as turbo;
pub use pixels_workload as workload;
