//! Recovery under injected faults, end-to-end through the query server:
//! transient storage errors are retried invisibly, a failing CF fleet
//! degrades to the VM path without losing the query, and a hard outage
//! still fails cleanly (and bills nothing) once the retry budget is spent.

use pixelsdb::catalog::Catalog;
use pixelsdb::chaos::{FaultInjector, FaultPlan, FaultSite, RetryPolicy, SiteSpec};
use pixelsdb::server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixelsdb::storage::chaos_stack;
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{EngineConfig, QueryEvent, TurboEngine};
use pixelsdb::workload::{load_tpch, TpchConfig};
use std::sync::Arc;

fn deploy(plan: &FaultPlan, cfg: EngineConfig) -> QueryServer {
    let catalog = Catalog::shared();
    let inner = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        inner.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.0005,
            seed: 9,
            row_group_rows: 256,
            files_per_table: 1,
        },
    )
    .unwrap();
    let injector = Arc::new(FaultInjector::new(plan));
    let store = chaos_stack(
        inner,
        injector.clone(),
        RetryPolicy::object_store(),
        pixelsdb::obs::WallClock::shared(),
    );
    let engine = Arc::new(
        TurboEngine::new(catalog, store, cfg)
            .with_registry(pixelsdb::obs::MetricsRegistry::shared())
            .with_chaos(injector),
    );
    QueryServer::new(engine, PriceSchedule::default())
}

fn run(server: &QueryServer, sql: &str, level: ServiceLevel) -> pixelsdb::server::QueryInfo {
    let id = server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: sql.into(),
        level,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    server.wait(id).unwrap()
}

const SQL: &str = "SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus";

#[test]
fn transient_get_errors_are_invisible_to_results_and_billing() {
    // Chunk caching off: warm repeat runs would skip the store entirely and
    // stop drawing from the fault stream. The cache's own behaviour under
    // faults is chaos_soak's prefetch-vs-sync scenario.
    let cfg = EngineConfig {
        chunk_cache_bytes: 0,
        ..EngineConfig::default()
    };
    let clean = deploy(&FaultPlan::none(1), cfg);
    let chaotic = deploy(&FaultPlan::get_errors(1, 0.3), cfg);

    // Three runs draw enough from the fault stream that at least one GET
    // fails; every run must still match the fault-free twin exactly.
    let mut retries = 0;
    let mut retry_events = 0;
    for _ in 0..3 {
        let base = run(&clean, SQL, ServiceLevel::Immediate);
        let info = run(&chaotic, SQL, ServiceLevel::Immediate);
        assert_eq!(info.status, QueryStatus::Finished, "{:?}", info.error);
        assert_eq!(info.result, base.result, "results must be bit-identical");
        assert_eq!(info.scan_bytes, base.scan_bytes, "retries must not re-bill");
        assert_eq!(info.price, base.price);
        retries += info.retries;
        retry_events += info
            .events
            .iter()
            .filter(|e| matches!(e, QueryEvent::StorageRetries { .. }))
            .count();
    }
    assert!(retries > 0, "30% GET errors must have forced retries");
    assert!(retry_events > 0, "retries must surface as QueryInfo events");
}

#[test]
fn failing_cf_fleet_degrades_to_vm_through_the_server() {
    // Every CF attempt crashes. With the single VM slot saturated, an
    // Immediate query is dispatched to CF, loses both fleets, and must
    // still complete by degrading back to the VM path.
    let server = deploy(
        &FaultPlan::cf_crashes(7, 1.0),
        EngineConfig {
            vm_slots: 1,
            cf_fleet_threads: 2,
            ..EngineConfig::default()
        },
    );
    let baseline = run(&server, SQL, ServiceLevel::Relaxed);

    let engine = server.engine().clone();
    let blocker = std::thread::spawn(move || {
        engine
            .execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .unwrap()
    });
    while !server.engine().is_busy() {
        std::thread::yield_now();
    }
    let info = run(&server, SQL, ServiceLevel::Immediate);
    blocker.join().unwrap();

    assert_eq!(info.status, QueryStatus::Finished, "{:?}", info.error);
    assert!(!info.used_cf, "query must have fallen back to the VM tier");
    assert_eq!(
        info.result, baseline.result,
        "degradation preserves results"
    );
    assert!(
        info.events
            .iter()
            .any(|e| matches!(e, QueryEvent::CfDegradedToVm { .. })),
        "degradation must surface in QueryInfo events: {:?}",
        info.events
    );
}

#[test]
fn hard_outage_fails_cleanly_and_bills_nothing() {
    // 100% GET errors, uncapped: the retry budget is exhausted and the
    // query fails with the injected error — no hang, no partial bill.
    let server = deploy(
        &FaultPlan::none(5).with(FaultSite::StorageGet, SiteSpec::errors(1.0)),
        EngineConfig::default(),
    );
    let info = run(&server, SQL, ServiceLevel::Immediate);
    assert_eq!(info.status, QueryStatus::Failed);
    assert!(
        info.error.as_deref().unwrap_or("").contains("injected"),
        "error should surface the injected fault: {:?}",
        info.error
    );
    assert_eq!(info.scan_bytes, 0, "failed reads must never be billed");
    assert_eq!(info.price, 0.0);

    // The exposition still validates and records what happened.
    let text = server.metrics_text();
    pixelsdb::obs::validate_exposition(&text).expect("exposition stays valid");
    let value_of = |needle: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next().unwrap().parse().ok())
            .unwrap_or(0.0)
    };
    assert!(value_of("pixels_storage_gets_failed_total") > 0.0);
    assert!(value_of("pixels_retries_total{site=\"storage_get\"}") > 0.0);
}
