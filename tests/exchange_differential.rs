//! Differential tests for two-stage exchange (shuffle) CF plans.
//!
//! A multi-stage plan hash-partitions intermediate state through the object
//! store between CF stages. That must be invisible everywhere a user can
//! look: every TPC-H join/agg template that shuffles produces the same rows
//! (and, under ORDER BY, the same order) as the single-stage CF path, the
//! direct VM path, and the row-at-a-time scalar oracle — and bills the same
//! bytes, because exchange traffic is provider-side. Edge cases (empty
//! partitions, single-group skew, partition count 1) get dedicated tests,
//! and every run asserts the spill namespace is left empty.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::{RecordBatch, Value};
use pixelsdb::exec::{scalar, ExecContext};
use pixelsdb::planner::{plan_query, plan_shuffle};
use pixelsdb::storage::{InMemoryObjectStore, ObjectStoreRef};
use pixelsdb::turbo::{Decision, EngineConfig, ExchangeStats, TurboEngine};
use pixelsdb::workload::{all_queries, load_tpch, TpchConfig};
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 11,
            row_group_rows: 512,
            files_per_table: 2,
        },
    )
    .unwrap();
    (catalog, store)
}

/// A fresh engine over its own copy of the fixture, so billed bytes are
/// metered from identical cold caches on every engine compared.
fn engine_with(partitions: usize) -> (Arc<TurboEngine>, ObjectStoreRef) {
    let (catalog, store) = fixture();
    let engine = TurboEngine::new(
        catalog,
        store.clone(),
        EngineConfig {
            vm_slots: 1,
            cf_fleet_threads: 2,
            exchange_partitions: partitions,
            ..EngineConfig::default()
        },
    );
    (Arc::new(engine), store)
}

/// Saturate the engine's single VM slot for the duration of `f`, so the
/// query submitted inside dispatches to the CF tier.
fn on_cf<T>(e: &Arc<TurboEngine>, f: impl FnOnce() -> T) -> T {
    let blocker_engine = e.clone();
    let blocker = std::thread::spawn(move || {
        blocker_engine
            .execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .unwrap()
    });
    while !e.is_busy() {
        std::thread::yield_now();
    }
    let r = f();
    blocker.join().unwrap();
    r
}

/// The reapers delete spill prefixes from detached threads; poll until the
/// intermediate namespace is empty.
fn assert_no_spills(store: &ObjectStoreRef, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let leaked = store.list("pixels-turbo/intermediate/").unwrap();
        if leaked.is_empty() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{label}: leaked spill objects: {leaked:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Run `sql` through the scalar (row-at-a-time) oracle on its own fixture.
fn scalar_oracle_rows(sql: &str) -> Vec<Vec<Value>> {
    let (catalog, store) = fixture();
    let plan = plan_query(&catalog, "tpch", sql).unwrap();
    let ctx = ExecContext::new(store);
    let batches = scalar::execute(&plan, &ctx).unwrap();
    batches.iter().flat_map(|b| b.to_rows()).collect()
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    rows
}

/// Exact equality, except floats may differ by a relative 1e-9: two-stage
/// partial aggregation reassociates float additions across partitions.
fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

fn assert_rows_equivalent(label: &str, got: &[Vec<Value>], expect: &[Vec<Value>]) {
    assert_eq!(
        got.len(),
        expect.len(),
        "{label}: row count diverged ({} vs {})",
        got.len(),
        expect.len()
    );
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            g.len() == e.len() && g.iter().zip(e.iter()).all(|(a, b)| values_equivalent(a, b)),
            "{label}: row {i} diverged:\n  got:    {g:?}\n  expect: {e:?}"
        );
    }
}

/// Rows of a batch, order-preserved when the query pins order, canonically
/// sorted otherwise (ORDER BY-less group order is partition-major after a
/// shuffle, chunk-major on the single-stage path — both are valid answers).
fn comparable_rows(batch: &RecordBatch, sql: &str) -> Vec<Vec<Value>> {
    let rows = batch.to_rows();
    if sql.contains("ORDER BY") {
        rows
    } else {
        canonical(rows)
    }
}

/// Every TPC-H template whose plan admits a shuffle cut must produce
/// identical rows (and order, under ORDER BY) and identical billed bytes on
/// the two-stage exchange path, the single-stage CF path, and the scalar
/// oracle. The exchange itself must be visible only in provider-side stats.
#[test]
fn shuffled_templates_match_single_stage_and_scalar_oracle() {
    let (catalog, _store) = fixture();
    let shuffleable: Vec<_> = all_queries()
        .into_iter()
        .filter(|q| q.database == "tpch")
        .filter(|q| {
            let plan = plan_query(&catalog, "tpch", q.sql).unwrap();
            plan_shuffle(&plan, "pixels-turbo/intermediate/probe/mv.pxl", 4).is_some()
        })
        .collect();
    assert!(
        shuffleable.len() >= 3,
        "expected several shuffleable join/agg templates, got {}",
        shuffleable.len()
    );

    for q in &shuffleable {
        let oracle = scalar_oracle_rows(q.sql);

        // Reference: single-stage CF. The direct VM run doubles as the cache
        // warm-up both engines need for comparable billed bytes.
        let (single, single_store) = engine_with(1);
        let direct = single.execute_sql("tpch", q.sql, false).unwrap();
        let single_out = on_cf(&single, || single.execute_sql("tpch", q.sql, true).unwrap());
        assert!(single_out.used_cf, "{}", q.id);

        let (shuffled, store) = engine_with(4);
        let shuffled_direct = shuffled.execute_sql("tpch", q.sql, false).unwrap();
        assert_eq!(shuffled_direct.batch, direct.batch, "{}", q.id);
        let out = on_cf(&shuffled, || {
            shuffled.execute_sql("tpch", q.sql, true).unwrap()
        });
        assert!(out.used_cf, "{}", q.id);

        let got = comparable_rows(&out.batch, q.sql);
        assert_rows_equivalent(
            &format!("{} vs scalar oracle", q.id),
            &got,
            &if q.sql.contains("ORDER BY") {
                oracle
            } else {
                canonical(oracle)
            },
        );
        assert_rows_equivalent(
            &format!("{} vs single-stage CF", q.id),
            &got,
            &comparable_rows(&single_out.batch, q.sql),
        );
        assert_rows_equivalent(
            &format!("{} vs direct VM", q.id),
            &got,
            &comparable_rows(&direct.batch, q.sql),
        );

        // Equal user bills: the exchange is provider-side only.
        assert_eq!(
            out.bytes_scanned, single_out.bytes_scanned,
            "{}: billed bytes diverged between shuffled and single-stage",
            q.id
        );
        assert_eq!(out.exchange.partitions, 4, "{}", q.id);
        assert!(out.exchange.put_bytes > 0, "{}", q.id);
        assert!(out.provider_shuffle_dollars > 0.0, "{}", q.id);
        assert_eq!(single_out.exchange, ExchangeStats::default(), "{}", q.id);
        assert_no_spills(&store, q.id);
        assert_no_spills(&single_store, q.id);
    }
}

/// All-empty and mostly-empty partition sets: a predicate selecting zero
/// rows leaves every partition empty; three order statuses fanned out 16
/// ways leave at least 13 empty. Both must round-trip the exchange exactly.
#[test]
fn empty_partitions_round_trip() {
    // Zero input rows: every partition file is empty.
    let zero = "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
                WHERE o_orderkey < 0 GROUP BY o_orderstatus";
    let (e, store) = engine_with(8);
    let direct = e.execute_sql("tpch", zero, false).unwrap();
    assert_eq!(direct.batch.num_rows(), 0);
    let out = on_cf(&e, || e.execute_sql("tpch", zero, true).unwrap());
    assert!(out.used_cf);
    assert_eq!(out.batch, direct.batch);
    assert_eq!(out.exchange.partitions, 8);
    assert_eq!(
        out.exchange.spilled_rows, 0,
        "no rows may cross an exchange"
    );
    assert_no_spills(&store, "zero-row shuffle");

    // Far more partitions than groups: most partition files are empty.
    let sparse = "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
                  GROUP BY o_orderstatus ORDER BY n DESC";
    let (e, store) = engine_with(16);
    let direct = e.execute_sql("tpch", sparse, false).unwrap();
    let out = on_cf(&e, || e.execute_sql("tpch", sparse, true).unwrap());
    assert!(out.used_cf);
    assert_eq!(out.batch, direct.batch);
    assert_eq!(out.exchange.partitions, 16);
    assert!(
        out.exchange.spilled_rows <= 3,
        "one combined row per group, got {}",
        out.exchange.spilled_rows
    );
    assert_no_spills(&store, "sparse shuffle");
}

/// Maximal skew: a single surviving group (and a single join key) sends all
/// traffic to one partition. Results must still match the VM path exactly.
#[test]
fn skewed_partitions_round_trip() {
    let skewed_agg = "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
                      WHERE o_orderstatus = 'F' GROUP BY o_orderstatus";
    let (e, store) = engine_with(8);
    let direct = e.execute_sql("tpch", skewed_agg, false).unwrap();
    assert_eq!(direct.batch.num_rows(), 1, "fixture must have 'F' orders");
    let out = on_cf(&e, || e.execute_sql("tpch", skewed_agg, true).unwrap());
    assert!(out.used_cf);
    assert_eq!(out.batch, direct.batch);
    assert_eq!(
        out.exchange.spilled_rows, 1,
        "one group must combine into one spilled row"
    );
    assert_no_spills(&store, "skewed agg shuffle");

    let skewed_join = "SELECT c_name, o_orderkey FROM customer \
                       JOIN orders ON c_custkey = o_custkey \
                       WHERE c_custkey = 1 ORDER BY o_orderkey";
    let (e, store) = engine_with(8);
    let direct = e.execute_sql("tpch", skewed_join, false).unwrap();
    let out = on_cf(&e, || e.execute_sql("tpch", skewed_join, true).unwrap());
    assert!(out.used_cf);
    assert_eq!(out.batch, direct.batch);
    assert_no_spills(&store, "skewed join shuffle");
}

/// `exchange_partitions = 1` must degenerate to the single-stage plan
/// bit-identically: same batch, same billed bytes, same decision sequence,
/// zero exchange stats, and nothing ever written under the spill prefix.
#[test]
fn partition_count_one_is_bit_identical_to_single_stage() {
    let sql = "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
               GROUP BY o_orderstatus ORDER BY n DESC";

    let (single, _) = engine_with(1);
    let direct = single.execute_sql("tpch", sql, false).unwrap();
    let single_out = on_cf(&single, || single.execute_sql("tpch", sql, true).unwrap());

    let (degenerate, store) = engine_with(1);
    let degenerate_direct = degenerate.execute_sql("tpch", sql, false).unwrap();
    assert_eq!(degenerate_direct.batch, direct.batch);
    let out = on_cf(&degenerate, || {
        degenerate.execute_sql("tpch", sql, true).unwrap()
    });

    assert!(out.used_cf);
    assert_eq!(out.batch, single_out.batch);
    assert_eq!(out.bytes_scanned, single_out.bytes_scanned);
    assert_eq!(out.exchange, ExchangeStats::default());
    assert_eq!(out.provider_shuffle_dollars, 0.0);
    assert_eq!(
        out.decisions,
        vec![
            Decision::DispatchCf { attempt: 0 },
            Decision::Accept { attempt: 0 },
        ]
    );
    assert!(store.list("pixels-turbo/intermediate/").unwrap().is_empty());
}
