//! Differential tests for cost-based planning: join reordering and
//! build-side selection are latency knobs, never correctness or pricing
//! knobs. Every multi-join TPC-H template must produce the same rows (and,
//! under ORDER BY, the same order) and bill the same scanned bytes as the
//! row-at-a-time scalar oracle running the *unoptimized* plan — and that
//! must stay true when every cardinality estimate is adversarially
//! inverted, so the planner picks the worst order it can construct.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::{RecordBatch, Value};
use pixelsdb::exec::{execute, scalar, ExecContext, ExecMetricsSnapshot};
use pixelsdb::planner::{create_physical_plan, optimize_with, Binder, EstMode, PhysicalPlan};
use pixelsdb::sql::parse_query;
use pixelsdb::storage::{InMemoryObjectStore, ObjectStoreRef};
use pixelsdb::workload::{load_tpch, TpchConfig, TPCH_QUERIES};
use std::cmp::Ordering;
use std::sync::Arc;

fn fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 17,
            row_group_rows: 512,
            files_per_table: 2,
        },
    )
    .unwrap();
    (catalog, store)
}

/// Lower `sql` under an explicit estimate mode (full rewrite pipeline).
fn physical_with(catalog: &Catalog, sql: &str, mode: EstMode) -> PhysicalPlan {
    let select = parse_query(sql).unwrap();
    let logical = Binder::new(catalog, "tpch").bind_select(&select).unwrap();
    create_physical_plan(&optimize_with(logical, mode)).unwrap()
}

/// Lower `sql` with NO rewrites at all: the binder's output in syntactic
/// join order, filters above the joins, scans reading every column. This is
/// the oracle plan — it shares nothing with the cost-based pipeline.
fn unoptimized_physical(catalog: &Catalog, sql: &str) -> PhysicalPlan {
    let select = parse_query(sql).unwrap();
    let logical = Binder::new(catalog, "tpch").bind_select(&select).unwrap();
    create_physical_plan(&logical).unwrap()
}

/// Tables scanned, left-to-right (probe-to-build) across the plan.
fn scan_order(plan: &PhysicalPlan) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(p: &PhysicalPlan, out: &mut Vec<String>) {
        if let PhysicalPlan::Scan { table, .. } = p {
            out.push(table.clone());
        }
        for c in p.children() {
            walk(c, out);
        }
    }
    walk(plan, &mut out);
    out
}

fn join_count(plan: &PhysicalPlan) -> usize {
    let own = usize::from(matches!(plan, PhysicalPlan::HashJoin { .. }));
    own + plan.children().iter().map(|c| join_count(c)).sum::<usize>()
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    rows
}

/// Exact equality, except floats may differ by a relative 1e-9: reordering
/// joins reorders the rows feeding SUM/AVG, which reassociates float adds.
fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

fn assert_rows_equivalent(label: &str, got: &[Vec<Value>], expect: &[Vec<Value>]) {
    assert_eq!(
        got.len(),
        expect.len(),
        "{label}: row count diverged ({} vs {})",
        got.len(),
        expect.len()
    );
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            g.len() == e.len() && g.iter().zip(e.iter()).all(|(a, b)| values_equivalent(a, b)),
            "{label}: row {i} diverged:\n  got:    {g:?}\n  expect: {e:?}"
        );
    }
}

fn comparable_rows(batches: &[RecordBatch], sql: &str) -> Vec<Vec<Value>> {
    let rows: Vec<Vec<Value>> = batches.iter().flat_map(|b| b.to_rows()).collect();
    if sql.contains("ORDER BY") {
        rows
    } else {
        canonical(rows)
    }
}

/// Run a physical plan on a fresh (cold-cache) context at a parallelism
/// level, returning comparable rows plus the billing-relevant metrics.
fn run_plan(
    plan: &PhysicalPlan,
    store: &ObjectStoreRef,
    sql: &str,
    parallelism: usize,
) -> (Vec<Vec<Value>>, ExecMetricsSnapshot) {
    let ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
    let batches = execute(plan, &ctx).unwrap();
    (comparable_rows(&batches, sql), ctx.metrics.snapshot())
}

/// The multi-join TPC-H templates (two or more hash joins after binding).
fn multi_join_templates(catalog: &Catalog) -> Vec<&'static pixelsdb::workload::QueryTemplate> {
    let picked: Vec<_> = TPCH_QUERIES
        .iter()
        .filter(|q| join_count(&unoptimized_physical(catalog, q.sql)) >= 2)
        .collect();
    assert!(
        picked.len() >= 3,
        "expected at least q3/q5/q10 to be multi-join, got {}",
        picked.len()
    );
    picked
}

/// Cost-based ordering must actually reorder something: q5 joins five
/// tables syntactically largest-first, and greedy smallest-intermediate
/// ordering must not reproduce that order verbatim.
#[test]
fn cost_based_ordering_changes_at_least_one_plan() {
    let (catalog, _store) = fixture();
    let mut any_changed = false;
    for q in multi_join_templates(&catalog) {
        let syntactic = scan_order(&unoptimized_physical(&catalog, q.sql));
        let ordered = scan_order(&physical_with(&catalog, q.sql, EstMode::Normal));
        assert_eq!(
            {
                let mut s = syntactic.clone();
                s.sort();
                s
            },
            {
                let mut o = ordered.clone();
                o.sort();
                o
            },
            "{}: reordering must preserve the table set",
            q.id
        );
        if syntactic != ordered {
            any_changed = true;
        }
    }
    assert!(
        any_changed,
        "cost-based ordering left every multi-join template in syntactic order"
    );
}

/// Every multi-join template, lowered with Normal estimates, must match
/// the scalar oracle running the unoptimized plan: same rows, same order
/// under ORDER BY, at parallelism 1 and 4, with equal billed bytes across
/// parallelism levels.
#[test]
fn reordered_plans_match_scalar_oracle() {
    let (catalog, store) = fixture();
    for q in multi_join_templates(&catalog) {
        let oracle_plan = unoptimized_physical(&catalog, q.sql);
        let oracle_ctx = ExecContext::new(store.clone());
        let oracle_batches = scalar::execute(&oracle_plan, &oracle_ctx).unwrap();
        let oracle = comparable_rows(&oracle_batches, q.sql);

        let plan = physical_with(&catalog, q.sql, EstMode::Normal);
        let (rows_p1, m1) = run_plan(&plan, &store, q.sql, 1);
        let (rows_p4, m4) = run_plan(&plan, &store, q.sql, 4);

        assert_rows_equivalent(&format!("{} p1 vs oracle", q.id), &rows_p1, &oracle);
        assert_rows_equivalent(&format!("{} p4 vs oracle", q.id), &rows_p4, &oracle);
        assert_eq!(
            m1.bytes_scanned, m4.bytes_scanned,
            "{}: billed bytes must not depend on parallelism",
            q.id
        );
    }
}

/// Adversarially inverted estimates: the planner believes every small
/// input is huge and every huge input is small, so it constructs the worst
/// join order and the worst build sides it can. Results, order, and billed
/// bytes must not move.
#[test]
fn inverted_estimates_change_nothing_but_speed() {
    let (catalog, store) = fixture();
    for q in multi_join_templates(&catalog) {
        let normal = physical_with(&catalog, q.sql, EstMode::Normal);
        let inverted = physical_with(&catalog, q.sql, EstMode::Inverted);

        let (rows_n, metrics_n) = run_plan(&normal, &store, q.sql, 1);
        let (rows_i, metrics_i) = run_plan(&inverted, &store, q.sql, 1);
        assert_rows_equivalent(&format!("{} inverted vs normal p1", q.id), &rows_i, &rows_n);
        assert_eq!(
            metrics_n.bytes_scanned, metrics_i.bytes_scanned,
            "{}: an estimate may never change the user's bill",
            q.id
        );

        let (rows_i4, metrics_i4) = run_plan(&inverted, &store, q.sql, 4);
        assert_rows_equivalent(
            &format!("{} inverted p4 vs normal p1", q.id),
            &rows_i4,
            &rows_n,
        );
        assert_eq!(
            metrics_i4.bytes_scanned, metrics_n.bytes_scanned,
            "{}",
            q.id
        );
    }
}

/// Single-join queries (build-side choice without reordering) under both
/// estimate modes, including the inverted mode that deliberately builds on
/// the bigger side. The ORDER BY keys form a total order, so "bit-identical
/// rows and order" is well-defined even when the swap reorders join output.
#[test]
fn build_side_choice_is_invisible_in_results() {
    let singles = [
        "SELECT c_name, o_orderkey FROM customer \
         JOIN orders ON c_custkey = o_custkey \
         ORDER BY o_orderkey, c_name LIMIT 50",
        "SELECT n_name, COUNT(*) AS customers FROM customer \
         JOIN nation ON c_nationkey = n_nationkey \
         GROUP BY n_name ORDER BY customers DESC, n_name",
        // No ORDER BY: compared as a canonically sorted multiset.
        "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
         JOIN customer ON o_custkey = c_custkey GROUP BY o_orderstatus",
    ];
    let (catalog, store) = fixture();
    for sql in singles {
        assert_eq!(join_count(&unoptimized_physical(&catalog, sql)), 1);
        let oracle_plan = unoptimized_physical(&catalog, sql);
        let oracle_ctx = ExecContext::new(store.clone());
        let oracle_batches = scalar::execute(&oracle_plan, &oracle_ctx).unwrap();
        let oracle = comparable_rows(&oracle_batches, sql);
        for mode in [EstMode::Normal, EstMode::Inverted] {
            let plan = physical_with(&catalog, sql, mode);
            for p in [1usize, 4] {
                let (rows, _) = run_plan(&plan, &store, sql, p);
                assert_rows_equivalent(&format!("{sql} {mode:?} p{p}"), &rows, &oracle);
            }
        }
    }
}
