//! Whole-system integration test: the Figure-1 data path from natural
//! language to billed results, exercised through the facade crate.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::Json;
use pixelsdb::nl2sql::CodesService;
use pixelsdb::server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{load_tpch, load_weblog, TpchConfig, WeblogConfig};
use std::sync::Arc;

struct Deployment {
    server: QueryServer,
    nl: CodesService,
}

fn deploy() -> Deployment {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 2048,
            files_per_table: 1,
        },
    )
    .unwrap();
    load_weblog(
        &catalog,
        store.as_ref(),
        "logs",
        &WeblogConfig {
            rows: 2000,
            seed: 7,
            row_group_rows: 1024,
        },
    )
    .unwrap();
    let engine = Arc::new(TurboEngine::new(
        catalog.clone(),
        store.clone(),
        EngineConfig::default(),
    ));
    Deployment {
        server: QueryServer::new(engine, PriceSchedule::default()),
        nl: CodesService::new(catalog, store),
    }
}

#[test]
fn nl_to_billed_result() {
    let d = deploy();
    // Rover-shaped JSON round trip to the text-to-SQL service.
    let resp =
        d.nl.handle_json(r#"{"question": "how many orders per order status", "database": "tpch"}"#);
    let json = Json::parse(&resp).unwrap();
    let sql = json.get("sql").unwrap().as_str().unwrap().to_string();
    assert!(sql.to_uppercase().contains("GROUP BY"), "{sql}");

    let id = d.server.submit(QuerySubmission {
        database: "tpch".into(),
        sql,
        level: ServiceLevel::Relaxed,
        result_limit: Some(100),
        tenant: None,
        deadline_us: None,
    });
    let info = d.server.wait(id).unwrap();
    assert_eq!(info.status, QueryStatus::Finished);
    let result = info.result.unwrap();
    assert_eq!(result.num_rows(), 3, "3 order statuses");
    assert!(info.scan_bytes > 0);
    assert!(info.price > 0.0);
    // Relaxed = $1/TB.
    let expected = info.scan_bytes as f64 / 1e12;
    assert!((info.price - expected).abs() < 1e-12);
}

#[test]
fn same_query_same_answer_at_every_level() {
    let d = deploy();
    let sql =
        "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC";
    let mut results = Vec::new();
    for level in ServiceLevel::ALL {
        let id = d.server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: sql.into(),
            level,
            result_limit: None,
            tenant: None,
            deadline_us: None,
        });
        let info = d.server.wait(id).unwrap();
        assert_eq!(info.status, QueryStatus::Finished);
        results.push((info.result.unwrap(), info.price));
    }
    assert_eq!(results[0].0, results[1].0);
    assert_eq!(results[1].0, results[2].0);
    // Prices strictly ordered: immediate > relaxed > best-of-effort.
    assert!(results[0].1 > results[1].1 && results[1].1 > results[2].1);
}

#[test]
fn explain_shows_the_physical_plan() {
    let d = deploy();
    let id = d.server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "EXPLAIN SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-01-01'".into(),
        level: ServiceLevel::Immediate,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    let info = d.server.wait(id).unwrap();
    let text = info.result.unwrap().pretty_format();
    assert!(text.contains("HashAggregate"), "{text}");
    assert!(text.contains("PixelsScan"), "{text}");
    assert!(text.contains("zone_preds"), "{text}");
}

#[test]
fn cross_database_sessions() {
    let d = deploy();
    for (db, sql, min_rows) in [
        ("tpch", "SELECT COUNT(*) FROM region", 1),
        ("logs", "SELECT COUNT(*) FROM requests", 1),
    ] {
        let id = d.server.submit(QuerySubmission {
            database: db.into(),
            sql: sql.into(),
            level: ServiceLevel::Immediate,
            result_limit: None,
            tenant: None,
            deadline_us: None,
        });
        let info = d.server.wait(id).unwrap();
        assert_eq!(info.status, QueryStatus::Finished, "{db}: {:?}", info.error);
        assert!(info.result.unwrap().num_rows() >= min_rows);
    }
}

#[test]
fn query_status_json_is_rover_renderable() {
    let d = deploy();
    let id = d.server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "SELECT 1".into(),
        level: ServiceLevel::BestEffort,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    let info = d.server.wait(id).unwrap();
    let json = info.to_json();
    for field in [
        "id",
        "status",
        "service_level",
        "pending_ms",
        "execution_ms",
        "cost_dollars",
    ] {
        assert!(json.get(field).is_some(), "missing {field}");
    }
}
