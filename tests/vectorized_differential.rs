//! Differential tests for the vectorized operator kernels: every TPC-H
//! template must produce *bit-identical* output — rows, row order, and
//! billed bytes — between the vectorized engine (`exec::execute`: encoded
//! join/aggregate keys, permutation sort, gather-materialized output, fused
//! filter masks) and the retained row-at-a-time reference path
//! (`exec::scalar::execute`), at parallelism 1 and 4. Unlike the
//! parallelism differential (which tolerates float ulps across *different*
//! parallelism levels), both paths here share the same partition order at
//! equal parallelism, so even float aggregates must match to the bit.
//!
//! Also covers the key-encoding edge cases end-to-end: NULL keys never
//! match in joins, Int32/Int64 widening keys, -0.0 vs 0.0 group keys
//! (distinct groups under `Value::eq`'s total_cmp), and empty-string vs
//! NULL under DISTINCT.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::{DataType, Field, RecordBatch, Schema, Value};
use pixelsdb::exec::{execute, scalar, ExecContext};
use pixelsdb::planner::{plan_query, BoundExpr};
use pixelsdb::sql::ast::JoinType;
use pixelsdb::storage::{InMemoryObjectStore, ObjectStoreRef};
use pixelsdb::workload::{all_queries, load_tpch, TpchConfig};
use std::sync::Arc;

fn tpch_fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.002,
            seed: 7,
            row_group_rows: 256,
            files_per_table: 2,
        },
    )
    .unwrap();
    (catalog, store)
}

/// Bit-identity: same variant (no silent Int32/Int64 widening differences)
/// and, for floats, the exact same bit pattern — NaNs and signed zeros
/// included.
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => x.to_bits() == y.to_bits(),
        _ => std::mem::discriminant(a) == std::mem::discriminant(b) && a == b,
    }
}

/// Flatten batches to rows *in emission order* — row order is part of the
/// contract being verified.
fn ordered_rows(batches: &[RecordBatch]) -> Vec<Vec<Value>> {
    batches.iter().flat_map(|b| b.to_rows()).collect()
}

fn assert_rows_identical(vec_rows: &[Vec<Value>], ref_rows: &[Vec<Value>], label: &str) {
    assert_eq!(
        vec_rows.len(),
        ref_rows.len(),
        "{label}: row count diverged (vectorized {} vs scalar {})",
        vec_rows.len(),
        ref_rows.len()
    );
    for (i, (vr, rr)) in vec_rows.iter().zip(ref_rows).enumerate() {
        assert!(
            vr.len() == rr.len()
                && vr
                    .iter()
                    .zip(rr.iter())
                    .all(|(a, b)| values_identical(a, b)),
            "{label}: row {i} diverged:\n  vectorized: {vr:?}\n  scalar:     {rr:?}"
        );
    }
}

#[test]
fn tpch_templates_bit_identical_to_scalar_reference() {
    let (catalog, store) = tpch_fixture();
    let queries: Vec<_> = all_queries()
        .into_iter()
        .filter(|q| q.database == "tpch")
        .collect();
    assert!(queries.len() >= 5, "expected several TPC-H templates");

    for q in queries {
        let plan = plan_query(&catalog, "tpch", q.sql).unwrap();
        for parallelism in [1usize, 4] {
            let vec_ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
            let vec_batches = execute(&plan, &vec_ctx).unwrap();
            let ref_ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
            let ref_batches = scalar::execute(&plan, &ref_ctx).unwrap();

            let label = format!("{} @p{parallelism}", q.id);
            assert_rows_identical(
                &ordered_rows(&vec_batches),
                &ordered_rows(&ref_batches),
                &label,
            );

            let (vm, rm) = (vec_ctx.metrics.snapshot(), ref_ctx.metrics.snapshot());
            assert_eq!(
                vm.bytes_scanned, rm.bytes_scanned,
                "{label}: billed bytes diverged"
            );
            assert_eq!(
                vm.rows_scanned, rm.rows_scanned,
                "{label}: rows scanned diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Key-encoding edge cases, run through both kernel implementations.
// ---------------------------------------------------------------------------

fn schema(fields: Vec<Field>) -> Arc<Schema> {
    Arc::new(Schema::new(fields))
}

fn batch(s: &Arc<Schema>, rows: &[Vec<Value>]) -> RecordBatch {
    RecordBatch::from_rows(s.clone(), rows).unwrap()
}

fn col(i: usize, ty: DataType) -> BoundExpr {
    BoundExpr::column(i, ty, format!("c{i}"))
}

fn join_both_ways(
    left: &RecordBatch,
    right: &RecordBatch,
    join_type: JoinType,
    left_key: BoundExpr,
    right_key: BoundExpr,
    label: &str,
) -> Vec<Vec<Value>> {
    let out_fields: Vec<Field> = left
        .schema()
        .fields()
        .iter()
        .chain(right.schema().fields())
        .cloned()
        .collect();
    let out_schema = schema(out_fields);
    let left_width = left.schema().len();
    let vec_out = pixelsdb::exec::join::execute_join(
        std::slice::from_ref(left),
        std::slice::from_ref(right),
        join_type,
        std::slice::from_ref(&left_key),
        std::slice::from_ref(&right_key),
        None,
        &out_schema,
        left_width,
        3, // tiny batch size to exercise chunked gather output
    )
    .unwrap();
    let ref_out = scalar::execute_join(
        std::slice::from_ref(left),
        std::slice::from_ref(right),
        join_type,
        std::slice::from_ref(&left_key),
        std::slice::from_ref(&right_key),
        None,
        &out_schema,
        left_width,
        3,
    )
    .unwrap();
    let (v, r) = (ordered_rows(&vec_out), ordered_rows(&ref_out));
    assert_rows_identical(&v, &r, label);
    v
}

#[test]
fn null_keys_never_match_in_any_join_type() {
    let ls = schema(vec![
        Field::nullable("lk", DataType::Int64),
        Field::required("lv", DataType::Utf8),
    ]);
    let rs = schema(vec![
        Field::nullable("rk", DataType::Int64),
        Field::required("rv", DataType::Utf8),
    ]);
    let left = batch(
        &ls,
        &[
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Null, Value::Utf8("b".into())],
            vec![Value::Int64(2), Value::Utf8("c".into())],
        ],
    );
    let right = batch(
        &rs,
        &[
            vec![Value::Null, Value::Utf8("x".into())],
            vec![Value::Int64(1), Value::Utf8("y".into())],
            vec![Value::Null, Value::Utf8("z".into())],
        ],
    );
    for (jt, expected_rows) in [
        // Inner: only the 1↔1 match — never NULL↔NULL.
        (JoinType::Inner, 1),
        // Left: the NULL-key and unmatched left rows survive null-extended.
        (JoinType::Left, 3),
        // Right: both NULL-key right rows survive null-extended.
        (JoinType::Right, 3),
    ] {
        let rows = join_both_ways(
            &left,
            &right,
            jt,
            col(0, DataType::Int64),
            col(0, DataType::Int64),
            &format!("null-keys {jt:?}"),
        );
        assert_eq!(rows.len(), expected_rows, "{jt:?}");
        for r in &rows {
            // A row with both keys NULL must be null-extended on at least
            // one side — NULL keys never match each other.
            if r[0].is_null() && r[2].is_null() {
                assert!(
                    r[1].is_null() || r[3].is_null(),
                    "NULL keys matched each other: {r:?}"
                );
            }
        }
    }
}

#[test]
fn int32_int64_widening_keys_match_across_sides() {
    let ls = schema(vec![Field::required("lk", DataType::Int32)]);
    let rs = schema(vec![
        Field::required("rk", DataType::Int64),
        Field::required("rv", DataType::Utf8),
    ]);
    let left = batch(
        &ls,
        &[
            vec![Value::Int32(7)],
            vec![Value::Int32(9)],
            vec![Value::Int32(7)],
        ],
    );
    let right = batch(
        &rs,
        &[
            vec![Value::Int64(7), Value::Utf8("seven".into())],
            vec![Value::Int64(8), Value::Utf8("eight".into())],
        ],
    );
    let rows = join_both_ways(
        &left,
        &right,
        JoinType::Inner,
        col(0, DataType::Int32),
        col(0, DataType::Int64),
        "int32-int64 widening",
    );
    // Int32(7) == Int64(7) under Value::eq; both probe rows with key 7 hit.
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r[2] == Value::Utf8("seven".into())));
}

#[test]
fn negative_zero_groups_stay_distinct_and_match_scalar() {
    use pixelsdb::planner::{AggExpr, AggFunc};
    let s = schema(vec![
        Field::required("g", DataType::Float64),
        Field::required("v", DataType::Int64),
    ]);
    let input = vec![batch(
        &s,
        &[
            vec![Value::Float64(0.0), Value::Int64(1)],
            vec![Value::Float64(-0.0), Value::Int64(10)],
            vec![Value::Float64(0.0), Value::Int64(100)],
        ],
    )];
    let out_schema = schema(vec![
        Field::required("g", DataType::Float64),
        Field::required("s", DataType::Int64),
    ]);
    let group = vec![col(0, DataType::Float64)];
    let aggs = vec![AggExpr {
        func: AggFunc::Sum,
        arg: Some(col(1, DataType::Int64)),
        distinct: false,
        output_type: DataType::Int64,
    }];
    for parallelism in [1usize, 4] {
        let v = pixelsdb::exec::aggregate::execute_aggregate(
            &input,
            &group,
            &aggs,
            &out_schema,
            parallelism,
        )
        .unwrap();
        let r = scalar::execute_aggregate(&input, &group, &aggs, &out_schema, parallelism).unwrap();
        let (vr, rr) = (ordered_rows(&v), ordered_rows(&r));
        assert_rows_identical(&vr, &rr, "signed-zero grouping");
        // Value::eq compares floats with total_cmp: -0.0 and 0.0 are
        // *different* groups, in first-appearance order.
        assert_eq!(vr.len(), 2);
        assert_eq!(vr[0][1], Value::Int64(101));
        assert_eq!(vr[1][1], Value::Int64(10));
        assert_eq!(vr[0][0], Value::Float64(0.0));
        assert!(matches!(vr[1][0], Value::Float64(f) if f.to_bits() == (-0.0f64).to_bits()));
    }
}

#[test]
fn empty_string_and_null_distinct_rows_match_scalar() {
    let s = schema(vec![Field::nullable("s", DataType::Utf8)]);
    let input = vec![
        batch(
            &s,
            &[
                vec![Value::Utf8(String::new())],
                vec![Value::Null],
                vec![Value::Utf8(String::new())],
            ],
        ),
        batch(&s, &[vec![Value::Null], vec![Value::Utf8("x".into())]]),
    ];
    let v = pixelsdb::exec::aggregate::execute_distinct(&input).unwrap();
    let r = scalar::execute_distinct(&input).unwrap();
    let (vr, rr) = (ordered_rows(&v), ordered_rows(&r));
    assert_rows_identical(&vr, &rr, "distinct empty-string vs NULL");
    // Empty string and NULL are distinct values; NULL deduplicates with
    // NULL. First-appearance order: "", NULL, "x".
    assert_eq!(vr.len(), 3);
    assert_eq!(vr[0][0], Value::Utf8(String::new()));
    assert!(vr[1][0].is_null());
    assert_eq!(vr[2][0], Value::Utf8("x".into()));
}

#[test]
fn sort_and_topk_with_nulls_desc_and_ties_match_scalar() {
    let s = schema(vec![
        Field::nullable("k", DataType::Int64),
        Field::required("seq", DataType::Int64),
    ]);
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int64(3), Value::Int64(0)],
        vec![Value::Null, Value::Int64(1)],
        vec![Value::Int64(1), Value::Int64(2)],
        vec![Value::Int64(3), Value::Int64(3)], // tie with row 0
        vec![Value::Null, Value::Int64(4)],     // tie with row 1
        vec![Value::Int64(2), Value::Int64(5)],
    ];
    // Two batches to exercise coalescing; batch_size 2 to exercise chunked
    // gather output.
    let input = vec![batch(&s, &rows[..3]), batch(&s, &rows[3..])];
    for asc in [true, false] {
        let keys = vec![(col(0, DataType::Int64), asc)];
        let v = pixelsdb::exec::sort::execute_sort(&input, &keys, 2).unwrap();
        let r = scalar::execute_sort(&input, &keys, 2).unwrap();
        assert_rows_identical(&ordered_rows(&v), &ordered_rows(&r), "sort");
        for fetch in [0usize, 1, 3, 100] {
            let v = pixelsdb::exec::sort::execute_topk(&input, &keys, fetch, 2).unwrap();
            let r = scalar::execute_topk(&input, &keys, fetch, 2).unwrap();
            assert_rows_identical(
                &ordered_rows(&v),
                &ordered_rows(&r),
                &format!("topk fetch={fetch} asc={asc}"),
            );
        }
    }
    // Stability spot-check: ascending ties keep arrival order.
    let keys = vec![(col(0, DataType::Int64), true)];
    let sorted = ordered_rows(&pixelsdb::exec::sort::execute_sort(&input, &keys, 2).unwrap());
    let seqs: Vec<i64> = sorted
        .iter()
        .map(|r| match r[1] {
            Value::Int64(x) => x,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(seqs, vec![1, 4, 2, 5, 0, 3], "NULLs first, ties stable");
}
