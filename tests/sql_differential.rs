//! Property-based differential tests: the full engine (storage → planner →
//! executor) must agree with a trivial in-memory reference computation over
//! randomly generated tables and predicates.

use pixelsdb::catalog::{Catalog, CreateTable};
use pixelsdb::common::{DataType, Field, RecordBatch, Schema, Value};
use pixelsdb::exec::run_query;
use pixelsdb::storage::{InMemoryObjectStore, ObjectStoreRef, PixelsReader, PixelsWriter};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: Option<i64>,
    s: String,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        -50i64..50,
        prop::option::of(-20i64..20),
        prop::sample::select(vec!["red", "green", "blue", "black"]),
    )
        .prop_map(|(a, b, s)| Row {
            a,
            b,
            s: s.to_string(),
        })
}

fn setup(rows: &[Row]) -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    let schema = Arc::new(Schema::new(vec![
        Field::required("a", DataType::Int64),
        Field::nullable("b", DataType::Int64),
        Field::required("s", DataType::Utf8),
    ]));
    catalog
        .create_table(CreateTable {
            database: "d".into(),
            name: "t".into(),
            schema: schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            vec![
                Value::Int64(r.a),
                r.b.map_or(Value::Null, Value::Int64),
                Value::Utf8(r.s.clone()),
            ]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema.clone(), &data).unwrap();
    // Small row groups exercise zone-map pruning paths.
    let mut w = PixelsWriter::with_row_group_rows(store.as_ref(), "d/t/0.pxl", schema, 7);
    w.write_batch(&batch).unwrap();
    let size = w.finish().unwrap();
    let reader = PixelsReader::open(store.as_ref(), "d/t/0.pxl").unwrap();
    catalog
        .register_data_file("d", "t", "d/t/0.pxl", reader.footer(), size)
        .unwrap();
    (catalog, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_matches_reference(rows in prop::collection::vec(row_strategy(), 0..60), threshold in -50i64..50) {
        let (catalog, store) = setup(&rows);
        let sql = format!("SELECT a FROM t WHERE a >= {threshold}");
        let got = run_query(&catalog, store, "d", &sql).unwrap();
        let mut got_vals: Vec<i64> = got.to_rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.a).filter(|&a| a >= threshold).collect();
        got_vals.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got_vals, expect);
    }

    #[test]
    fn null_filter_matches_reference(rows in prop::collection::vec(row_strategy(), 0..60), threshold in -20i64..20) {
        let (catalog, store) = setup(&rows);
        // NULL b must never satisfy the comparison.
        let sql = format!("SELECT COUNT(*) FROM t WHERE b < {threshold}");
        let got = run_query(&catalog, store, "d", &sql).unwrap();
        let expect = rows.iter().filter(|r| r.b.is_some_and(|b| b < threshold)).count() as i64;
        prop_assert_eq!(got.row(0)[0].as_i64().unwrap(), expect);
    }

    #[test]
    fn group_by_matches_reference(rows in prop::collection::vec(row_strategy(), 0..60)) {
        let (catalog, store) = setup(&rows);
        let got = run_query(&catalog, store, "d", "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s").unwrap();
        use std::collections::HashMap;
        let mut expect: HashMap<String, (i64, i64)> = HashMap::new();
        for r in &rows {
            let e = expect.entry(r.s.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.a;
        }
        prop_assert_eq!(got.num_rows(), expect.len());
        for row in got.to_rows() {
            let key = row[0].as_str().unwrap().to_string();
            let (count, sum) = expect[&key];
            prop_assert_eq!(row[1].as_i64().unwrap(), count);
            prop_assert_eq!(row[2].as_i64().unwrap(), sum);
        }
    }

    #[test]
    fn order_limit_matches_reference(rows in prop::collection::vec(row_strategy(), 1..60), k in 1u64..10) {
        let (catalog, store) = setup(&rows);
        let sql = format!("SELECT a FROM t ORDER BY a DESC LIMIT {k}");
        let got = run_query(&catalog, store, "d", &sql).unwrap();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.a).collect();
        expect.sort_unstable_by(|x, y| y.cmp(x));
        expect.truncate(k as usize);
        let got_vals: Vec<i64> = got.to_rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got_vals, expect);
    }

    #[test]
    fn distinct_matches_reference(rows in prop::collection::vec(row_strategy(), 0..60)) {
        let (catalog, store) = setup(&rows);
        let got = run_query(&catalog, store, "d", "SELECT DISTINCT s FROM t").unwrap();
        let expect: std::collections::BTreeSet<String> = rows.iter().map(|r| r.s.clone()).collect();
        let got_set: std::collections::BTreeSet<String> = got
            .to_rows()
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        prop_assert_eq!(got.num_rows(), got_set.len(), "no duplicates");
        prop_assert_eq!(got_set, expect);
    }

    #[test]
    fn avg_and_min_max_match_reference(rows in prop::collection::vec(row_strategy(), 1..60)) {
        let (catalog, store) = setup(&rows);
        let got = run_query(&catalog, store, "d", "SELECT AVG(a), MIN(a), MAX(a) FROM t").unwrap();
        let n = rows.len() as f64;
        let sum: i64 = rows.iter().map(|r| r.a).sum();
        let avg = got.row(0)[0].as_f64().unwrap();
        prop_assert!((avg - sum as f64 / n).abs() < 1e-9);
        prop_assert_eq!(got.row(0)[1].as_i64().unwrap(), rows.iter().map(|r| r.a).min().unwrap());
        prop_assert_eq!(got.row(0)[2].as_i64().unwrap(), rows.iter().map(|r| r.a).max().unwrap());
    }
}
