//! Sim-vs-real policy parity (integration gate).
//!
//! The heavy lifting lives in `pixels_bench::parity`, shared with the
//! `policy_parity` CI binary: each scenario drives the same query with the
//! same seeded fault plan through the simulated coordinator and the real
//! engine, asserting bit-identical decision sequences, user bills, and
//! provider cost breakdowns. The assertions run inside `run_scenario`; the
//! tests here pin per-scenario decision shapes on top.

use pixels_bench::parity;
use pixels_turbo::Decision;

fn labels(decisions: &[Decision]) -> Vec<String> {
    decisions.iter().map(|d| format!("{d:?}")).collect()
}

fn run(name: &str) -> parity::ParityReport {
    let scenarios = parity::scenarios();
    let s = scenarios
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} exists"));
    parity::run_scenario(s)
}

#[test]
fn clean_paths_agree_between_sim_and_real() {
    let vm = run("clean-vm");
    assert_eq!(labels(&vm.decisions), ["DispatchVm"]);
    let cf = run("clean-cf");
    assert_eq!(
        labels(&cf.decisions),
        ["DispatchCf { attempt: 0 }", "Accept { attempt: 0 }"]
    );
    assert!(cf.resource_cost.cf_dollars > 0.0);
    assert_eq!(
        cf.resource_cost.cf_dollars, cf.provider_cf_dollars,
        "a clean CF run has exactly one billed attempt"
    );
}

#[test]
fn crash_recovery_agrees_between_sim_and_real() {
    let once = run("cf-crash-once");
    assert_eq!(
        labels(&once.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "Accept { attempt: 1 }"
        ]
    );
    assert!(
        once.provider_cf_dollars > once.resource_cost.cf_dollars,
        "the crashed attempt still costs the provider money"
    );
    let always = run("cf-crash-always");
    assert_eq!(
        labels(&always.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "AttemptFailed { attempt: 1 }",
            "Degrade",
            "DispatchVm"
        ]
    );
    assert!(always.resource_cost.vm_dollars > 0.0);
}

#[test]
fn straggler_speculation_agrees_between_sim_and_real() {
    let r = run("cf-straggler");
    assert_eq!(
        labels(&r.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "StragglerSpeculate { attempt: 1 }",
            "Accept { attempt: 1 }"
        ]
    );
    assert!(
        r.provider_cf_dollars > r.resource_cost.cf_dollars,
        "the straggling loser still costs the provider money"
    );
}

#[test]
fn shuffle_stages_agree_between_sim_and_real() {
    let clean = run("shuffle-clean");
    assert_eq!(
        labels(&clean.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }",
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }"
        ],
        "one clean race per exchange stage"
    );
    assert!(clean.shuffle_dollars > 0.0, "spill traffic must be priced");
    assert_eq!(
        clean.resource_cost.cf_dollars, clean.provider_cf_dollars,
        "two clean stages bill exactly their accepted fleets"
    );

    let crash = run("shuffle-stage-crash");
    assert_eq!(
        labels(&crash.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "Accept { attempt: 1 }",
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }"
        ],
        "the crash stays inside stage 0's race"
    );
    assert!(
        crash.provider_cf_dollars > crash.resource_cost.cf_dollars,
        "the crashed stage-0 fleet still costs the provider money"
    );
    assert!(crash.shuffle_dollars > 0.0);
}

/// `exchange_partitions = 0` (cost-based auto sizing) with right-sized
/// fleets on both sides: the sim coordinator and the real engine must
/// still agree bit-identically, clean and under a stage crash.
#[test]
fn auto_sized_fleets_agree_between_sim_and_real() {
    let clean = run("auto-sized-clean-cf");
    assert_eq!(
        labels(&clean.decisions),
        ["DispatchCf { attempt: 0 }", "Accept { attempt: 0 }"]
    );
    assert_eq!(clean.resource_cost.cf_dollars, clean.provider_cf_dollars);

    let crash = run("auto-sized-crash-once");
    assert_eq!(
        labels(&crash.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "Accept { attempt: 1 }"
        ]
    );
    assert!(crash.provider_cf_dollars > crash.resource_cost.cf_dollars);
}
