//! Sim-vs-real policy parity (integration gate).
//!
//! The heavy lifting lives in `pixels_bench::parity`, shared with the
//! `policy_parity` CI binary: each scenario drives the same query with the
//! same seeded fault plan through the simulated coordinator and the real
//! engine, asserting bit-identical decision sequences, user bills, and
//! provider cost breakdowns. The assertions run inside `run_scenario`; the
//! tests here pin per-scenario decision shapes on top.

use pixels_bench::parity;
use pixels_turbo::Decision;

fn labels(decisions: &[Decision]) -> Vec<String> {
    decisions.iter().map(|d| format!("{d:?}")).collect()
}

#[test]
fn clean_paths_agree_between_sim_and_real() {
    let scenarios = parity::scenarios();
    let vm = parity::run_scenario(&scenarios[0]);
    assert_eq!(labels(&vm.decisions), ["DispatchVm"]);
    let cf = parity::run_scenario(&scenarios[1]);
    assert_eq!(
        labels(&cf.decisions),
        ["DispatchCf { attempt: 0 }", "Accept { attempt: 0 }"]
    );
    assert!(cf.resource_cost.cf_dollars > 0.0);
    assert_eq!(
        cf.resource_cost.cf_dollars, cf.provider_cf_dollars,
        "a clean CF run has exactly one billed attempt"
    );
}

#[test]
fn crash_recovery_agrees_between_sim_and_real() {
    let scenarios = parity::scenarios();
    let once = parity::run_scenario(&scenarios[2]);
    assert_eq!(
        labels(&once.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "Accept { attempt: 1 }"
        ]
    );
    assert!(
        once.provider_cf_dollars > once.resource_cost.cf_dollars,
        "the crashed attempt still costs the provider money"
    );
    let always = parity::run_scenario(&scenarios[3]);
    assert_eq!(
        labels(&always.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "AttemptFailed { attempt: 1 }",
            "Degrade",
            "DispatchVm"
        ]
    );
    assert!(always.resource_cost.vm_dollars > 0.0);
}

#[test]
fn straggler_speculation_agrees_between_sim_and_real() {
    let scenarios = parity::scenarios();
    let r = parity::run_scenario(&scenarios[4]);
    assert_eq!(
        labels(&r.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "StragglerSpeculate { attempt: 1 }",
            "Accept { attempt: 1 }"
        ]
    );
    assert!(
        r.provider_cf_dollars > r.resource_cost.cf_dollars,
        "the straggling loser still costs the provider money"
    );
}

#[test]
fn shuffle_stages_agree_between_sim_and_real() {
    let scenarios = parity::scenarios();
    let clean = parity::run_scenario(&scenarios[5]);
    assert_eq!(
        labels(&clean.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }",
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }"
        ],
        "one clean race per exchange stage"
    );
    assert!(clean.shuffle_dollars > 0.0, "spill traffic must be priced");
    assert_eq!(
        clean.resource_cost.cf_dollars, clean.provider_cf_dollars,
        "two clean stages bill exactly their accepted fleets"
    );

    let crash = parity::run_scenario(&scenarios[6]);
    assert_eq!(
        labels(&crash.decisions),
        [
            "DispatchCf { attempt: 0 }",
            "AttemptFailed { attempt: 0 }",
            "Relaunch { attempt: 1 }",
            "Accept { attempt: 1 }",
            "DispatchCf { attempt: 0 }",
            "Accept { attempt: 0 }"
        ],
        "the crash stays inside stage 0's race"
    );
    assert!(
        crash.provider_cf_dollars > crash.resource_cost.cf_dollars,
        "the crashed stage-0 fleet still costs the provider money"
    );
    assert!(crash.shuffle_dollars > 0.0);
}
