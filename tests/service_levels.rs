//! Cross-crate integration tests of the service-level scheduler on the
//! virtual clock: invariants the paper states must hold for any workload.

use pixelsdb::server::{AdmissionMode, ServerConfig, ServerSim, ServiceLevel, Submission};
use pixelsdb::sim::{SimDuration, SimTime};
use pixelsdb::turbo::{CfConfig, Placement, ResourcePricing, VmConfig};
use pixelsdb::workload::{poisson, QueryClass, WorkloadTrace};

fn mixed_trace(seed: u64, rate: f64, secs: u64) -> Vec<Submission> {
    let arrivals = poisson(rate, SimDuration::from_secs(secs), seed);
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.5, 0.35, 0.15], seed ^ 1);
    trace
        .entries
        .into_iter()
        .enumerate()
        .map(|(i, e)| Submission {
            at: e.at,
            class: e.class,
            level: ServiceLevel::ALL[i % 3],
        })
        .collect()
}

fn run(subs: Vec<Submission>) -> pixelsdb::server::SimReport {
    ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(100),
            ..Default::default()
        },
    )
    .run(subs, SimDuration::from_secs(4 * 3600))
}

#[test]
fn paper_invariants_hold_on_a_mixed_workload() {
    let report = run(mixed_trace(17, 0.08, 1800));
    assert_eq!(report.unfinished, 0);
    assert!(report.records.len() > 50);

    for r in &report.records {
        // 1. Immediate queries never wait.
        if r.mode == AdmissionMode::Level(ServiceLevel::Immediate) {
            assert_eq!(r.pending(), SimDuration::ZERO, "{:?}", r);
        }
        // 2. Only immediate queries may use CF.
        if matches!(r.placement, Placement::Cf { .. }) {
            assert_eq!(
                r.mode,
                AdmissionMode::Level(ServiceLevel::Immediate),
                "{:?}",
                r
            );
        }
        // 3. Relaxed server-side wait is bounded by the grace period.
        if r.mode == AdmissionMode::Level(ServiceLevel::Relaxed) {
            assert!(
                r.dispatched_at.since(r.submitted_at) <= SimDuration::from_secs(300),
                "{:?}",
                r
            );
        }
        // 4. Prices follow the level's $/TB rate exactly.
        let per_tb = 5.0 * r.mode.price_fraction();
        let expected = per_tb * r.scan_bytes as f64 / 1e12;
        assert!((r.price - expected).abs() < 1e-12);
        // 5. Time sanity: submitted <= dispatched <= started <= finished.
        assert!(r.submitted_at <= r.dispatched_at);
        assert!(r.dispatched_at <= r.started_at);
        assert!(r.started_at < r.finished_at);
    }
}

#[test]
fn a_relaxed_or_besteffort_query_may_run_immediately_when_idle() {
    // Paper: "Even for a relaxed or best-of-effort query, it may be executed
    // immediately if the VM cluster is available."
    for level in [ServiceLevel::Relaxed, ServiceLevel::BestEffort] {
        let report = run(vec![Submission {
            at: SimTime::from_secs(10),
            class: QueryClass::Light,
            level,
        }]);
        let r = &report.records[0];
        assert_eq!(
            r.pending(),
            SimDuration::ZERO,
            "{level}: idle cluster runs it now"
        );
        assert_eq!(r.placement, Placement::Vm);
    }
}

#[test]
fn heavier_load_increases_cf_usage_only_for_immediate() {
    let light = run(mixed_trace(3, 0.02, 1200));
    let heavy = run(mixed_trace(3, 0.3, 1200));
    assert!(
        heavy.cf_fraction(ServiceLevel::Immediate) >= light.cf_fraction(ServiceLevel::Immediate)
    );
    assert_eq!(heavy.cf_fraction(ServiceLevel::Relaxed), 0.0);
    assert_eq!(heavy.cf_fraction(ServiceLevel::BestEffort), 0.0);
}

#[test]
fn simulation_is_reproducible() {
    let a = run(mixed_trace(9, 0.1, 900));
    let b = run(mixed_trace(9, 0.1, 900));
    assert_eq!(a.records, b.records);
    assert_eq!(a.total_resource_cost, b.total_resource_cost);
    assert_eq!(a.scale_out_times, b.scale_out_times);
}

#[test]
fn cluster_scales_out_and_back_in() {
    // A spike followed by silence: workers grow, then lazy scale-in returns
    // the cluster to its floor.
    let mut subs: Vec<Submission> = (0..30)
        .map(|_| Submission {
            at: SimTime::from_secs(30),
            class: QueryClass::Medium,
            level: ServiceLevel::Relaxed,
        })
        .collect();
    subs.push(Submission {
        at: SimTime::from_secs(2400),
        class: QueryClass::Light,
        level: ServiceLevel::Relaxed,
    });
    let report = run(subs);
    assert_eq!(report.unfinished, 0);
    assert!(report.scale_out_events >= 1);
    assert!(report.scale_in_events >= 1);
    let end_workers = report
        .vm_worker_series
        .value_at(report.end_time)
        .unwrap_or(0.0);
    assert_eq!(end_workers, 1.0, "back to min_workers after the quiet tail");
}
