//! Differential test of the billing invariant behind the shared-work layer:
//! **sharing must be bill-invisible**. Running every TPC-H template twice
//! at every service level through a server with sharing enabled must
//! produce, query for query, bit-identical rows, row order, billed
//! `scan_bytes`, and prices compared to an identical server with sharing
//! disabled — the only observable difference is who did the work (the
//! shared layer's hit/coalesce counters) and the provider's cost.
//!
//! Also covers the cache-consistency rule (the materialized-view
//! invalidation discipline): after `invalidate_results`, a repeat must
//! re-execute against current data instead of serving the stale cache.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::{RecordBatch, Value};
use pixelsdb::obs::LedgerSummary;
use pixelsdb::server::{
    PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel, SharingConfig,
};
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{all_queries, load_tpch, TpchConfig};
use std::sync::Arc;

fn deploy(sharing: bool) -> QueryServer {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 2048,
            files_per_table: 1,
        },
    )
    .unwrap();
    let engine = Arc::new(TurboEngine::new(catalog, store, EngineConfig::default()));
    let server = QueryServer::new(engine, PriceSchedule::default());
    if sharing {
        server.with_sharing(SharingConfig {
            enabled: true,
            cache_entries: 64,
        })
    } else {
        server
    }
}

/// Bit-identity: same variant and, for floats, the exact bit pattern.
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => x.to_bits() == y.to_bits(),
        _ => std::mem::discriminant(a) == std::mem::discriminant(b) && a == b,
    }
}

fn rows_of(batch: &RecordBatch) -> Vec<Vec<Value>> {
    batch.to_rows()
}

struct Observed {
    rows: Vec<Vec<Value>>,
    scan_bytes: u64,
    price_bits: u64,
}

/// Submit-and-wait one query, returning what the *user* observes.
fn observe(server: &QueryServer, sql: &str, level: ServiceLevel, tenant: &str) -> Observed {
    let id = server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: sql.into(),
        level,
        result_limit: None,
        tenant: Some(tenant.to_string()),
        deadline_us: None,
    });
    let info = server.wait(id).unwrap();
    assert_eq!(
        info.status,
        QueryStatus::Finished,
        "{sql}: {:?}",
        info.error
    );
    Observed {
        rows: rows_of(&info.result.unwrap()),
        scan_bytes: info.scan_bytes,
        price_bits: info.price.to_bits(),
    }
}

#[test]
fn sharing_is_bill_invisible_across_templates_and_levels() {
    let plain = deploy(false);
    let shared = deploy(true);
    let templates: Vec<_> = all_queries()
        .into_iter()
        .filter(|t| t.database == "tpch")
        .collect();
    assert!(templates.len() >= 5, "expected a real TPC-H template set");

    let mut submissions = 0u32;
    for t in &templates {
        for level in ServiceLevel::ALL {
            // Two identical submissions per (template, level): the second
            // is an exact repeat — a warm re-execution without sharing, a
            // cache hit with it. The observable outcome must not differ.
            for round in 0..2 {
                let tenant = format!("t-{}", submissions % 4);
                let a = observe(&plain, t.sql, level, &tenant);
                let b = observe(&shared, t.sql, level, &tenant);
                assert_eq!(
                    a.rows.len(),
                    b.rows.len(),
                    "{} {} round {round}: row count diverged",
                    t.id,
                    level.name()
                );
                for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
                    assert!(
                        ra.len() == rb.len()
                            && ra.iter().zip(rb).all(|(x, y)| values_identical(x, y)),
                        "{} {} round {round}: row {i} diverged:\n  plain:  {ra:?}\n  shared: {rb:?}",
                        t.id,
                        level.name()
                    );
                }
                assert_eq!(
                    a.scan_bytes,
                    b.scan_bytes,
                    "{} {} round {round}: billed bytes diverged",
                    t.id,
                    level.name()
                );
                assert_eq!(
                    a.price_bits,
                    b.price_bits,
                    "{} {} round {round}: price diverged",
                    t.id,
                    level.name()
                );
                submissions += 1;
            }
        }
    }

    // The shared deployment actually shared: every repeat round was served
    // from the result cache, and nothing was double-executed.
    let (hits, _coalesced, executed) = shared.shared().stats();
    assert!(hits > 0, "repeats must hit the result cache");
    assert_eq!(
        hits + executed,
        submissions as u64,
        "every submission is either a hit or an execution"
    );

    // Ledger reconciliation: per tenant, both deployments recorded the
    // same number of entries, the same billed bytes, and bit-identical
    // revenue — sharing changed the provider's cost, never any bill.
    let by_plain = plain.ledger().by_tenant();
    let by_shared = shared.ledger().by_tenant();
    assert_eq!(by_plain.len(), by_shared.len());
    for (tenant, a) in &by_plain {
        let b: &LedgerSummary = by_shared.get(tenant).expect("tenant present in both");
        assert_eq!(a.entries, b.entries, "{tenant}: entry count");
        assert_eq!(a.bytes_billed, b.bytes_billed, "{tenant}: billed bytes");
        assert_eq!(
            a.revenue_dollars.to_bits(),
            b.revenue_dollars.to_bits(),
            "{tenant}: revenue"
        );
    }
}

#[test]
fn invalidation_forces_reexecution_against_current_data() {
    let server = deploy(true);
    let sql = "SELECT COUNT(*) AS n FROM lineitem";
    let first = observe(&server, sql, ServiceLevel::Relaxed, "t-0");
    let repeat = observe(&server, sql, ServiceLevel::Relaxed, "t-0");
    assert_eq!(first.rows, repeat.rows);
    let (hits_before, _, executed_before) = server.shared().stats();
    assert_eq!(hits_before, 1, "repeat served from cache");

    // Any mutation to the database (a delete, an append, a reload) must
    // drop its cached results — a cached answer must never outlive the
    // data it was computed from.
    server.invalidate_results("tpch");
    let after = observe(&server, sql, ServiceLevel::Relaxed, "t-0");
    let (hits_after, _, executed_after) = server.shared().stats();
    assert_eq!(hits_after, hits_before, "post-invalidation run is no hit");
    assert_eq!(
        executed_after,
        executed_before + 1,
        "post-invalidation run re-executes"
    );
    // Data did not actually change here, so the answer is unchanged —
    // what changed is that it was recomputed.
    assert_eq!(first.rows, after.rows);

    // Invalidating an unrelated database leaves the rebuilt cache intact.
    let _ = observe(&server, sql, ServiceLevel::Relaxed, "t-0");
    server.invalidate_results("elsewhere");
    let _ = observe(&server, sql, ServiceLevel::Relaxed, "t-0");
    let (hits_final, _, executed_final) = server.shared().stats();
    assert_eq!(executed_final, executed_after);
    assert_eq!(
        hits_final,
        hits_after + 2,
        "unrelated invalidation is inert"
    );
}
