//! Property-based tests for the storage layer: arbitrary batches round-trip
//! bit-exactly through the Pixels format, and zone-map pruning is always
//! sound (never drops a matching row group).

use pixelsdb::common::{DataType, Field, RecordBatch, Schema, Value};
use pixelsdb::storage::{
    ColumnPredicate, InMemoryObjectStore, PixelsReader, PixelsWriter, PredicateOp,
};
use proptest::prelude::*;
use std::sync::Arc;

fn value_strategy(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Int64 => prop_oneof![
            3 => any::<i64>().prop_map(Value::Int64),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Float64 => prop_oneof![
            3 => (-1e9f64..1e9).prop_map(Value::Float64),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Utf8 => prop_oneof![
            3 => "[a-z]{0,12}".prop_map(Value::Utf8),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Boolean => prop_oneof![
            3 => any::<bool>().prop_map(Value::Boolean),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Date => prop_oneof![
            3 => (-100_000i32..100_000).prop_map(Value::Date),
            1 => Just(Value::Null),
        ]
        .boxed(),
        _ => Just(Value::Null).boxed(),
    }
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::nullable("i", DataType::Int64),
        Field::nullable("f", DataType::Float64),
        Field::nullable("s", DataType::Utf8),
        Field::nullable("b", DataType::Boolean),
        Field::nullable("d", DataType::Date),
    ]))
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(
        (
            value_strategy(DataType::Int64),
            value_strategy(DataType::Float64),
            value_strategy(DataType::Utf8),
            value_strategy(DataType::Boolean),
            value_strategy(DataType::Date),
        )
            .prop_map(|(a, b, c, d, e)| vec![a, b, c, d, e]),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_exact(rows in rows_strategy(200), rg_rows in 1usize..64) {
        let store = InMemoryObjectStore::new();
        let schema = schema();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        let mut w = PixelsWriter::with_row_group_rows(&store, "p.pxl", schema, rg_rows);
        w.write_batch(&batch).unwrap();
        w.finish().unwrap();

        let reader = PixelsReader::open(&store, "p.pxl").unwrap();
        prop_assert_eq!(reader.num_rows(), rows.len() as u64);
        let back = reader.read_all(None, &[]).unwrap();
        if rows.is_empty() {
            prop_assert!(back.is_empty());
        } else {
            let all = RecordBatch::concat(&back).unwrap();
            // Float NaN never generated, so PartialEq equality is exact.
            prop_assert_eq!(all.to_rows(), rows);
        }
    }

    #[test]
    fn projection_matches_full_read(rows in rows_strategy(100), cols in prop::collection::btree_set(0usize..5, 1..5)) {
        let store = InMemoryObjectStore::new();
        let schema = schema();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        let mut w = PixelsWriter::with_row_group_rows(&store, "p.pxl", schema, 16);
        w.write_batch(&batch).unwrap();
        w.finish().unwrap();

        let projection: Vec<usize> = cols.into_iter().collect();
        let reader = PixelsReader::open(&store, "p.pxl").unwrap();
        let projected = reader.read_all(Some(&projection), &[]).unwrap();
        let full = reader.read_all(None, &[]).unwrap();
        if !rows.is_empty() {
            let p = RecordBatch::concat(&projected).unwrap();
            let f = RecordBatch::concat(&full).unwrap().project(&projection).unwrap();
            prop_assert_eq!(p, f);
        }
    }

    #[test]
    fn zone_map_pruning_is_sound(rows in rows_strategy(150), threshold in any::<i64>()) {
        let store = InMemoryObjectStore::new();
        let schema = schema();
        let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
        let mut w = PixelsWriter::with_row_group_rows(&store, "p.pxl", schema, 9);
        w.write_batch(&batch).unwrap();
        w.finish().unwrap();

        let reader = PixelsReader::open(&store, "p.pxl").unwrap();
        let preds = [ColumnPredicate {
            column: 0,
            op: PredicateOp::GtEq,
            value: Value::Int64(threshold),
        }];
        let pruned = reader.read_all(None, &preds).unwrap();
        // Count of actually matching rows must be identical whether or not
        // pruning ran (pruning only drops provably-empty row groups).
        let count_match = |batches: &[RecordBatch]| -> usize {
            batches
                .iter()
                .flat_map(|b| b.to_rows())
                .filter(|r| r[0].as_i64().is_some_and(|v| v >= threshold))
                .count()
        };
        let full = reader.read_all(None, &[]).unwrap();
        prop_assert_eq!(count_match(&pruned), count_match(&full));
    }
}
