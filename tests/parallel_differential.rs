//! Differential tests for morsel-driven parallel execution: at every
//! parallelism level the engine must produce the same rows as serial
//! execution AND bill the same number of scanned bytes — parallelism is a
//! latency knob, never a correctness or pricing knob.
//!
//! Rows are compared after a canonical sort (aggregation group order is
//! preserved by the chunk-ordered partial merge, but ORDER BY-less queries
//! make no ordering promise). Float aggregates are compared with a tiny
//! relative tolerance because partial aggregation reassociates additions;
//! everything else must match exactly.

use pixelsdb::catalog::Catalog;
use pixelsdb::common::{RecordBatch, Value};
use pixelsdb::exec::{execute, ExecContext, ExecMetricsSnapshot};
use pixelsdb::planner::plan_query;
use pixelsdb::storage::{InMemoryObjectStore, ObjectStoreRef};
use pixelsdb::workload::{all_queries, load_tpch, TpchConfig};
use std::cmp::Ordering;
use std::sync::Arc;

/// Small scale but many row groups and multiple files per table, so scans
/// produce enough morsels for real fan-out.
fn tpch_fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.002,
            seed: 7,
            row_group_rows: 256,
            files_per_table: 2,
        },
    )
    .unwrap();
    (catalog, store)
}

fn canonical_rows(batches: &[RecordBatch]) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batches.iter().flat_map(|b| b.to_rows()).collect();
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    rows
}

/// Exact equality, except floats may differ by a relative 1e-9 (partial
/// sums reassociate float additions).
fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

fn run_at(
    catalog: &Catalog,
    store: &ObjectStoreRef,
    sql: &str,
    parallelism: usize,
) -> (Vec<Vec<Value>>, ExecMetricsSnapshot) {
    let plan = plan_query(catalog, "tpch", sql).unwrap();
    // Fresh context (and thus fresh footer cache) per run: bytes metered
    // from a cold cache must agree at every parallelism level.
    let ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
    let batches = execute(&plan, &ctx).unwrap();
    (canonical_rows(&batches), ctx.metrics.snapshot())
}

#[test]
fn parallel_execution_matches_serial_rows_and_billing() {
    let (catalog, store) = tpch_fixture();
    let queries: Vec<_> = all_queries()
        .into_iter()
        .filter(|q| q.database == "tpch")
        .collect();
    assert!(queries.len() >= 5, "expected several TPC-H templates");

    for q in queries {
        let (serial_rows, serial_m) = run_at(&catalog, &store, q.sql, 1);
        for parallelism in [2, 4, 8] {
            let (par_rows, par_m) = run_at(&catalog, &store, q.sql, parallelism);
            assert_eq!(
                serial_rows.len(),
                par_rows.len(),
                "{}: row count diverged at parallelism {parallelism}",
                q.id
            );
            for (i, (sr, pr)) in serial_rows.iter().zip(&par_rows).enumerate() {
                assert!(
                    sr.len() == pr.len()
                        && sr.iter().zip(pr.iter()).all(|(a, b)| values_equivalent(a, b)),
                    "{}: row {i} diverged at parallelism {parallelism}:\n  serial:   {sr:?}\n  parallel: {pr:?}",
                    q.id
                );
            }
            assert_eq!(
                serial_m.bytes_scanned, par_m.bytes_scanned,
                "{}: billed bytes diverged at parallelism {parallelism}",
                q.id
            );
            assert_eq!(
                serial_m.rows_scanned, par_m.rows_scanned,
                "{}: rows scanned diverged at parallelism {parallelism}",
                q.id
            );
            assert_eq!(
                (serial_m.row_groups_total, serial_m.row_groups_read),
                (par_m.row_groups_total, par_m.row_groups_read),
                "{}: pruning diverged at parallelism {parallelism}",
                q.id
            );
        }
    }
}

#[test]
fn footer_cache_shared_across_queries_is_not_double_billed() {
    let (catalog, store) = tpch_fixture();
    let sql = "SELECT COUNT(*) FROM lineitem";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();

    let cold_ctx = ExecContext::new(store.clone());
    execute(&plan, &cold_ctx).unwrap();
    let cold = cold_ctx.metrics.snapshot();
    assert_eq!(cold.footer_cache_hits, 0);

    // Second query shares the first context's footer cache: zero footer
    // GETs against the store, and only chunk bytes are billed.
    let warm_ctx = ExecContext::new(store.clone()).with_footer_cache(cold_ctx.footer_cache.clone());
    let store_before = store.metrics();
    execute(&plan, &warm_ctx).unwrap();
    let warm = warm_ctx.metrics.snapshot();
    let gets = store.metrics().delta_since(&store_before).get_requests;

    assert!(warm.footer_cache_hits > 0, "expected cache hits on reopen");
    assert!(
        warm.bytes_scanned < cold.bytes_scanned,
        "warm run must not re-bill footer bytes: {} vs {}",
        warm.bytes_scanned,
        cold.bytes_scanned
    );
    // Every GET in the warm run is a column chunk; footer ranges were
    // served from the cache. lineitem at this scale: 2 files, each with
    // several row groups of 1 projected... COUNT(*) projects one column.
    let row_groups = warm.row_groups_read;
    assert_eq!(
        gets, row_groups,
        "warm run must issue only chunk GETs (one per projected chunk)"
    );
}
