//! Differential tests for the encoded scan pipeline: executing on encoded
//! chunks (dictionary-code predicates, RLE-run aggregation, zone shortcuts,
//! late materialization) behind an async prefetcher and an optional chunk
//! cache must be invisible in every observable except latency. Every TPC-H
//! template is compared against *two* oracles — the decode-everything
//! vectorized path (`with_encoded_scan(false)`) and the row-at-a-time
//! scalar reference (`exec::scalar`) — at parallelism 1 and 4, with the
//! chunk cache off, cold, and warm. Rows, row order, float bit patterns,
//! billed `bytes_scanned`, and user-facing prices must all be identical.
//!
//! Also covers the encoding edge cases end-to-end: NULL runs in dictionary
//! and RLE chunks, single-value chunks, predicates on non-dictionary
//! columns, flipped literal comparisons, IS NULL / IS NOT NULL, always-false
//! predicates (schema-carrying empty batch), all-pruned scans, empty
//! tables, and SUM overflow parity.

use pixelsdb::catalog::{Catalog, CreateTable};
use pixelsdb::common::{DataType, Field, RecordBatch, Schema, Value};
use pixelsdb::exec::{execute, scalar, ExecContext};
use pixelsdb::planner::plan_query;
use pixelsdb::server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixelsdb::storage::{
    ChunkCache, InMemoryObjectStore, ObjectStoreRef, PixelsReader, PixelsWriter,
};
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{all_queries, load_tpch, TpchConfig};
use std::sync::Arc;

fn tpch_fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.002,
            seed: 7,
            row_group_rows: 256,
            files_per_table: 2,
        },
    )
    .unwrap();
    (catalog, store)
}

/// Bit-identity: same variant and, for floats, the exact bit pattern.
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => x.to_bits() == y.to_bits(),
        _ => std::mem::discriminant(a) == std::mem::discriminant(b) && a == b,
    }
}

fn ordered_rows(batches: &[RecordBatch]) -> Vec<Vec<Value>> {
    batches.iter().flat_map(|b| b.to_rows()).collect()
}

fn assert_rows_identical(enc: &[Vec<Value>], oracle: &[Vec<Value>], label: &str) {
    assert_eq!(
        enc.len(),
        oracle.len(),
        "{label}: row count diverged (encoded {} vs oracle {})",
        enc.len(),
        oracle.len()
    );
    for (i, (er, or)) in enc.iter().zip(oracle).enumerate() {
        assert!(
            er.len() == or.len()
                && er
                    .iter()
                    .zip(or.iter())
                    .all(|(a, b)| values_identical(a, b)),
            "{label}: row {i} diverged:\n  encoded: {er:?}\n  oracle:  {or:?}"
        );
    }
}

/// Run `sql` on the encoded path (optionally with a chunk cache) and on both
/// oracles, asserting identical rows, order, and billed bytes.
fn assert_differential(
    catalog: &Catalog,
    store: &ObjectStoreRef,
    db: &str,
    sql: &str,
    parallelism: usize,
    cache: Option<Arc<ChunkCache>>,
    label: &str,
) {
    let plan = plan_query(catalog, db, sql).unwrap();

    let mut enc_ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
    if let Some(c) = cache {
        enc_ctx = enc_ctx.with_chunk_cache(c);
    }
    let enc = execute(&plan, &enc_ctx).unwrap();

    let dec_ctx = ExecContext::new(store.clone())
        .with_parallelism(parallelism)
        .with_encoded_scan(false);
    let dec = execute(&plan, &dec_ctx).unwrap();

    let ref_ctx = ExecContext::new(store.clone()).with_parallelism(parallelism);
    let refb = scalar::execute(&plan, &ref_ctx).unwrap();

    let enc_rows = ordered_rows(&enc);
    assert_rows_identical(
        &enc_rows,
        &ordered_rows(&dec),
        &format!("{label} vs decoded"),
    );
    assert_rows_identical(
        &enc_rows,
        &ordered_rows(&refb),
        &format!("{label} vs scalar"),
    );

    let (em, dm, rm) = (
        enc_ctx.metrics.snapshot(),
        dec_ctx.metrics.snapshot(),
        ref_ctx.metrics.snapshot(),
    );
    assert_eq!(
        em.bytes_scanned, dm.bytes_scanned,
        "{label}: billed bytes diverged from decoded path"
    );
    assert_eq!(
        em.bytes_scanned, rm.bytes_scanned,
        "{label}: billed bytes diverged from scalar path"
    );
    assert_eq!(em.rows_scanned, dm.rows_scanned, "{label}: rows scanned");
}

#[test]
fn tpch_templates_bit_identical_across_pipeline_modes() {
    let (catalog, store) = tpch_fixture();
    let queries: Vec<_> = all_queries()
        .into_iter()
        .filter(|q| q.database == "tpch")
        .collect();
    assert!(queries.len() >= 5, "expected several TPC-H templates");

    // One shared cache reused across all templates: later templates run
    // against a warm (and eventually evicting) cache, which must never show
    // up in results or bills.
    let shared_cache = ChunkCache::shared(4 << 20);
    for q in &queries {
        for parallelism in [1usize, 4] {
            let label = format!("{} @p{parallelism}", q.id);
            assert_differential(
                &catalog,
                &store,
                "tpch",
                q.sql,
                parallelism,
                None,
                &format!("{label} cache=off"),
            );
            assert_differential(
                &catalog,
                &store,
                "tpch",
                q.sql,
                parallelism,
                Some(shared_cache.clone()),
                &format!("{label} cache=shared"),
            );
        }
    }
    // The cache must have actually been exercised for the warm runs to mean
    // anything.
    assert!(
        shared_cache.hits() > 0,
        "differential never hit the chunk cache"
    );
}

#[test]
fn warm_chunk_cache_changes_neither_bills_nor_results_across_service_levels() {
    // Two engines over the same data: one with the chunk cache, one without.
    // After warming, every service level must price a query identically on
    // both — cache hits skip GETs, never billing.
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 11,
            row_group_rows: 128,
            files_per_table: 1,
        },
    )
    .unwrap();
    let mk_server = |chunk_cache_bytes: u64| {
        QueryServer::new(
            Arc::new(TurboEngine::new(
                catalog.clone(),
                store.clone(),
                EngineConfig {
                    chunk_cache_bytes,
                    ..EngineConfig::default()
                },
            )),
            PriceSchedule::default(),
        )
    };
    let cached = mk_server(16 << 20);
    let uncached = mk_server(0);

    let sql = "SELECT o_orderstatus, COUNT(*) FROM orders \
               WHERE o_totalprice > 1000 GROUP BY o_orderstatus ORDER BY o_orderstatus";
    let run = |server: &QueryServer, level: ServiceLevel| {
        let id = server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: sql.into(),
            level,
            result_limit: None,
            tenant: None,
            deadline_us: None,
        });
        let info = server.wait(id).unwrap();
        assert_eq!(info.status, QueryStatus::Finished, "{:?}", info.error);
        (info.result.unwrap(), info.scan_bytes, info.price)
    };

    for level in [
        ServiceLevel::Immediate,
        ServiceLevel::Relaxed,
        ServiceLevel::BestEffort,
    ] {
        // First runs warm the footer caches (and, on `cached`, the chunk
        // cache); the comparison runs are footer-warm on both sides, so the
        // only difference left is chunk-cache residency.
        run(&cached, level);
        run(&uncached, level);
        let (warm_batch, warm_bytes, warm_price) = run(&cached, level);
        let (cold_batch, cold_bytes, cold_price) = run(&uncached, level);
        assert_eq!(
            warm_bytes, cold_bytes,
            "{level:?}: chunk-cache hits changed bytes_scanned"
        );
        assert!(
            (warm_price - cold_price).abs() < 1e-12,
            "{level:?}: chunk-cache hits changed the bill ({warm_price} vs {cold_price})"
        );
        assert_rows_identical(
            &ordered_rows(std::slice::from_ref(&warm_batch)),
            &ordered_rows(std::slice::from_ref(&cold_batch)),
            &format!("{level:?} warm-vs-cold"),
        );
    }
}

// ---------------------------------------------------------------------------
// Encoding edge cases on a purpose-built table.
// ---------------------------------------------------------------------------

/// A table whose columns hit every encoding the reader supports:
/// - `tag`: low-cardinality nullable Utf8 → Dictionary, with NULL runs
/// - `grade`: runs of equal Int64 values, nullable → RLE with NULL runs
/// - `uniq`: distinct Int64 per row → Plain (the non-dictionary column)
/// - `temp`: Float64 with runs, NaN and signed zeros → RLE or Plain
/// - `flat`: the same single value in every row → single-value chunks
fn edge_fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    catalog.create_database("edge");
    let schema = Arc::new(Schema::new(vec![
        Field::nullable("tag", DataType::Utf8),
        Field::nullable("grade", DataType::Int64),
        Field::required("uniq", DataType::Int64),
        Field::nullable("temp", DataType::Float64),
        Field::required("flat", DataType::Int64),
    ]));
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..400i64 {
        let tag = match (i / 16) % 4 {
            0 => Value::Utf8("alpha".into()),
            1 => Value::Null, // a 16-row NULL run inside dictionary chunks
            2 => Value::Utf8("beta".into()),
            _ => Value::Utf8("gamma".into()),
        };
        let grade = if (i / 32) % 3 == 2 {
            Value::Null // 32-row NULL runs inside RLE chunks
        } else {
            Value::Int64(i / 8) // 8-row value runs
        };
        let temp = match i % 64 {
            63 => Value::Float64(f64::NAN),
            62 => Value::Float64(-0.0),
            61 => Value::Null,
            _ => Value::Float64((i / 4) as f64 * 0.5),
        };
        rows.push(vec![
            tag,
            grade,
            Value::Int64(i * 7919 % 10007), // distinct-ish: Plain
            temp,
            Value::Int64(42),
        ]);
    }
    let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
    catalog
        .create_table(CreateTable {
            database: "edge".into(),
            name: "mix".into(),
            schema: schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    let path = "edge/mix/part-0.pxl";
    let mut w = PixelsWriter::with_row_group_rows(store.as_ref(), path, schema, 64);
    w.write_batch(&batch).unwrap();
    let size = w.finish().unwrap();
    let reader = PixelsReader::open(store.as_ref(), path).unwrap();
    catalog
        .register_data_file("edge", "mix", path, reader.footer(), size)
        .unwrap();

    // An empty table, for schema-preserving empty scans.
    let empty_schema = Arc::new(Schema::new(vec![
        Field::required("a", DataType::Int64),
        Field::nullable("b", DataType::Utf8),
    ]));
    catalog
        .create_table(CreateTable {
            database: "edge".into(),
            name: "vacant".into(),
            schema: empty_schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    let path = "edge/vacant/part-0.pxl";
    let w = PixelsWriter::new(store.as_ref(), path, empty_schema);
    let size = w.finish().unwrap();
    let reader = PixelsReader::open(store.as_ref(), path).unwrap();
    catalog
        .register_data_file("edge", "vacant", path, reader.footer(), size)
        .unwrap();

    (catalog, store)
}

/// Verify the fixture actually produced the encodings the tests assume.
#[test]
fn edge_fixture_hits_dictionary_rle_and_plain() {
    use pixelsdb::storage::encoding::Encoding;
    let (_, store) = edge_fixture();
    let reader = PixelsReader::open(store.as_ref(), "edge/mix/part-0.pxl").unwrap();
    let encoding_of = |col: usize| reader.footer().row_groups[0].columns[col].encoding;
    assert_eq!(encoding_of(0), Encoding::Dictionary, "tag");
    assert_eq!(encoding_of(1), Encoding::Rle, "grade");
    assert_eq!(encoding_of(2), Encoding::Plain, "uniq");
    assert_eq!(encoding_of(4), Encoding::Rle, "flat (single value)");
}

#[test]
fn encoding_edge_cases_match_both_oracles() {
    let (catalog, store) = edge_fixture();
    let cache = ChunkCache::shared(1 << 20);
    let queries = [
        // Dictionary predicates, both literal orientations, on NULL runs.
        "SELECT tag, uniq FROM mix WHERE tag = 'beta'",
        "SELECT tag, uniq FROM mix WHERE 'beta' <= tag",
        "SELECT tag, uniq FROM mix WHERE tag <> 'alpha'",
        "SELECT tag, uniq FROM mix WHERE tag < 'b'",
        "SELECT COUNT(*) FROM mix WHERE tag IS NULL",
        "SELECT COUNT(*) FROM mix WHERE tag IS NOT NULL",
        // RLE predicates and run-level aggregation over NULL runs.
        "SELECT grade, uniq FROM mix WHERE grade = 10",
        "SELECT grade FROM mix WHERE grade >= 40",
        "SELECT COUNT(*), COUNT(grade), SUM(grade), MIN(grade), MAX(grade), AVG(grade) FROM mix",
        // Predicate on the Plain (non-dictionary) column.
        "SELECT uniq FROM mix WHERE uniq < 500",
        "SELECT SUM(uniq), MIN(uniq), MAX(uniq) FROM mix",
        // Float aggregates over NaN / -0.0 / NULLs (bit-identical order).
        "SELECT SUM(temp), MIN(temp), MAX(temp), AVG(temp), COUNT(temp) FROM mix",
        "SELECT temp FROM mix WHERE temp > 20.0",
        "SELECT temp FROM mix WHERE temp = 0.0",
        // Single-value chunks: zone shortcut (must_match) and equality.
        "SELECT COUNT(*) FROM mix WHERE flat = 42",
        "SELECT COUNT(*) FROM mix WHERE flat > 0",
        "SELECT SUM(flat), MIN(flat), MAX(flat) FROM mix",
        // Always-false residual and all-pruned zone ranges.
        "SELECT tag, uniq FROM mix WHERE tag = 'delta'",
        "SELECT uniq FROM mix WHERE uniq > 1000000",
        "SELECT COUNT(*), SUM(grade) FROM mix WHERE uniq > 1000000",
        // Mixed conjunctions across encodings.
        "SELECT tag, grade, uniq FROM mix WHERE tag = 'alpha' AND grade >= 2 AND uniq < 9000",
        // Empty table.
        "SELECT a, b FROM vacant",
        "SELECT COUNT(*), SUM(a), MIN(b) FROM vacant",
    ];
    for sql in queries {
        for parallelism in [1usize, 4] {
            let label = format!("{sql} @p{parallelism}");
            assert_differential(
                &catalog,
                &store,
                "edge",
                sql,
                parallelism,
                None,
                &format!("{label} cache=off"),
            );
            assert_differential(
                &catalog,
                &store,
                "edge",
                sql,
                parallelism,
                Some(cache.clone()),
                &format!("{label} cache=shared"),
            );
        }
    }
}

#[test]
fn all_pruned_and_always_false_scans_keep_schema() {
    let (catalog, store) = edge_fixture();
    for sql in [
        "SELECT uniq, tag FROM mix WHERE uniq > 1000000", // all row groups pruned
        "SELECT uniq, tag FROM mix WHERE tag = 'delta'",  // residual kills every row
        "SELECT a, b FROM vacant",                        // zero-row file
    ] {
        let plan = plan_query(&catalog, "edge", sql).unwrap();
        let ctx = ExecContext::new(store.clone());
        let batches = execute(&plan, &ctx).unwrap();
        assert_eq!(batches.len(), 1, "{sql}: one schema-carrying batch");
        assert_eq!(batches[0].num_rows(), 0, "{sql}");
        assert_eq!(
            batches[0].schema().len(),
            plan.schema().len(),
            "{sql}: schema preserved"
        );
    }
}

#[test]
fn sum_overflow_errors_on_both_paths() {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    catalog.create_database("edge");
    let schema = Arc::new(Schema::new(vec![Field::required("big", DataType::Int64)]));
    // Runs of i64::MAX/2: the second run element overflows the sum, on the
    // RLE fast path (i128 endpoint check) and the per-row path alike.
    let rows: Vec<Vec<Value>> = (0..64).map(|_| vec![Value::Int64(i64::MAX / 2)]).collect();
    let batch = RecordBatch::from_rows(schema.clone(), &rows).unwrap();
    catalog
        .create_table(CreateTable {
            database: "edge".into(),
            name: "huge".into(),
            schema: schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    let path = "edge/huge/part-0.pxl";
    let mut w = PixelsWriter::with_row_group_rows(store.as_ref(), path, schema, 64);
    w.write_batch(&batch).unwrap();
    let size = w.finish().unwrap();
    let reader = PixelsReader::open(store.as_ref(), path).unwrap();
    catalog
        .register_data_file("edge", "huge", path, reader.footer(), size)
        .unwrap();

    let plan = plan_query(&catalog, "edge", "SELECT SUM(big) FROM huge").unwrap();
    let enc = execute(&plan, &ExecContext::new(store.clone())).unwrap_err();
    let dec = execute(
        &plan,
        &ExecContext::new(store.clone()).with_encoded_scan(false),
    )
    .unwrap_err();
    assert!(enc.to_string().contains("SUM overflow"), "{enc}");
    assert!(dec.to_string().contains("SUM overflow"), "{dec}");
}
