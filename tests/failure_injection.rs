//! Failure injection: storage faults must surface as clean query failures —
//! never panics, hangs, or wrong results — all the way up through the query
//! server.

use bytes::Bytes;
use pixelsdb::catalog::Catalog;
use pixelsdb::common::{Error, Result};
use pixelsdb::server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixelsdb::storage::{InMemoryObjectStore, ObjectStore, StoreMetricsSnapshot};
use pixelsdb::turbo::{EngineConfig, TurboEngine};
use pixelsdb::workload::{load_tpch, TpchConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An object store that can be switched into a failing mode, and can corrupt
/// a fraction of reads.
struct FaultyStore {
    inner: InMemoryObjectStore,
    fail_reads: AtomicBool,
    /// When set, only reads of paths containing this substring fail — a
    /// scoped outage that hits one table while concurrent queries on other
    /// tables keep running.
    fail_path_substr: Mutex<Option<String>>,
    corrupt_reads: AtomicBool,
    reads: AtomicU64,
}

impl FaultyStore {
    fn new() -> Self {
        FaultyStore {
            inner: InMemoryObjectStore::new(),
            fail_reads: AtomicBool::new(false),
            fail_path_substr: Mutex::new(None),
            corrupt_reads: AtomicBool::new(false),
            reads: AtomicU64::new(0),
        }
    }

    fn check(&self, path: &str) -> Result<()> {
        if self.fail_reads.load(Ordering::Relaxed) {
            return Err(Error::Io("injected storage outage".into()));
        }
        if let Some(substr) = self.fail_path_substr.lock().unwrap().as_deref() {
            if path.contains(substr) {
                return Err(Error::Io("injected storage outage".into()));
            }
        }
        Ok(())
    }

    fn mangle(&self, data: Bytes) -> Bytes {
        if self.corrupt_reads.load(Ordering::Relaxed) && !data.is_empty() {
            let mut v = data.to_vec();
            let n = self.reads.fetch_add(1, Ordering::Relaxed) as usize;
            let idx = n % v.len();
            v[idx] ^= 0xA5;
            Bytes::from(v)
        } else {
            data
        }
    }
}

impl ObjectStore for FaultyStore {
    fn put(&self, path: &str, data: Bytes) -> Result<()> {
        self.inner.put(path, data)
    }
    fn get(&self, path: &str) -> Result<Bytes> {
        self.check(path)?;
        Ok(self.mangle(self.inner.get(path)?))
    }
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.check(path)?;
        Ok(self.mangle(self.inner.get_range(path, offset, len)?))
    }
    fn size(&self, path: &str) -> Result<u64> {
        self.check(path)?;
        self.inner.size(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }
    fn metrics(&self) -> StoreMetricsSnapshot {
        self.inner.metrics()
    }
}

fn deploy(store: Arc<FaultyStore>) -> (QueryServer, Arc<FaultyStore>) {
    let catalog = Catalog::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.0005,
            seed: 9,
            row_group_rows: 256,
            files_per_table: 1,
        },
    )
    .unwrap();
    let engine = Arc::new(TurboEngine::new(
        catalog,
        store.clone() as Arc<dyn ObjectStore>,
        EngineConfig::default(),
    ));
    (QueryServer::new(engine, PriceSchedule::default()), store)
}

#[test]
fn storage_outage_fails_queries_cleanly() {
    let (server, store) = deploy(Arc::new(FaultyStore::new()));
    // Healthy first.
    let id = server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "SELECT COUNT(*) FROM orders".into(),
        level: ServiceLevel::Immediate,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    assert_eq!(server.wait(id).unwrap().status, QueryStatus::Finished);

    // Outage: the same query must fail with an I/O error, not hang.
    store.fail_reads.store(true, Ordering::Relaxed);
    let id = server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "SELECT COUNT(*) FROM orders".into(),
        level: ServiceLevel::Immediate,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    let info = server.wait(id).unwrap();
    assert_eq!(info.status, QueryStatus::Failed);
    assert!(info.error.unwrap().contains("injected storage outage"));

    // Recovery: new queries succeed again.
    store.fail_reads.store(false, Ordering::Relaxed);
    let id = server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "SELECT COUNT(*) FROM orders".into(),
        level: ServiceLevel::BestEffort,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    assert_eq!(server.wait(id).unwrap().status, QueryStatus::Finished);
}

#[test]
fn corrupted_reads_are_detected_not_garbage() {
    // Bit-flip every read: the format's magic/footer/encoding validation
    // must catch it and fail the query (decoding garbage silently would be
    // far worse than an error).
    let (server, store) = deploy(Arc::new(FaultyStore::new()));
    store.corrupt_reads.store(true, Ordering::Relaxed);
    let mut failures = 0;
    for _ in 0..4 {
        let id = server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: "SELECT SUM(o_totalprice) FROM orders".into(),
            level: ServiceLevel::Immediate,
            result_limit: None,
            tenant: None,
            deadline_us: None,
        });
        let info = server.wait(id).unwrap();
        if info.status == QueryStatus::Failed {
            failures += 1;
        }
    }
    assert!(
        failures >= 3,
        "corrupted reads must be detected, only {failures}/4 failed"
    );
}

#[test]
fn cf_acceleration_failure_surfaces() {
    // Saturate the single slot, force CF acceleration, and kill storage mid
    // way: the accelerated query must fail cleanly too.
    let catalog = Catalog::shared();
    let store = Arc::new(FaultyStore::new());
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.0005,
            seed: 9,
            row_group_rows: 256,
            files_per_table: 1,
        },
    )
    .unwrap();
    let engine = Arc::new(TurboEngine::new(
        catalog,
        store.clone() as Arc<dyn ObjectStore>,
        EngineConfig {
            vm_slots: 1,
            cf_fleet_threads: 2,
            // This test asserts the raw CF error path; graceful degradation
            // to VMs is covered in tests/chaos_recovery.rs.
            cf_to_vm_fallback: false,
            ..EngineConfig::default()
        },
    ));
    let blocker_engine = engine.clone();
    let blocker = std::thread::spawn(move || {
        blocker_engine
            .execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .unwrap()
    });
    while !engine.is_busy() {
        std::thread::yield_now();
    }
    // Scope the outage to the accelerated query's table: the blocker is
    // still streaming lineitem/nation reads at this point (the prefetch
    // pipeline issues its GETs from a single I/O thread, so its read phase
    // spans the whole scan), and a global outage would race with it.
    *store.fail_path_substr.lock().unwrap() = Some("tpch/orders".into());
    let r = engine.execute_sql(
        "tpch",
        "SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus",
        true,
    );
    *store.fail_path_substr.lock().unwrap() = None;
    assert!(r.is_err(), "CF path must propagate the storage failure");
    blocker.join().unwrap();
}
