//! Larger-scale smoke tests: everything the small tests verify must also
//! hold at 10× data scale and thousand-query scheduling traces. The heavy
//! test is `#[ignore]`d by default; run with `cargo test -- --ignored`.

use pixelsdb::catalog::Catalog;
use pixelsdb::exec::run_query;
use pixelsdb::server::{AdmissionMode, ServerConfig, ServerSim, ServiceLevel, Submission};
use pixelsdb::sim::SimDuration;
use pixelsdb::storage::InMemoryObjectStore;
use pixelsdb::turbo::{CfConfig, ResourcePricing, VmConfig};
use pixelsdb::workload::{load_tpch, poisson, TpchConfig, WorkloadTrace};

#[test]
fn thousand_query_scheduling_trace() {
    let arrivals = poisson(0.6, SimDuration::from_secs(1800), 77);
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.6, 0.3, 0.1], 78);
    let n = trace.len();
    assert!(n > 900, "expected ~1080 arrivals, got {n}");
    let subs: Vec<Submission> = trace
        .entries
        .into_iter()
        .enumerate()
        .map(|(i, e)| Submission {
            at: e.at,
            class: e.class,
            level: ServiceLevel::ALL[i % 3],
        })
        .collect();
    let report = ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(200),
            ..Default::default()
        },
    )
    .run(subs, SimDuration::from_secs(6 * 3600));
    assert_eq!(report.unfinished, 0, "all {n} queries complete");
    assert_eq!(report.records.len(), n);
    // Level invariants hold at scale.
    for r in &report.records {
        if r.mode == AdmissionMode::Level(ServiceLevel::Immediate) {
            assert_eq!(r.pending(), SimDuration::ZERO);
        }
        if r.mode != AdmissionMode::Level(ServiceLevel::Immediate) {
            assert!(matches!(r.placement, pixelsdb::turbo::Placement::Vm));
        }
    }
    assert!(report.total_resource_cost.total() > 0.0);
}

#[test]
#[ignore = "heavy: ~1M lineitem rows; run with --ignored"]
fn tpch_scale_001_correctness() {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    let cfg = TpchConfig {
        scale: 0.01,
        seed: 42,
        row_group_rows: 16 * 1024,
        files_per_table: 2,
    };
    load_tpch(&catalog, store.as_ref(), "tpch", &cfg).unwrap();
    let li = catalog.get_table("tpch", "lineitem").unwrap();
    assert!(li.stats.row_count > 50_000);

    // Aggregate consistency across a large table: group counts sum to total.
    let per_flag = run_query(
        &catalog,
        store.clone(),
        "tpch",
        "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
    )
    .unwrap();
    let total: i64 = per_flag
        .to_rows()
        .iter()
        .map(|r| r[1].as_i64().unwrap())
        .sum();
    assert_eq!(total as u64, li.stats.row_count);

    // Join cardinality: every lineitem joins exactly one order.
    let joined = run_query(
        &catalog,
        store,
        "tpch",
        "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
    )
    .unwrap();
    assert_eq!(
        joined.row(0)[0].as_i64().unwrap() as u64,
        li.stats.row_count
    );
}
