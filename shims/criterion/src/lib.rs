//! Offline shim for `criterion`: runs benchmark closures and reports
//! mean wall-clock time per iteration (no statistical analysis, plots, or
//! baselines). Like the real crate, when a bench binary is invoked without
//! `--bench` (as `cargo test` does) each benchmark runs exactly once as a
//! smoke test.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of a benchmark, used to derive rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How expensive per-iteration setup input is; accepted for API
/// compatibility (the shim treats all sizes alike).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// False when invoked by `cargo test` (no `--bench` argument): each
    /// closure runs once, untimed.
    measure: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if self.measure {
            println!("group: {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(self.measure, id, None, sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.measure, &label, self.throughput, n, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    measure: bool,
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        measure,
        iters: 0,
        elapsed: Duration::ZERO,
        sample_size,
    };
    f(&mut b);
    if !measure || b.iters == 0 {
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.2} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{label:<40} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// Passed to benchmark closures; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    measure: bool,
    iters: u64,
    elapsed: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm-up round, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.sample_size as u64;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if !self.measure {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
