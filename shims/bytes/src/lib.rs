//! Offline shim for the `bytes` crate: a cheaply cloneable, sliceable,
//! immutable byte buffer. Implements exactly the API surface this workspace
//! uses so the build works without registry access.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share the
/// underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied; the shim does not keep the
    /// zero-copy optimization of the real crate).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation. Panics if out of range,
    /// matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            begin <= end && end <= self.len(),
            "range [{begin}, {end}) out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.len(), 11);
        assert_eq!(&b[..5], b"hello");
        let s = b.slice(6..);
        assert_eq!(s.as_ref(), b"world");
        assert_eq!(s.slice(1..3).as_ref(), b"or");
        assert_eq!(b, Bytes::from_static(b"hello world"));
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        Bytes::from_static(b"abc").slice(1..9);
    }
}
