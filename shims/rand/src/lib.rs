//! Offline shim for `rand` 0.8: the `Rng`/`SeedableRng` traits and
//! `rngs::StdRng` with the API subset this workspace uses (`gen_range` over
//! integer/float ranges, `gen_bool`). The generator is xoshiro256**, seeded
//! via SplitMix64 — statistically solid, deterministic per seed, but NOT the
//! same stream as upstream rand's StdRng (no caller relies on the exact
//! stream, only on determinism).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive; panics if empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a `u64` to a uniform float in `[0, 1)`.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a bounded interval. The single blanket
/// [`SampleRange`] impls below force `gen_range(a..b)` to return the range's
/// element type, which is what lets unannotated integer/float literals infer
/// exactly as they do with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                debug_assert!(span > 0);
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into four non-zero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| c.gen_range(0..100)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<i64> = (0..16).map(|_| d.gen_range(0..100)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let v = r.gen_range(1i32..=50);
            assert!((1..=50).contains(&v));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn distribution_covers_small_domain() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
