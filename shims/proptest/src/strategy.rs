//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRunner;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a fresh value per test case.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Discard values failing `f`, regenerating until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// nested level and returns the strategy for the level above. `depth`
    /// bounds the recursion; `_desired_size` / `_expected_branch_size` are
    /// accepted for upstream API compatibility but unused by this shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            rec: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe inner trait backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value_dyn(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive candidates: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: Debug> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        // Geometric-ish depth bias: deep trees are rarer than shallow ones.
        let mut d = 0;
        while d < self.depth && runner.below(2) == 0 {
            d += 1;
        }
        let mut strat = self.base.clone();
        for _ in 0..d {
            strat = (self.rec)(strat);
        }
        strat.new_value(runner)
    }
}

/// Weighted choice between strategies sharing a value type; built by
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(runner);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("non-empty").1.new_value(runner)
    }
}

// ---- primitive strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (runner.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (runner.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (runner.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex-subset generators (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, runner: &mut TestRunner) -> String {
        crate::string::generate(self, runner)
    }
}

// ---- tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($( self.$idx.new_value(runner), )+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
