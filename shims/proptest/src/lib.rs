//! Offline shim for `proptest`: random-input property testing implementing
//! the API subset this workspace uses — `Strategy` with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, range and regex-literal
//! strategies, collection/option/sample helpers, `any::<T>()`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert!` macros.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (stable CI), and failing inputs are reported but NOT shrunk.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRunner};

/// Mirrors `proptest::prelude` from the real crate.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module of strategy constructors.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    // Internal expansion: one test fn per item, all sharing the config expr.
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            let strategies = ( $( $strat ),+ , );
            for _case in 0..config.cases {
                let value =
                    $crate::strategy::Strategy::new_value(&strategies, &mut runner);
                let described = format!("{:?}", value);
                let ( $( $pat ),+ , ) = value;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if outcome.is_err() {
                    panic!(
                        "proptest case {}/{} failed for input: {}",
                        _case + 1,
                        config.cases,
                        described
                    );
                }
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// In this shim, property assertions panic like regular assertions; the
/// `proptest!` driver reports the failing input.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}
