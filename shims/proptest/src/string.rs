//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the patterns this workspace uses: character classes with ranges
//! (`[a-zA-Z0-9_%' ]`), the printable-character escape `\PC`, literal
//! characters, and `{m,n}` / `{n}` repetition. Anything else is treated as a
//! literal character.

use crate::test_runner::TestRunner;

#[derive(Debug, Clone)]
enum Atom {
    /// Choose uniformly from these characters.
    Class(Vec<char>),
    /// Any printable character (mostly ASCII, occasionally multi-byte).
    Printable,
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(set)
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                Atom::Printable
            }
            '\\' => {
                let c = *chars.get(i + 1).unwrap_or(&'\\');
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m,n} or {n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Characters `\PC` occasionally picks beyond printable ASCII, to exercise
/// multi-byte handling in parsers.
const EXOTIC: &[char] = &['é', 'λ', 'Ж', '中', '🦀', 'ß', '°', '€'];

fn sample_atom(atom: &Atom, runner: &mut TestRunner) -> char {
    match atom {
        Atom::Class(set) => set[runner.below(set.len() as u64) as usize],
        Atom::Printable => {
            if runner.below(16) == 0 {
                EXOTIC[runner.below(EXOTIC.len() as u64) as usize]
            } else {
                // Printable ASCII: 0x20 ..= 0x7E.
                char::from_u32(0x20 + runner.below(0x5F) as u32).expect("ascii")
            }
        }
        Atom::Literal(c) => *c,
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = (piece.max - piece.min) as u64 + 1;
        let n = piece.min + runner.below(span) as usize;
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, runner));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn generates_matching_strings() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(1));
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,6}", &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let s = generate("\\PC{0,10}", &mut r);
            assert!(s.chars().count() <= 10);
            assert!(s.chars().all(|c| !c.is_control()));

            let s = generate("[a-zA-Z0-9']{1,10}", &mut r);
            assert!((1..=10).contains(&s.chars().count()));
        }
    }

    #[test]
    fn literal_and_exact_quantifier() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(1));
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("x{3}", &mut r), "xxx");
    }
}
