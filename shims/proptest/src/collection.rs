//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Size bounds for generated collections (inclusive lower, exclusive upper).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, runner: &mut TestRunner) -> usize {
        let span = (self.max_exclusive - self.min).max(1) as u64;
        self.min + runner.below(span) as usize
    }
}

/// `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let n = self.size.pick(runner);
        (0..n).map(|_| self.element.new_value(runner)).collect()
    }
}

/// `BTreeMap` with `size` insertion attempts (duplicate keys collapse, so
/// the result can be smaller, like upstream's lower-bound-relaxed behaviour).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let n = self.size.pick(runner);
        (0..n)
            .map(|_| (self.keys.new_value(runner), self.values.new_value(runner)))
            .collect()
    }
}

/// `BTreeSet` with `size` insertion attempts (duplicates collapse).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let n = self.size.pick(runner);
        (0..n).map(|_| self.element.new_value(runner)).collect()
    }
}
