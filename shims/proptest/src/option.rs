//! `option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// `Some(value)` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(runner))
        }
    }
}
