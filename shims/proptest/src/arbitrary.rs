//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
