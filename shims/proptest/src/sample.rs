//! `sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::fmt::Debug;

/// Uniformly select one of `options` (must be non-empty).
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.options[runner.below(self.options.len() as u64) as usize].clone()
    }
}
