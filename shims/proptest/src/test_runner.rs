//! Test configuration and the per-test random source.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration for one `proptest!` test function.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Drives value generation. Seeded deterministically (override with the
/// `PROPTEST_SEED` environment variable) so CI runs are reproducible.
pub struct TestRunner {
    rng: StdRng,
    #[allow(dead_code)]
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.rng.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }
}
