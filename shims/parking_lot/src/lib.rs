//! Offline shim for `parking_lot`: `Mutex`, `RwLock`, and `Condvar` with the
//! parking_lot API (no lock poisoning, guards returned directly) implemented
//! over `std::sync`. A poisoned std lock is treated as acquired, matching
//! parking_lot's panic-transparent behaviour.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive; `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock; `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable usable with [`Mutex`]; `wait` re-acquires the lock
/// before returning.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wait with a timeout; returns `true` if the wait timed out before a
    /// notification arrived. The lock is re-acquired in either case.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_reacquires() {
        let pair = (Mutex::new(0), Condvar::new());
        let mut guard = pair.0.lock();
        let timed_out = pair
            .1
            .wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(timed_out);
        *guard += 1;
        assert_eq!(*guard, 1);
    }
}
