//! Property-based tests for the SQL front-end: rendering a randomly
//! generated AST and re-parsing it must reach a fixpoint (render ∘ parse ∘
//! render = render), which catches precedence and parenthesization bugs.

use pixels_common::Value;
use pixels_sql::ast::*;
use pixels_sql::parse_statement;
use proptest::prelude::*;

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|v| Expr::lit(Value::Int64(v as i64))),
        (-1000i32..1000).prop_map(|v| Expr::lit(Value::Float64(v as f64 / 8.0))),
        "[a-z ]{0,8}".prop_map(|s| Expr::lit(Value::Utf8(s))),
        any::<bool>().prop_map(|b| Expr::lit(Value::Boolean(b))),
        Just(Expr::lit(Value::Null)),
        (0i32..40_000).prop_map(|d| Expr::lit(Value::Date(d))),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}"
            .prop_filter("not a keyword", |s| !is_keyword(s))
            .prop_map(Expr::col),
        (
            "[a-z][a-z0-9]{0,4}".prop_filter("not a keyword", |s| !is_keyword(s)),
            "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| !is_keyword(s))
        )
            .prop_map(|(q, c)| Expr::qcol(q, c)),
    ]
}

fn is_keyword(s: &str) -> bool {
    pixels_sql::token::Keyword::parse(s).is_some()
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), bin_op(), inner.clone())
                .prop_map(|(l, op, r)| { Expr::binary(l, op, r) }),
            inner.clone().prop_map(|e| Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n
                }
            ),
            (column(), "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, p, n)| Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(Expr::lit(Value::Utf8(p))),
                negated: n
            }),
            prop::collection::vec(inner.clone(), 1..3).prop_map(|args| Expr::Function {
                name: "coalesce".into(),
                args,
                distinct: false
            }),
        ]
    })
}

fn bin_op() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Plus,
        BinaryOp::Minus,
        BinaryOp::Multiply,
        BinaryOp::Divide,
        BinaryOp::Modulo,
        BinaryOp::Eq,
        BinaryOp::NotEq,
        BinaryOp::Lt,
        BinaryOp::LtEq,
        BinaryOp::Gt,
        BinaryOp::GtEq,
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::Concat,
    ])
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        prop::collection::vec(expr_strategy(), 1..4),
        "[a-z][a-z0-9_]{0,7}".prop_filter("not kw", |s| !is_keyword(s)),
        prop::option::of(expr_strategy()),
        prop::option::of((expr_strategy(), any::<bool>())),
        prop::option::of(1u64..1000),
        any::<bool>(),
    )
        .prop_map(
            |(projection, table, selection, order, limit, distinct)| Select {
                distinct,
                projection: projection
                    .into_iter()
                    .map(|expr| SelectItem::Expr { expr, alias: None })
                    .collect(),
                from: Some(TableExpr::Table {
                    name: ObjectName::bare(table),
                    alias: None,
                }),
                selection,
                group_by: vec![],
                having: None,
                order_by: order
                    .map(|(expr, asc)| vec![OrderByItem { expr, asc }])
                    .unwrap_or_default(),
                limit,
                offset: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_render_parse_fixpoint(e in expr_strategy()) {
        let sql = format!("SELECT {e}");
        let parsed = parse_statement(&sql);
        prop_assert!(parsed.is_ok(), "failed to parse {sql}: {:?}", parsed.err());
        let rendered = parsed.unwrap().to_string();
        let reparsed = parse_statement(&rendered).unwrap().to_string();
        prop_assert_eq!(rendered, reparsed);
    }

    #[test]
    fn select_render_parse_fixpoint(q in select_strategy()) {
        let sql = q.to_string();
        let parsed = parse_statement(&sql);
        prop_assert!(parsed.is_ok(), "failed to parse {sql}: {:?}", parsed.err());
        let rendered = parsed.unwrap().to_string();
        let reparsed = parse_statement(&rendered).unwrap().to_string();
        prop_assert_eq!(rendered, reparsed);
    }

    #[test]
    fn lexer_never_panics(input in "\\PC{0,80}") {
        let _ = pixels_sql::lexer::lex(&input);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse_statement(&input);
    }
}
