//! Token model for the SQL lexer.

use std::fmt;

/// SQL keywords recognized by PixelsDB. Matching is case-insensitive; any
/// identifier not in this list lexes as [`Token::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Offset,
    Asc,
    Desc,
    As,
    And,
    Or,
    Not,
    In,
    Is,
    Null,
    Like,
    Between,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    True,
    False,
    Join,
    Inner,
    Left,
    Right,
    Outer,
    Cross,
    On,
    Explain,
    Show,
    Tables,
    Databases,
    Describe,
    Date,
    Timestamp,
    Interval,
    Extract,
    Year,
    Month,
    Day,
}

impl Keyword {
    /// Parse a keyword from an identifier, case-insensitively.
    pub fn parse(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "OFFSET" => Offset,
            "ASC" => Asc,
            "DESC" => Desc,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "IS" => Is,
            "NULL" => Null,
            "LIKE" => Like,
            "BETWEEN" => Between,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "CAST" => Cast,
            "TRUE" => True,
            "FALSE" => False,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "RIGHT" => Right,
            "OUTER" => Outer,
            "CROSS" => Cross,
            "ON" => On,
            "EXPLAIN" => Explain,
            "SHOW" => Show,
            "TABLES" => Tables,
            "DATABASES" => Databases,
            "DESCRIBE" | "DESC_TABLE" => Describe,
            "DATE" => Date,
            "TIMESTAMP" => Timestamp,
            "INTERVAL" => Interval,
            "EXTRACT" => Extract,
            "YEAR" => Year,
            "MONTH" => Month,
            "DAY" => Day,
            _ => return None,
        })
    }
}

/// One lexed token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unquoted identifier (original case preserved).
    Ident(String),
    /// Numeric literal text (integer or decimal; parsed later).
    Number(String),
    /// Single-quoted string literal with escapes resolved.
    String(String),
    Comma,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    Semicolon,
    /// String concatenation `||`.
    Concat,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Number(s) => write!(f, "number {s}"),
            TokenKind::String(s) => write!(f, "string {s:?}"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Percent => f.write_str("'%'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::NotEq => f.write_str("'<>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::LtEq => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::GtEq => f.write_str("'>='"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Semicolon => f.write_str("';'"),
            TokenKind::Concat => f.write_str("'||'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("lineitem"), None);
    }

    #[test]
    fn display_is_helpful() {
        assert_eq!(TokenKind::Comma.to_string(), "','");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier \"x\"");
    }
}
