//! `pixels-sql` — the SQL front-end of PixelsDB.
//!
//! A hand-written [`lexer`], a recursive-descent [`parser`] with
//! precedence-climbing expressions, and a typed [`ast`] whose nodes render
//! back to canonical SQL. The dialect covers the analytical subset PixelsDB
//! executes: SELECT with joins (inner/left/right/cross), derived tables,
//! aggregation with GROUP BY/HAVING, DISTINCT, ORDER BY/LIMIT/OFFSET, CASE,
//! CAST, EXTRACT, date literals, and the usual predicate forms (BETWEEN,
//! IN, LIKE, IS NULL).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, DateField, Expr, JoinType, ObjectName, OrderByItem, Select, SelectItem, Statement,
    TableExpr, UnaryOp,
};
pub use parser::{parse_query, parse_statement};
