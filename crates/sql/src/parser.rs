//! Recursive-descent SQL parser with precedence-climbing expressions.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};
use pixels_common::{value, DataType, Error, Result, Value};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.consume(&TokenKind::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a SELECT query, rejecting other statement kinds.
pub fn parse_query(sql: &str) -> Result<Select> {
    match parse_statement(sql)? {
        Statement::Query(q) => Ok(*q),
        other => Err(Error::Parse(format!(
            "expected a SELECT query, found: {other}"
        ))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_ahead(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: &str) -> Error {
        match self.tokens.get(self.pos) {
            Some(t) => Error::Parse(format!("{msg} at byte {} (found {})", t.offset, t.kind)),
            None => Error::Parse(format!("{msg} at end of input")),
        }
    }

    /// Consume the token if it matches; returns whether it did.
    fn consume(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume_keyword(&mut self, k: Keyword) -> bool {
        self.consume(&TokenKind::Keyword(k))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.consume(kind) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {kind}")))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        self.expect(&TokenKind::Keyword(k))
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err_here("unexpected trailing input"))
        }
    }

    /// An identifier; certain non-reserved keywords double as identifiers.
    fn parse_ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(TokenKind::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            // Allow column/table names that collide with soft keywords.
            Some(TokenKind::Keyword(
                k @ (Keyword::Year
                | Keyword::Month
                | Keyword::Day
                | Keyword::Date
                | Keyword::Timestamp
                | Keyword::Tables
                | Keyword::Databases),
            )) => {
                self.pos += 1;
                Ok(format!("{k:?}").to_ascii_lowercase())
            }
            _ => Err(self.err_here("expected identifier")),
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(TokenKind::Keyword(Keyword::Explain)) => {
                self.pos += 1;
                if matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("analyze"))
                {
                    self.pos += 1;
                    return Ok(Statement::ExplainAnalyze(Box::new(self.parse_statement()?)));
                }
                Ok(Statement::Explain(Box::new(self.parse_statement()?)))
            }
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("analyze") => {
                self.pos += 1;
                Ok(Statement::Analyze(self.parse_object_name()?))
            }
            Some(TokenKind::Keyword(Keyword::Show)) => {
                self.pos += 1;
                if self.consume_keyword(Keyword::Tables) {
                    Ok(Statement::ShowTables)
                } else if self.consume_keyword(Keyword::Databases) {
                    Ok(Statement::ShowDatabases)
                } else {
                    Err(self.err_here("expected TABLES or DATABASES after SHOW"))
                }
            }
            Some(TokenKind::Keyword(Keyword::Describe)) => {
                self.pos += 1;
                Ok(Statement::Describe(self.parse_object_name()?))
            }
            Some(TokenKind::Keyword(Keyword::Select)) => {
                Ok(Statement::Query(Box::new(self.parse_select()?)))
            }
            _ => Err(self.err_here("expected a statement")),
        }
    }

    fn parse_object_name(&mut self) -> Result<ObjectName> {
        let first = self.parse_ident()?;
        if self.consume(&TokenKind::Dot) {
            let second = self.parse_ident()?;
            Ok(ObjectName::qualified(first, second))
        } else {
            Ok(ObjectName::bare(first))
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.consume_keyword(Keyword::Distinct);
        let mut projection = vec![self.parse_select_item()?];
        while self.consume(&TokenKind::Comma) {
            projection.push(self.parse_select_item()?);
        }
        let from = if self.consume_keyword(Keyword::From) {
            Some(self.parse_table_expr()?)
        } else {
            None
        };
        let selection = if self.consume_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.consume(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.consume_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.consume_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.consume_keyword(Keyword::Desc) {
                    false
                } else {
                    self.consume_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.consume(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.consume_keyword(Keyword::Limit) {
            Some(self.parse_u64()?)
        } else {
            None
        };
        let offset = if self.consume_keyword(Keyword::Offset) {
            Some(self.parse_u64()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                n.parse()
                    .map_err(|_| Error::Parse(format!("expected an integer, found {n}")))
            }
            _ => Err(self.err_here("expected an integer")),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.consume(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(TokenKind::Ident(q)), Some(TokenKind::Dot), Some(TokenKind::Star)) =
            (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword(Keyword::As)
            || matches!(self.peek(), Some(TokenKind::Ident(_)))
        {
            Some(self.parse_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // -- FROM clause --------------------------------------------------------

    fn parse_table_expr(&mut self) -> Result<TableExpr> {
        let mut left = self.parse_table_factor()?;
        loop {
            // Comma join == CROSS JOIN.
            if self.consume(&TokenKind::Comma) {
                let right = self.parse_table_factor()?;
                left = TableExpr::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    join_type: JoinType::Cross,
                    on: None,
                };
                continue;
            }
            let join_type = if self.consume_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                JoinType::Cross
            } else if self.consume_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                JoinType::Inner
            } else if self.consume_keyword(Keyword::Left) {
                self.consume_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinType::Left
            } else if self.consume_keyword(Keyword::Right) {
                self.consume_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinType::Right
            } else if self.consume_keyword(Keyword::Join) {
                JoinType::Inner
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if join_type == JoinType::Cross {
                None
            } else {
                self.expect_keyword(Keyword::On)?;
                Some(self.parse_expr()?)
            };
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableExpr> {
        if self.consume(&TokenKind::LParen) {
            // Derived table: (SELECT ...) AS alias
            let query = self.parse_select()?;
            self.expect(&TokenKind::RParen)?;
            self.consume_keyword(Keyword::As);
            let alias = self.parse_ident()?;
            return Ok(TableExpr::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.parse_object_name()?;
        let alias = if self.consume_keyword(Keyword::As)
            || matches!(self.peek(), Some(TokenKind::Ident(_)))
        {
            Some(self.parse_ident()?)
        } else {
            None
        };
        Ok(TableExpr::Table { name, alias })
    }

    // -- expressions --------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.consume_keyword(Keyword::Is) {
            let negated = self.consume_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.consume_keyword(Keyword::Not);
        if self.consume_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.consume(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.consume_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN, or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(TokenKind::Eq) => BinaryOp::Eq,
            Some(TokenKind::NotEq) => BinaryOp::NotEq,
            Some(TokenKind::Lt) => BinaryOp::Lt,
            Some(TokenKind::LtEq) => BinaryOp::LtEq,
            Some(TokenKind::Gt) => BinaryOp::Gt,
            Some(TokenKind::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinaryOp::Plus,
                Some(TokenKind::Minus) => BinaryOp::Minus,
                Some(TokenKind::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinaryOp::Multiply,
                Some(TokenKind::Slash) => BinaryOp::Divide,
                Some(TokenKind::Percent) => BinaryOp::Modulo,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals immediately.
            return Ok(match inner {
                Expr::Literal(Value::Int64(v)) => Expr::Literal(Value::Int64(-v)),
                Expr::Literal(Value::Float64(v)) => Expr::Literal(Value::Float64(-v)),
                other => Expr::UnaryOp {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.consume(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v: f64 = n
                        .parse()
                        .map_err(|_| Error::Parse(format!("invalid number {n}")))?;
                    Ok(Expr::lit(Value::Float64(v)))
                } else {
                    let v: i64 = n
                        .parse()
                        .map_err(|_| Error::Parse(format!("invalid integer {n}")))?;
                    Ok(Expr::lit(Value::Int64(v)))
                }
            }
            Some(TokenKind::String(s)) => {
                self.pos += 1;
                Ok(Expr::lit(Value::Utf8(s)))
            }
            Some(TokenKind::Keyword(Keyword::True)) => {
                self.pos += 1;
                Ok(Expr::lit(Value::Boolean(true)))
            }
            Some(TokenKind::Keyword(Keyword::False)) => {
                self.pos += 1;
                Ok(Expr::lit(Value::Boolean(false)))
            }
            Some(TokenKind::Keyword(Keyword::Null)) => {
                self.pos += 1;
                Ok(Expr::lit(Value::Null))
            }
            Some(TokenKind::Keyword(Keyword::Date)) => {
                // DATE 'YYYY-MM-DD' literal; bare `date` falls through to a
                // column reference.
                if let Some(TokenKind::String(s)) = self.peek_ahead(1).cloned() {
                    self.pos += 2;
                    Ok(Expr::lit(Value::Date(value::parse_date(&s)?)))
                } else {
                    self.parse_column_or_function()
                }
            }
            Some(TokenKind::Keyword(Keyword::Timestamp)) => {
                if let Some(TokenKind::String(s)) = self.peek_ahead(1).cloned() {
                    self.pos += 2;
                    Ok(Expr::lit(Value::Timestamp(value::parse_timestamp(&s)?)))
                } else {
                    self.parse_column_or_function()
                }
            }
            Some(TokenKind::Keyword(Keyword::Case)) => self.parse_case(),
            Some(TokenKind::Keyword(Keyword::Cast)) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_keyword(Keyword::As)?;
                let ty_name = match self.advance().cloned() {
                    Some(TokenKind::Ident(s)) => s,
                    Some(TokenKind::Keyword(Keyword::Date)) => "DATE".to_string(),
                    Some(TokenKind::Keyword(Keyword::Timestamp)) => "TIMESTAMP".to_string(),
                    _ => return Err(self.err_here("expected a type name in CAST")),
                };
                // Optional precision/scale like DECIMAL(12, 2): parse & ignore.
                if self.consume(&TokenKind::LParen) {
                    self.parse_u64()?;
                    if self.consume(&TokenKind::Comma) {
                        self.parse_u64()?;
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    to: DataType::parse_sql(&ty_name)?,
                })
            }
            Some(TokenKind::Keyword(Keyword::Extract)) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let field = match self.advance() {
                    Some(TokenKind::Keyword(Keyword::Year)) => DateField::Year,
                    Some(TokenKind::Keyword(Keyword::Month)) => DateField::Month,
                    Some(TokenKind::Keyword(Keyword::Day)) => DateField::Day,
                    _ => return Err(self.err_here("expected YEAR, MONTH, or DAY in EXTRACT")),
                };
                self.expect_keyword(Keyword::From)?;
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Extract {
                    field,
                    expr: Box::new(expr),
                })
            }
            // YEAR(x) / MONTH(x) / DAY(x) shorthand.
            Some(TokenKind::Keyword(k @ (Keyword::Year | Keyword::Month | Keyword::Day)))
                if self.peek_ahead(1) == Some(&TokenKind::LParen) =>
            {
                self.pos += 2;
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                let field = match k {
                    Keyword::Year => DateField::Year,
                    Keyword::Month => DateField::Month,
                    _ => DateField::Day,
                };
                Ok(Expr::Extract {
                    field,
                    expr: Box::new(expr),
                })
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(_)) | Some(TokenKind::Keyword(_)) => {
                self.parse_column_or_function()
            }
            _ => Err(self.err_here("expected an expression")),
        }
    }

    fn parse_column_or_function(&mut self) -> Result<Expr> {
        let name = self.parse_ident()?;
        // Function call?
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            let distinct = self.consume_keyword(Keyword::Distinct);
            let mut args = Vec::new();
            if self.consume(&TokenKind::Star) {
                args.push(Expr::Wildcard);
            } else if self.peek() != Some(&TokenKind::RParen) {
                args.push(self.parse_expr()?);
                while self.consume(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name: name.to_ascii_lowercase(),
                args,
                distinct,
            });
        }
        // Qualified column?
        if self.peek() == Some(&TokenKind::Dot) {
            self.pos += 1;
            let col = self.parse_ident()?;
            return Ok(Expr::qcol(name, col));
        }
        Ok(Expr::col(name))
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword(Keyword::Case)?;
        let operand = if self.peek() != Some(&TokenKind::Keyword(Keyword::When)) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.consume_keyword(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.err_here("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse_statement(sql).unwrap().to_string()
    }

    #[test]
    fn simple_select() {
        assert_eq!(roundtrip("select a, b from t"), "SELECT a, b FROM t");
        assert_eq!(roundtrip("SELECT * FROM db.t;"), "SELECT * FROM db.t");
    }

    #[test]
    fn select_without_from() {
        assert_eq!(roundtrip("SELECT 1 + 2"), "SELECT (1 + 2)");
    }

    #[test]
    fn aliases() {
        assert_eq!(
            roundtrip("SELECT a AS x, b y FROM t AS t1"),
            "SELECT a AS x, b AS y FROM t AS t1"
        );
    }

    #[test]
    fn where_precedence() {
        assert_eq!(
            roundtrip("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3"),
            "SELECT a FROM t WHERE ((a = 1) OR ((b = 2) AND (c = 3)))"
        );
        assert_eq!(
            roundtrip("SELECT a FROM t WHERE NOT a = 1 AND b = 2"),
            "SELECT a FROM t WHERE ((NOT (a = 1)) AND (b = 2))"
        );
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(
            roundtrip("SELECT 1 + 2 * 3 - 4 / 2"),
            "SELECT ((1 + (2 * 3)) - (4 / 2))"
        );
        assert_eq!(roundtrip("SELECT -(1 + 2)"), "SELECT (-(1 + 2))");
        assert_eq!(roundtrip("SELECT -5"), "SELECT -5");
    }

    #[test]
    fn joins() {
        assert_eq!(
            roundtrip("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x"),
            "SELECT * FROM a JOIN b ON (a.id = b.id) LEFT JOIN c ON (b.x = c.x)"
        );
        assert_eq!(
            roundtrip("SELECT * FROM a, b WHERE a.id = b.id"),
            "SELECT * FROM a CROSS JOIN b WHERE (a.id = b.id)"
        );
        assert_eq!(
            roundtrip("SELECT * FROM a CROSS JOIN b"),
            "SELECT * FROM a CROSS JOIN b"
        );
    }

    #[test]
    fn derived_table() {
        assert_eq!(
            roundtrip("SELECT x FROM (SELECT a AS x FROM t) AS sub"),
            "SELECT x FROM (SELECT a AS x FROM t) AS sub"
        );
    }

    #[test]
    fn aggregates_and_group_by() {
        assert_eq!(
            roundtrip(
                "SELECT status, COUNT(*), SUM(total) FROM orders \
                 GROUP BY status HAVING COUNT(*) > 10 ORDER BY 2 DESC LIMIT 5"
            ),
            "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status \
             HAVING (COUNT(*) > 10) ORDER BY 2 DESC LIMIT 5"
        );
        assert_eq!(
            roundtrip("SELECT COUNT(DISTINCT a) FROM t"),
            "SELECT COUNT(DISTINCT a) FROM t"
        );
    }

    #[test]
    fn between_in_like_is_null() {
        assert_eq!(
            roundtrip(
                "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x','y') \
                 AND c LIKE 'p%' AND d IS NOT NULL AND e NOT IN (1)"
            ),
            "SELECT * FROM t WHERE (((((a BETWEEN 1 AND 10) AND (b IN ('x', 'y'))) \
             AND (c LIKE 'p%')) AND (d IS NOT NULL)) AND (e NOT IN (1)))"
        );
        assert_eq!(
            roundtrip("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2"),
            "SELECT * FROM t WHERE (a NOT BETWEEN 1 AND 2)"
        );
        assert_eq!(
            roundtrip("SELECT * FROM t WHERE name NOT LIKE '%x%'"),
            "SELECT * FROM t WHERE (name NOT LIKE '%x%')"
        );
    }

    #[test]
    fn date_literals_and_extract() {
        assert_eq!(
            roundtrip("SELECT * FROM t WHERE d >= DATE '1995-01-01'"),
            "SELECT * FROM t WHERE (d >= DATE '1995-01-01')"
        );
        assert_eq!(
            roundtrip("SELECT EXTRACT(YEAR FROM d) FROM t"),
            "SELECT EXTRACT(YEAR FROM d) FROM t"
        );
        assert_eq!(
            roundtrip("SELECT year(d) FROM t"),
            "SELECT EXTRACT(YEAR FROM d) FROM t"
        );
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            roundtrip("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t"),
            "SELECT CASE WHEN (a > 0) THEN 'pos' ELSE 'neg' END FROM t"
        );
        assert_eq!(
            roundtrip("SELECT CASE a WHEN 1 THEN 'one' END FROM t"),
            "SELECT CASE a WHEN 1 THEN 'one' END FROM t"
        );
        assert!(parse_statement("SELECT CASE END").is_err());
    }

    #[test]
    fn cast() {
        assert_eq!(
            roundtrip("SELECT CAST(a AS BIGINT) FROM t"),
            "SELECT CAST(a AS BIGINT) FROM t"
        );
        assert_eq!(
            roundtrip("SELECT CAST(a AS DECIMAL(12,2)) FROM t"),
            "SELECT CAST(a AS DOUBLE) FROM t"
        );
    }

    #[test]
    fn qualified_wildcard() {
        assert_eq!(roundtrip("SELECT t.* FROM t"), "SELECT t.* FROM t");
    }

    #[test]
    fn analyze_statements() {
        assert_eq!(roundtrip("ANALYZE orders"), "ANALYZE orders");
        assert_eq!(roundtrip("analyze tpch.orders"), "ANALYZE tpch.orders");
        assert_eq!(
            roundtrip("EXPLAIN ANALYZE SELECT 1"),
            "EXPLAIN ANALYZE SELECT 1"
        );
        assert!(parse_statement("ANALYZE").is_err());
    }

    #[test]
    fn other_statements() {
        assert_eq!(roundtrip("SHOW TABLES"), "SHOW TABLES");
        assert_eq!(roundtrip("SHOW DATABASES"), "SHOW DATABASES");
        assert_eq!(roundtrip("DESCRIBE tpch.orders"), "DESCRIBE tpch.orders");
        assert_eq!(roundtrip("EXPLAIN SELECT 1"), "EXPLAIN SELECT 1");
    }

    #[test]
    fn errors_are_parse_errors() {
        for bad in [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "FROBNICATE",
            "SELECT a FROM t LIMIT x",
            "SELECT * FROM a JOIN b", // missing ON
            "SELECT a b c FROM t",
        ] {
            let err = parse_statement(bad).unwrap_err();
            assert_eq!(err.kind(), "parse", "{bad} -> {err}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn parse_query_rejects_non_queries() {
        assert!(parse_query("SHOW TABLES").is_err());
        assert!(parse_query("SELECT 1").is_ok());
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            roundtrip("SELECT 'a' || 'b' || c FROM t"),
            "SELECT (('a' || 'b') || c) FROM t"
        );
    }

    #[test]
    fn tpch_q1_shape_parses() {
        let sql = "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
                   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                   AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order \
                   FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                   GROUP BY l_returnflag, l_linestatus \
                   ORDER BY l_returnflag, l_linestatus";
        let stmt = parse_statement(sql).unwrap();
        let Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        assert_eq!(q.projection.len(), 6);
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.order_by.len(), 2);
    }
}
