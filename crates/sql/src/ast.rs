//! Abstract syntax tree for the PixelsDB SQL dialect.
//!
//! Every node implements `Display`, producing canonical SQL text. This is
//! used by EXPLAIN output, by the text-to-SQL service (which builds ASTs and
//! renders them), and by tests that compare normalized query text.

use pixels_common::{DataType, Value};
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Box<Select>),
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <query>`: execute and report runtime metrics.
    ExplainAnalyze(Box<Statement>),
    ShowTables,
    ShowDatabases,
    Describe(ObjectName),
    /// `ANALYZE <table>`: collect exact column statistics.
    Analyze(ObjectName),
}

/// A possibly-qualified table name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectName {
    pub database: Option<String>,
    pub table: String,
}

impl ObjectName {
    pub fn bare(table: impl Into<String>) -> Self {
        ObjectName {
            database: None,
            table: table.into(),
        }
    }

    pub fn qualified(database: impl Into<String>, table: impl Into<String>) -> Self {
        ObjectName {
            database: Some(database.into()),
            table: table.into(),
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableExpr>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl Select {
    /// An empty SELECT skeleton (used by builders).
    pub fn new(projection: Vec<SelectItem>) -> Self {
        Select {
            distinct: false,
            projection,
            from: None,
            selection: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause item (table, join tree, or derived table).
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    Table {
        name: ObjectName,
        alias: Option<String>,
    },
    Join {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
        join_type: JoinType,
        /// `None` only for CROSS joins.
        on: Option<Expr>,
    },
    Subquery {
        query: Box<Select>,
        alias: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    Cross,
}

/// `expr [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub asc: bool,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[qualifier.]name`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// `*` — legal only as the argument of COUNT.
    Wildcard,
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    UnaryOp {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Function call, aggregate or scalar (resolved during binding).
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        /// `CASE operand WHEN ...` vs searched `CASE WHEN cond ...`.
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
    /// `EXTRACT(field FROM expr)`.
    Extract {
        field: DateField,
        expr: Box<Expr>,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    /// Combine a list of predicates with AND (`None` for an empty list).
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateField {
    Year,
    Month,
    Day,
}

// ---------------------------------------------------------------------------
// Display: canonical SQL rendering
// ---------------------------------------------------------------------------

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
            Statement::ExplainAnalyze(s) => write!(f, "EXPLAIN ANALYZE {s}"),
            Statement::Analyze(n) => write!(f, "ANALYZE {n}"),
            Statement::ShowTables => f.write_str("SHOW TABLES"),
            Statement::ShowDatabases => f.write_str("SHOW DATABASES"),
            Statement::Describe(n) => write!(f, "DESCRIBE {n}"),
        }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.database {
            Some(db) => write!(f, "{db}.{}", self.table),
            None => f.write_str(&self.table),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", o.expr, if o.asc { "" } else { " DESC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl fmt::Display for TableExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableExpr::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} AS {a}"),
                None => write!(f, "{name}"),
            },
            TableExpr::Join {
                left,
                right,
                join_type,
                on,
            } => {
                let jt = match join_type {
                    JoinType::Inner => "JOIN",
                    JoinType::Left => "LEFT JOIN",
                    JoinType::Right => "RIGHT JOIN",
                    JoinType::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {jt} {right}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
            TableExpr::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => f.write_str(name),
            },
            Expr::Literal(Value::Utf8(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Date(d)) => {
                write!(f, "DATE '{}'", pixels_common::value::format_date(*d))
            }
            Expr::Literal(Value::Timestamp(t)) => {
                write!(f, "TIMESTAMP '{}'", Value::Timestamp(*t))
            }
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Wildcard => f.write_str("*"),
            Expr::BinaryOp { left, op, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::UnaryOp { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{}(", name.to_ascii_uppercase())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (when, then) in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Extract { field, expr } => {
                let field = match field {
                    DateField::Year => "YEAR",
                    DateField::Month => "MONTH",
                    DateField::Day => "DAY",
                };
                write!(f, "EXTRACT({field} FROM {expr})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display() {
        let e = Expr::and(
            Expr::eq(
                Expr::qcol("o", "status"),
                Expr::lit(Value::Utf8("F".into())),
            ),
            Expr::binary(
                Expr::col("price"),
                BinaryOp::Gt,
                Expr::lit(Value::Float64(10.0)),
            ),
        );
        assert_eq!(e.to_string(), "((o.status = 'F') AND (price > 10.0))");
    }

    #[test]
    fn date_literal_display() {
        let e = Expr::lit(Value::Date(0));
        assert_eq!(e.to_string(), "DATE '1970-01-01'");
    }

    #[test]
    fn string_escaping_in_display() {
        let e = Expr::lit(Value::Utf8("it's".into()));
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn select_display_full() {
        let q = Select {
            distinct: true,
            projection: vec![
                SelectItem::Expr {
                    expr: Expr::col("a"),
                    alias: Some("x".into()),
                },
                SelectItem::Wildcard,
            ],
            from: Some(TableExpr::Table {
                name: ObjectName::qualified("db", "t"),
                alias: Some("t1".into()),
            }),
            selection: Some(Expr::eq(Expr::col("a"), Expr::lit(Value::Int64(1)))),
            group_by: vec![Expr::col("a")],
            having: Some(Expr::binary(
                Expr::Function {
                    name: "count".into(),
                    args: vec![Expr::Wildcard],
                    distinct: false,
                },
                BinaryOp::Gt,
                Expr::lit(Value::Int64(5)),
            )),
            order_by: vec![OrderByItem {
                expr: Expr::col("a"),
                asc: false,
            }],
            limit: Some(10),
            offset: Some(2),
        };
        assert_eq!(
            q.to_string(),
            "SELECT DISTINCT a AS x, * FROM db.t AS t1 WHERE (a = 1) GROUP BY a \
             HAVING (COUNT(*) > 5) ORDER BY a DESC LIMIT 10 OFFSET 2"
        );
    }

    #[test]
    fn conjunction_builder() {
        assert_eq!(Expr::conjunction(vec![]), None);
        let one = Expr::conjunction(vec![Expr::col("a")]).unwrap();
        assert_eq!(one, Expr::col("a"));
        let two = Expr::conjunction(vec![Expr::col("a"), Expr::col("b")]).unwrap();
        assert_eq!(two.to_string(), "(a AND b)");
    }

    #[test]
    fn join_display() {
        let t = TableExpr::Join {
            left: Box::new(TableExpr::Table {
                name: ObjectName::bare("a"),
                alias: None,
            }),
            right: Box::new(TableExpr::Table {
                name: ObjectName::bare("b"),
                alias: None,
            }),
            join_type: JoinType::Left,
            on: Some(Expr::eq(Expr::qcol("a", "id"), Expr::qcol("b", "id"))),
        };
        assert_eq!(t.to_string(), "a LEFT JOIN b ON (a.id = b.id)");
    }
}
