//! SQL lexer: source text → token stream.
//!
//! Handles `--` line comments, `/* */` block comments, single-quoted string
//! literals with `''` escaping, double-quoted identifiers, integer/decimal
//! numbers, and multi-character operators.

use crate::token::{Keyword, Token, TokenKind};
use pixels_common::{Error, Result};

/// Lex `input` into tokens. Fails on unterminated strings/comments and
/// unexpected characters, reporting the byte offset.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(Error::Parse(format!(
                        "unterminated block comment at byte {start}"
                    )));
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated string literal at byte {start}"
                            )))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy one UTF-8 character.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                    Error::Parse(format!("invalid UTF-8 at byte {i}"))
                                })?,
                            );
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::String(s),
                    offset: start,
                });
            }
            b'"' => {
                // Double-quoted identifier: case preserved, no keyword match.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated quoted identifier at byte {start}"
                            )))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            let ch_len = utf8_len(b);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                    Error::Parse(format!("invalid UTF-8 at byte {i}"))
                                })?,
                            );
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut saw_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    if bytes[i] == b'.' {
                        // Don't consume a dot not followed by a digit (e.g. `1.x`).
                        if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                            break;
                        }
                        saw_dot = true;
                    }
                    i += 1;
                }
                // Exponent suffix (e.g. 1e6, 2.5E-3).
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(input[start..i].to_string()),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::parse(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ => {
                let (kind, len) = match (c, bytes.get(i + 1)) {
                    (b'<', Some(b'=')) => (TokenKind::LtEq, 2),
                    (b'<', Some(b'>')) => (TokenKind::NotEq, 2),
                    (b'>', Some(b'=')) => (TokenKind::GtEq, 2),
                    (b'!', Some(b'=')) => (TokenKind::NotEq, 2),
                    (b'|', Some(b'|')) => (TokenKind::Concat, 2),
                    (b',', _) => (TokenKind::Comma, 1),
                    (b'(', _) => (TokenKind::LParen, 1),
                    (b')', _) => (TokenKind::RParen, 1),
                    (b'*', _) => (TokenKind::Star, 1),
                    (b'+', _) => (TokenKind::Plus, 1),
                    (b'-', _) => (TokenKind::Minus, 1),
                    (b'/', _) => (TokenKind::Slash, 1),
                    (b'%', _) => (TokenKind::Percent, 1),
                    (b'=', _) => (TokenKind::Eq, 1),
                    (b'<', _) => (TokenKind::Lt, 1),
                    (b'>', _) => (TokenKind::Gt, 1),
                    (b'.', _) => (TokenKind::Dot, 1),
                    (b';', _) => (TokenKind::Semicolon, 1),
                    _ => {
                        return Err(Error::Parse(format!(
                            "unexpected character {:?} at byte {start}",
                            c as char
                        )))
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i += len;
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        assert_eq!(
            kinds("SELECT a, b FROM t"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Keyword(K::From),
                TokenKind::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            kinds("1 + 2.5 >= 3e2 <> 4.0E-1"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Plus,
                TokenKind::Number("2.5".into()),
                TokenKind::GtEq,
                TokenKind::Number("3e2".into()),
                TokenKind::NotEq,
                TokenKind::Number("4.0E-1".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' || 'ok'"),
            vec![
                TokenKind::String("it's".into()),
                TokenKind::Concat,
                TokenKind::String("ok".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifiers_preserve_case_and_skip_keywords() {
        assert_eq!(kinds("\"Select\""), vec![TokenKind::Ident("Select".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- trailing\n1 /* block /* nested */ */ ;"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Number("1".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn qualified_names_lex_with_dots() {
        assert_eq!(
            kinds("t.a"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
            ]
        );
    }

    #[test]
    fn number_followed_by_dot_ident() {
        // `1.x` must not eat the dot into the number.
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn errors_report_position() {
        let err = lex("SELECT 'open").unwrap_err();
        assert!(err.message().contains("byte 7"), "{err}");
        assert!(lex("SELECT #").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = lex("SELECT a").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'héllo 世界'"),
            vec![TokenKind::String("héllo 世界".into())]
        );
    }
}
