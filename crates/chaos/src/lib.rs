//! `pixels-chaos` — deterministic fault injection and retry/backoff.
//!
//! The paper's central trade — cloud-function workers that start in ~1 s but
//! cost 9–24× the VM unit price — only holds in production if the engine
//! survives the failure modes that come with that elasticity: CF worker
//! crashes and stragglers (Starling's duplicate-task mitigation), and
//! object-store GET errors and rate-limit latency spikes (Lambada's core
//! operational concern). This crate is the fault model the rest of the
//! workspace tests itself against:
//!
//! - [`FaultPlan`] — a *seed-driven, deterministic* description of which
//!   faults fire where. Same plan + same seed ⇒ the same fault sequence at
//!   every site, independent of thread interleaving across sites (each site
//!   owns its own generator).
//! - [`FaultInjector`] — the runtime half: every instrumented layer asks it
//!   `decide(site)` and gets `Inject::None`, an error, or a latency spike.
//!   Injected counts per site are exported as the
//!   `pixels_faults_injected_total{site=...}` metric family.
//! - [`RetryPolicy`] — capped exponential backoff with decorrelated jitter
//!   ("full jitter" à la the AWS architecture blog), driven by the
//!   `pixels-obs` [`Clock`](pixels_obs::Clock) so the identical policy
//!   backs off in wall time under the real engine and in virtual time under
//!   the simulator.
//!
//! No external dependencies — even the internal RNG (SplitMix64 →
//! xorshift*) lives here so the fault stream can never drift when a shim
//! changes.

pub mod injector;
pub mod plan;
pub mod retry;
pub mod rng;

pub use injector::{FaultInjector, InjectorSnapshot};
pub use plan::{FaultPlan, FaultSite, Inject, SiteSpec};
pub use retry::{RetryOutcome, RetryPolicy, RetrySchedule};
pub use rng::ChaosRng;
