//! The crate-local deterministic generator.
//!
//! Fault streams must be reproducible byte-for-byte across PRs, so the
//! generator is pinned here rather than borrowed from a shim that might be
//! swapped for the real `rand` one day: SplitMix64 seed expansion feeding a
//! xorshift64* core. Statistical quality is more than enough for Bernoulli
//! fault draws and jitter; the contract that matters is determinism.

/// A small deterministic PRNG (SplitMix64-seeded xorshift64*).
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seed the generator. Distinct seeds give uncorrelated streams; the
    /// SplitMix64 expansion makes even adjacent seeds diverge immediately.
    pub fn new(seed: u64) -> ChaosRng {
        // SplitMix64: one round to spread the seed over the whole state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaosRng {
            // xorshift64* must never hold zero state.
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Derive an independent stream for a named sub-domain (e.g. one fault
    /// site), so decision order at one site never perturbs another.
    pub fn derive(seed: u64, domain: &str) -> ChaosRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in domain.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ChaosRng::new(seed ^ h)
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[lo, hi]`. Requires `lo <= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "uniform_u64: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derived_domains_are_independent() {
        let mut get = ChaosRng::derive(7, "storage_get");
        let mut put = ChaosRng::derive(7, "storage_put");
        assert_ne!(get.next_u64(), put.next_u64());
        // Re-deriving reproduces the same stream.
        let mut again = ChaosRng::derive(7, "storage_get");
        let mut get2 = ChaosRng::derive(7, "storage_get");
        assert_eq!(again.next_u64(), get2.next_u64());
    }

    #[test]
    fn bernoulli_rate_is_roughly_honoured() {
        let mut rng = ChaosRng::new(99);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = ChaosRng::new(5);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.uniform_u64(3, 3), 3);
    }
}
