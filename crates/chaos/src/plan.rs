//! Fault plans: the deterministic description of *what* fails *where*.

use std::collections::BTreeMap;
use std::fmt;

/// A named instrumentation point where faults can be injected. Every layer
/// of the stack that participates in the fault model owns one or more sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Object-store GET / ranged GET (errors model S3 5xx and `SlowDown`
    /// rate-limit rejections; delays model tail-latency spikes).
    StorageGet,
    /// Object-store PUT (intermediate-result materialization).
    StoragePut,
    /// A CF fleet crashes mid-run (worker killed, OOM, runtime reclaim).
    CfCrash,
    /// A CF fleet straggles: it still finishes, but far slower than the
    /// latency estimate (Starling's duplicate-task trigger).
    CfStraggler,
    /// A cold-start storm: fleet startup takes much longer than the ~1 s
    /// elasticity claim while the provider scrambles capacity.
    CfColdStartStorm,
    /// A VM cluster node is preempted (spot reclaim).
    VmPreempt,
    /// Exchange spill PUT (a stage-N worker writing a hash partition to the
    /// object store). Appended after the original sites so existing seeded
    /// fault sequences are unperturbed.
    ExchangePut,
    /// Exchange spill GET (a stage-N+1 worker reading its partition set).
    ExchangeGet,
}

impl FaultSite {
    pub const ALL: [FaultSite; 8] = [
        FaultSite::StorageGet,
        FaultSite::StoragePut,
        FaultSite::CfCrash,
        FaultSite::CfStraggler,
        FaultSite::CfColdStartStorm,
        FaultSite::VmPreempt,
        FaultSite::ExchangePut,
        FaultSite::ExchangeGet,
    ];

    /// Stable label used for RNG-stream derivation and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StorageGet => "storage_get",
            FaultSite::StoragePut => "storage_put",
            FaultSite::CfCrash => "cf_crash",
            FaultSite::CfStraggler => "cf_straggler",
            FaultSite::CfColdStartStorm => "cf_cold_start_storm",
            FaultSite::VmPreempt => "vm_preempt",
            FaultSite::ExchangePut => "exchange_put",
            FaultSite::ExchangeGet => "exchange_get",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The injector's verdict for one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Proceed normally.
    None,
    /// Fail the operation (the caller maps this to its own error type).
    Error,
    /// Delay the operation by this many microseconds, then proceed.
    Delay { micros: u64 },
}

impl Inject {
    pub fn is_fault(self) -> bool {
        !matches!(self, Inject::None)
    }
}

/// Per-site fault behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Probability a decision at this site fails outright.
    pub error_rate: f64,
    /// Probability (evaluated only when no error fired) of a latency spike.
    pub delay_rate: f64,
    /// Injected delay bounds in microseconds, inclusive.
    pub delay_micros: (u64, u64),
    /// Stop injecting after this many faults at the site (`u64::MAX` =
    /// unbounded). A finite cap guarantees plans cannot starve retry loops
    /// forever, which keeps the differential soak terminating.
    pub max_faults: u64,
}

impl SiteSpec {
    /// Errors at `rate`, no delays, unbounded.
    pub fn errors(rate: f64) -> SiteSpec {
        SiteSpec {
            error_rate: rate,
            delay_rate: 0.0,
            delay_micros: (0, 0),
            max_faults: u64::MAX,
        }
    }

    /// Latency spikes at `rate` uniformly in `[lo_us, hi_us]`.
    pub fn delays(rate: f64, lo_us: u64, hi_us: u64) -> SiteSpec {
        SiteSpec {
            error_rate: 0.0,
            delay_rate: rate,
            delay_micros: (lo_us, hi_us.max(lo_us)),
            max_faults: u64::MAX,
        }
    }

    /// Same spec, but stop after `n` injected faults.
    pub fn capped(mut self, n: u64) -> SiteSpec {
        self.max_faults = n;
        self
    }
}

/// A deterministic, seed-driven fault plan: seed + per-site specs.
///
/// Two injectors built from equal plans produce identical fault sequences at
/// every site regardless of how threads interleave *across* sites, because
/// each site draws from its own derived RNG stream. Within a site, the n-th
/// decision is always the same for a given seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub sites: BTreeMap<FaultSite, SiteSpec>,
}

impl FaultPlan {
    /// The empty plan: injects nothing anywhere.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Builder: set the spec for one site.
    pub fn with(mut self, site: FaultSite, spec: SiteSpec) -> FaultPlan {
        self.sites.insert(site, spec);
        self
    }

    pub fn spec(&self, site: FaultSite) -> Option<&SiteSpec> {
        self.sites.get(&site)
    }

    /// Whether the plan can inject anything at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    // Preset plans used by the chaos matrix (tests, CI soak, experiments).

    /// Flaky object store: GET errors at `rate`.
    pub fn get_errors(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::none(seed).with(FaultSite::StorageGet, SiteSpec::errors(rate))
    }

    /// Rate-limited object store: GET latency spikes at `rate` in
    /// `[lo_ms, hi_ms]`.
    pub fn get_latency_spikes(seed: u64, rate: f64, lo_ms: u64, hi_ms: u64) -> FaultPlan {
        FaultPlan::none(seed).with(
            FaultSite::StorageGet,
            SiteSpec::delays(rate, lo_ms * 1_000, hi_ms * 1_000),
        )
    }

    /// Crashing CF fleets at `rate`.
    pub fn cf_crashes(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::none(seed).with(FaultSite::CfCrash, SiteSpec::errors(rate))
    }

    /// Straggling CF fleets at `rate`, delayed by `[lo_ms, hi_ms]`.
    pub fn cf_stragglers(seed: u64, rate: f64, lo_ms: u64, hi_ms: u64) -> FaultPlan {
        FaultPlan::none(seed).with(
            FaultSite::CfStraggler,
            SiteSpec::delays(rate, lo_ms * 1_000, hi_ms * 1_000),
        )
    }

    /// Flaky exchange spill writes: PUT errors at `rate`.
    pub fn exchange_put_errors(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::none(seed).with(FaultSite::ExchangePut, SiteSpec::errors(rate))
    }

    /// Flaky exchange spill reads: GET errors at `rate`.
    pub fn exchange_get_errors(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::none(seed).with(FaultSite::ExchangeGet, SiteSpec::errors(rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_stable() {
        // Metric labels and RNG streams key off these strings — renaming one
        // silently re-seeds every plan, so pin them.
        let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "storage_get",
                "storage_put",
                "cf_crash",
                "cf_straggler",
                "cf_cold_start_storm",
                "vm_preempt",
                "exchange_put",
                "exchange_get"
            ]
        );
    }

    #[test]
    fn builder_composes() {
        let plan = FaultPlan::none(7)
            .with(FaultSite::StorageGet, SiteSpec::errors(0.1))
            .with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(2));
        assert_eq!(plan.spec(FaultSite::StorageGet).unwrap().error_rate, 0.1);
        assert_eq!(plan.spec(FaultSite::CfCrash).unwrap().max_faults, 2);
        assert!(plan.spec(FaultSite::VmPreempt).is_none());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none(0).is_empty());
    }

    #[test]
    fn delay_bounds_are_ordered() {
        let s = SiteSpec::delays(0.5, 100, 50);
        assert!(s.delay_micros.0 <= s.delay_micros.1);
    }
}
