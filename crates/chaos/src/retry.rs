//! Capped exponential backoff with decorrelated jitter.
//!
//! The schedule follows the "decorrelated jitter" recipe: each delay is
//! drawn uniformly from `[base, prev * 3]`, clamped to `cap`. Jitter is
//! seeded, so a given `(policy, seed)` pair always produces the same
//! schedule — which is what lets the simulator and the differential soak
//! reproduce retry timing bit-for-bit. Delays are expressed against the
//! `pixels-obs` [`Clock`], so the same policy blocks threads under
//! [`WallClock`](pixels_obs::WallClock) and advances virtual time instantly
//! under [`SimClock`](pixels_obs::SimClock).

use pixels_obs::Clock;

use crate::rng::ChaosRng;

/// Retry budget and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Minimum (and first) backoff delay.
    pub base_micros: u64,
    /// Ceiling on any single backoff delay.
    pub cap_micros: u64,
    /// Retries after the first attempt (so `max_retries = 3` means at most
    /// 4 attempts total).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Object-store defaults: 4 retries, 10 ms base, 2 s cap. At the paper's
    /// price point a handful of S3-style retries is noise next to the 15 ms
    /// per-request latency floor, while a 2 s cap keeps Immediate-level
    /// queries from stalling behind a single hot key.
    pub fn object_store() -> RetryPolicy {
        RetryPolicy {
            base_micros: 10_000,
            cap_micros: 2_000_000,
            max_retries: 4,
        }
    }

    /// No retries at all: first failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            base_micros: 0,
            cap_micros: 0,
            max_retries: 0,
        }
    }

    /// The deterministic backoff schedule for one operation.
    pub fn schedule(&self, seed: u64) -> RetrySchedule {
        RetrySchedule {
            policy: *self,
            rng: ChaosRng::derive(seed, "retry_backoff"),
            prev_micros: 0,
            issued: 0,
        }
    }

    /// Run `op` under this policy, sleeping on `clock` between attempts.
    ///
    /// `retryable` decides which errors are transient; a non-retryable error
    /// (e.g. "object not found") fails immediately. Returns the successful
    /// value or the last error, along with attempt/backoff accounting.
    pub fn run<T, E>(
        &self,
        seed: u64,
        clock: &dyn Clock,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut schedule = self.schedule(seed);
        let mut attempts = 0u32;
        let mut backoff_total = 0u64;
        loop {
            attempts += 1;
            match op() {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        attempts,
                        retries: attempts - 1,
                        backoff_micros: backoff_total,
                    }
                }
                Err(e) => {
                    let delay = if retryable(&e) { schedule.next() } else { None };
                    match delay {
                        Some(us) => {
                            clock.sleep_micros(us);
                            backoff_total += us;
                        }
                        None => {
                            return RetryOutcome {
                                result: Err(e),
                                attempts,
                                retries: attempts - 1,
                                backoff_micros: backoff_total,
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Iterator over backoff delays (microseconds); `None` once the retry
/// budget is spent.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    policy: RetryPolicy,
    rng: ChaosRng,
    prev_micros: u64,
    issued: u32,
}

impl RetrySchedule {
    /// The next backoff delay, or `None` if retries are exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u64> {
        if self.issued >= self.policy.max_retries {
            return None;
        }
        self.issued += 1;
        let base = self.policy.base_micros;
        // Decorrelated jitter: uniform in [base, max(base, prev * 3)],
        // clamped to the cap.
        let hi = self.prev_micros.saturating_mul(3).max(base);
        let delay = self.rng.uniform_u64(base, hi).min(self.policy.cap_micros);
        self.prev_micros = delay.max(base);
        Some(delay)
    }

    /// Materialize the remaining schedule (for tests and reports).
    pub fn collect_all(mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(d) = self.next() {
            out.push(d);
        }
        out
    }
}

impl Iterator for RetrySchedule {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        RetrySchedule::next(self)
    }
}

/// What a retried operation did: the final result plus accounting for
/// metrics (`pixels_retries_total`) and per-query event reporting.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    pub result: Result<T, E>,
    /// Attempts made, including the first.
    pub attempts: u32,
    /// Retries made (`attempts - 1`).
    pub retries: u32,
    /// Total backoff slept, in clock microseconds.
    pub backoff_micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_obs::{SimClock, WallClock};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        // Satellite: same seed → same schedule, under SimClock semantics
        // (pure virtual time, no wall-clock dependence).
        let policy = RetryPolicy::object_store();
        let a = policy.schedule(42).collect_all();
        let b = policy.schedule(42).collect_all();
        assert_eq!(a, b);
        assert_eq!(a.len(), policy.max_retries as usize);
        let c = policy.schedule(43).collect_all();
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn delays_respect_base_and_cap() {
        let policy = RetryPolicy {
            base_micros: 1_000,
            cap_micros: 50_000,
            max_retries: 32,
        };
        for seed in 0..20 {
            for d in policy.schedule(seed) {
                assert!((1_000..=50_000).contains(&d), "{d}");
            }
        }
    }

    #[test]
    fn run_retries_until_success_on_sim_clock() {
        let policy = RetryPolicy::object_store();
        let clock = SimClock::new();
        let fails = AtomicU32::new(2);
        let out = policy.run(
            7,
            &clock,
            |_e: &&str| true,
            || {
                if fails.fetch_sub(1, Ordering::Relaxed) > 0 {
                    Err("transient")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(out.result.unwrap(), 99);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.retries, 2);
        // SimClock absorbed exactly the scheduled backoff.
        assert_eq!(clock.now_micros(), out.backoff_micros);
        assert!(out.backoff_micros >= 2 * policy.base_micros);
    }

    #[test]
    fn run_gives_up_after_budget() {
        let policy = RetryPolicy {
            base_micros: 1,
            cap_micros: 10,
            max_retries: 3,
        };
        let clock = SimClock::new();
        let out: RetryOutcome<(), &str> =
            policy.run(1, &clock, |_| true, || Err("always transient"));
        assert!(out.result.is_err());
        assert_eq!(out.attempts, 4); // 1 initial + 3 retries
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let policy = RetryPolicy::object_store();
        let clock = SimClock::new();
        let out: RetryOutcome<(), &str> = policy.run(1, &clock, |_| false, || Err("not found"));
        assert!(out.result.is_err());
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_micros, 0);
        assert_eq!(clock.now_micros(), 0, "fail-fast must not sleep");
    }

    #[test]
    fn sim_and_wall_schedules_match() {
        // The schedule is a pure function of (policy, seed); the clock only
        // decides how the delays are *served*.
        let policy = RetryPolicy {
            base_micros: 10,
            cap_micros: 100,
            max_retries: 3,
        };
        let sim_clock = SimClock::new();
        let wall_clock = WallClock::new();
        let run = |clock: &dyn Clock| {
            let tries = AtomicU32::new(0);
            policy.run(
                5,
                clock,
                |_e: &&str| true,
                || {
                    if tries.fetch_add(1, Ordering::Relaxed) < 3 {
                        Err("transient")
                    } else {
                        Ok(())
                    }
                },
            )
        };
        let sim = run(&sim_clock);
        let wall = run(&wall_clock);
        assert_eq!(sim.backoff_micros, wall.backoff_micros);
        assert_eq!(sim.attempts, wall.attempts);
    }
}
