//! The runtime half of the fault model: instrumented layers ask the
//! injector whether each operation proceeds, fails, or stalls.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pixels_obs::MetricsRegistry;

use crate::plan::{FaultPlan, FaultSite, Inject, SiteSpec};
use crate::rng::ChaosRng;

/// Per-site decision state: its own derived RNG stream plus counters.
struct SiteState {
    spec: SiteSpec,
    rng: Mutex<ChaosRng>,
    decisions: AtomicU64,
    injected: AtomicU64,
}

/// Point-in-time view of what the injector has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectorSnapshot {
    /// `(site name, decisions asked, faults injected)` per configured site.
    pub sites: Vec<(&'static str, u64, u64)>,
}

impl InjectorSnapshot {
    pub fn injected_total(&self) -> u64 {
        self.sites.iter().map(|(_, _, n)| n).sum()
    }
}

/// Deterministic fault injector built from a [`FaultPlan`].
///
/// Each configured site draws from an independent RNG stream derived from
/// `(plan.seed, site.name())`, so the n-th decision at a site is a pure
/// function of the plan — thread interleaving *across* sites cannot change
/// any site's fault sequence. Sites absent from the plan always answer
/// [`Inject::None`] without touching any generator.
pub struct FaultInjector {
    seed: u64,
    sites: BTreeMap<FaultSite, SiteState>,
    /// Last counts pushed to a registry, so repeated exports emit monotone
    /// deltas instead of re-adding the running total.
    exported: Mutex<BTreeMap<FaultSite, u64>>,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let sites = plan
            .sites
            .iter()
            .map(|(&site, &spec)| {
                (
                    site,
                    SiteState {
                        spec,
                        rng: Mutex::new(ChaosRng::derive(plan.seed, site.name())),
                        decisions: AtomicU64::new(0),
                        injected: AtomicU64::new(0),
                    },
                )
            })
            .collect();
        FaultInjector {
            seed: plan.seed,
            sites,
            exported: Mutex::new(BTreeMap::new()),
        }
    }

    /// An injector that never injects — the hot-path no-op for production
    /// wiring that wants the instrumentation compiled in but inert.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(&FaultPlan::none(0))
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any site can inject faults.
    pub fn is_active(&self) -> bool {
        !self.sites.is_empty()
    }

    /// Ask the plan what happens to the next operation at `site`.
    pub fn decide(&self, site: FaultSite) -> Inject {
        let Some(state) = self.sites.get(&site) else {
            return Inject::None;
        };
        state.decisions.fetch_add(1, Ordering::Relaxed);
        let spec = state.spec;
        // Draw under the lock so concurrent callers serialize into one
        // well-defined per-site sequence.
        let mut rng = state.rng.lock().unwrap();
        if state.injected.load(Ordering::Relaxed) >= spec.max_faults {
            // Keep consuming the stream so the cap changes *outcomes*, not
            // the positions of later draws — plans stay comparable when only
            // `max_faults` differs.
            let _ = rng.next_u64();
            return Inject::None;
        }
        let verdict = if rng.bernoulli(spec.error_rate) {
            Inject::Error
        } else if spec.delay_rate > 0.0 && rng.bernoulli(spec.delay_rate) {
            Inject::Delay {
                micros: rng.uniform_u64(spec.delay_micros.0, spec.delay_micros.1),
            }
        } else {
            Inject::None
        };
        if verdict.is_fault() {
            state.injected.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Faults injected so far at one site.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.sites
            .get(&site)
            .map(|s| s.injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.sites
            .values()
            .map(|s| s.injected.load(Ordering::Relaxed))
            .sum()
    }

    pub fn snapshot(&self) -> InjectorSnapshot {
        InjectorSnapshot {
            sites: self
                .sites
                .iter()
                .map(|(site, s)| {
                    (
                        site.name(),
                        s.decisions.load(Ordering::Relaxed),
                        s.injected.load(Ordering::Relaxed),
                    )
                })
                .collect(),
        }
    }

    /// Publish per-site injected counts into
    /// `pixels_faults_injected_total{site=...}`. Deltas since the previous
    /// export are added, so the scraped counters stay monotone however often
    /// this is called.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let mut exported = self.exported.lock().unwrap();
        for (&site, state) in &self.sites {
            let now = state.injected.load(Ordering::Relaxed);
            let prev = exported.get(&site).copied().unwrap_or(0);
            if now > prev {
                registry
                    .counter_with(
                        "pixels_faults_injected_total",
                        "Faults injected by the chaos fault plan, by site",
                        &[("site", site.name())],
                    )
                    .add(now - prev);
            }
            exported.insert(site, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteSpec;

    fn plan() -> FaultPlan {
        FaultPlan::none(1234)
            .with(FaultSite::StorageGet, SiteSpec::errors(0.5))
            .with(FaultSite::CfStraggler, SiteSpec::delays(0.5, 1_000, 2_000))
    }

    #[test]
    fn same_plan_same_decisions() {
        let a = FaultInjector::new(&plan());
        let b = FaultInjector::new(&plan());
        for _ in 0..200 {
            assert_eq!(
                a.decide(FaultSite::StorageGet),
                b.decide(FaultSite::StorageGet)
            );
            assert_eq!(
                a.decide(FaultSite::CfStraggler),
                b.decide(FaultSite::CfStraggler)
            );
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert!(a.injected_total() > 0);
    }

    #[test]
    fn cross_site_order_does_not_perturb_streams() {
        // Interleave the two sites differently; each site's own sequence
        // must be identical.
        let a = FaultInjector::new(&plan());
        let b = FaultInjector::new(&plan());
        let mut a_gets = Vec::new();
        let mut b_gets = Vec::new();
        for i in 0..100 {
            a_gets.push(a.decide(FaultSite::StorageGet));
            if i % 3 == 0 {
                let _ = a.decide(FaultSite::CfStraggler);
            }
        }
        for _ in 0..40 {
            let _ = b.decide(FaultSite::CfStraggler);
        }
        for _ in 0..100 {
            b_gets.push(b.decide(FaultSite::StorageGet));
        }
        assert_eq!(a_gets, b_gets);
    }

    #[test]
    fn unconfigured_sites_never_inject() {
        let inj = FaultInjector::new(&plan());
        for _ in 0..50 {
            assert_eq!(inj.decide(FaultSite::VmPreempt), Inject::None);
        }
        assert_eq!(inj.injected_at(FaultSite::VmPreempt), 0);
        let off = FaultInjector::disabled();
        assert!(!off.is_active());
        assert_eq!(off.decide(FaultSite::StorageGet), Inject::None);
    }

    #[test]
    fn max_faults_caps_injection() {
        let p = FaultPlan::none(9).with(FaultSite::StorageGet, SiteSpec::errors(1.0).capped(3));
        let inj = FaultInjector::new(&p);
        let faults = (0..20)
            .filter(|_| inj.decide(FaultSite::StorageGet).is_fault())
            .count();
        assert_eq!(faults, 3);
        assert_eq!(inj.injected_at(FaultSite::StorageGet), 3);
    }

    #[test]
    fn delay_verdicts_respect_bounds() {
        let p = FaultPlan::none(2).with(FaultSite::StorageGet, SiteSpec::delays(1.0, 500, 900));
        let inj = FaultInjector::new(&p);
        for _ in 0..100 {
            match inj.decide(FaultSite::StorageGet) {
                Inject::Delay { micros } => assert!((500..=900).contains(&micros)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn export_emits_monotone_deltas() {
        let registry = MetricsRegistry::new();
        let inj = FaultInjector::new(&FaultPlan::get_errors(7, 1.0));
        for _ in 0..5 {
            let _ = inj.decide(FaultSite::StorageGet);
        }
        inj.export_metrics(&registry);
        inj.export_metrics(&registry); // second export must not double-count
        let c = registry.counter_with(
            "pixels_faults_injected_total",
            "Faults injected by the chaos fault plan, by site",
            &[("site", "storage_get")],
        );
        assert_eq!(c.get(), 5);
        for _ in 0..3 {
            let _ = inj.decide(FaultSite::StorageGet);
        }
        inj.export_metrics(&registry);
        assert_eq!(c.get(), 8);
    }
}
