//! Single-turn natural-language → SQL translation.
//!
//! This is the reproduction's stand-in for the CodeS language model: a
//! deterministic grammar/pattern semantic parser that implements the same
//! *system* behaviour the paper demonstrates — single round-trip
//! translation over a pruned schema, grounded in actual database values,
//! producing an executable SQL query the user can then edit. The supported
//! grammar covers counting, sums/averages/extrema, grouping ("per X"),
//! comparison and equality filters, year filters, value-grounded filters
//! ("from Germany"), top-k ranking, and automatic join-path inference over
//! declared foreign keys.

use crate::schema_pruning::{column_score, prune_schema, PruneConfig, PrunedSchema};
use crate::text::{is_stopword, stem, tokenize, word_affinity, Tok};
use crate::values::ValueIndex;
use pixels_catalog::TableDef;
use pixels_common::{value, DataType, Error, Result, Value};
use pixels_sql::ast::{
    BinaryOp, Expr, JoinType, ObjectName, OrderByItem, Select, SelectItem, TableExpr,
};
use std::collections::BTreeSet;

/// A successful translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The generated SQL text (renders the `select` AST).
    pub sql: String,
    pub select: Select,
    /// Heuristic confidence in `[0, 1]`: fraction of content words the
    /// grammar could ground.
    pub confidence: f64,
    pub tables_used: Vec<String>,
}

/// Synonym table applied on top of lexical matching.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("revenue", &["totalprice", "extendedprice"]),
    (
        "price",
        &["totalprice", "retailprice", "extendedprice", "supplycost"],
    ),
    ("cost", &["supplycost", "totalprice"]),
    ("balance", &["acctbal"]),
    ("segment", &["mktsegment"]),
    ("market", &["mktsegment"]),
    ("retail", &["retailprice"]),
    ("latency", &["latency"]),
    ("visitor", &["ip"]),
    ("page", &["url"]),
    ("hit", &["url"]),
    ("quantity", &["quantity"]),
    ("amount", &["totalprice", "bytes"]),
    ("priority", &["orderpriority", "shippriority"]),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    fn fn_name(self) -> &'static str {
        match self {
            AggKind::Count | AggKind::CountDistinct => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// A resolved column reference.
#[derive(Debug, Clone, PartialEq)]
struct ColRef {
    table: String,
    column: String,
    data_type: DataType,
}

/// The translator for one database.
pub struct Translator {
    tables: Vec<TableDef>,
    values: ValueIndex,
    prune_cfg: PruneConfig,
}

impl Translator {
    pub fn new(tables: Vec<TableDef>, values: ValueIndex) -> Self {
        Translator {
            tables,
            values,
            prune_cfg: PruneConfig::default(),
        }
    }

    /// Translate one question into SQL (single turn).
    pub fn translate(&self, question: &str) -> Result<Translation> {
        let toks = tokenize(question);
        if toks.is_empty() {
            return Err(Error::Translate("empty question".into()));
        }
        let pruned = prune_schema(question, &self.tables, self.prune_cfg);
        let mut p = Parser {
            toks: &toks,
            pruned: &pruned,
            values: &self.values,
            tables: &self.tables,
            consumed: vec![false; toks.len()],
        };
        p.parse()
    }

    /// The pruned schema for a question (exposed for the pruning experiment).
    pub fn pruned_schema(&self, question: &str) -> PrunedSchema {
        prune_schema(question, &self.tables, self.prune_cfg)
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pruned: &'a PrunedSchema,
    values: &'a ValueIndex,
    tables: &'a [TableDef],
    consumed: Vec<bool>,
}

impl<'a> Parser<'a> {
    // -- column/table resolution ---------------------------------------------

    /// Score `word` against a column, synonyms included.
    fn word_col_score(&self, word: &str, column: &str) -> f64 {
        let mut best = column_score(column, std::slice::from_ref(&word.to_string()));
        for (syn, targets) in SYNONYMS {
            if word_affinity(word, syn) >= 0.7 {
                for t in *targets {
                    if column.to_lowercase().contains(*t) {
                        best = best.max(0.9);
                    }
                }
            }
        }
        // Verb-ish prefix match: "shipped" ~ "shipdate".
        let w = stem(word);
        let col_lower = column.to_lowercase();
        if w.len() >= 4 {
            let prefix: String = w.chars().take(4).collect();
            if col_lower.contains(&prefix) {
                best = best.max(0.5);
            }
        }
        best
    }

    /// Resolve the best column for the word at `i` (optionally fusing the
    /// next word, e.g. "account balance" → acctbal, or a table-name +
    /// column pair like "nation name" → n_name).
    fn resolve_column(&self, i: usize) -> Option<(ColRef, f64, usize)> {
        let mut best: Option<(ColRef, f64, usize)> = None;
        for span in [2usize, 1] {
            if i + span > self.toks.len() {
                continue;
            }
            let words: Vec<&str> = self.toks[i..i + span]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            if span > 1
                && words
                    .iter()
                    .any(|w| is_stopword(w) || w.parse::<f64>().is_ok())
            {
                continue;
            }
            for (t, cols) in &self.pruned.tables {
                let table_parts = crate::text::identifier_parts(&t.name);
                for &c in cols {
                    let f = t.schema.field(c);
                    let col_scores: Vec<f64> = words
                        .iter()
                        .map(|w| self.word_col_score(w, &f.name))
                        .collect();
                    let mut score = col_scores.iter().sum::<f64>() / span as f64
                        * (1.0 + 0.1 * (span - 1) as f64);
                    // "nation name": one word names the table, the other the
                    // column — a strong qualified reference.
                    if span == 2 {
                        for k in 0..2 {
                            let tbl = table_parts
                                .iter()
                                .map(|p| word_affinity(words[k], p))
                                .fold(0.0f64, f64::max);
                            if tbl >= 0.7 && col_scores[1 - k] >= 0.6 {
                                score = score.max(col_scores[1 - k] + 0.2);
                            }
                        }
                    }
                    if score > 0.45 && best.as_ref().is_none_or(|(_, s, _)| score > *s) {
                        best = Some((
                            ColRef {
                                table: t.name.clone(),
                                column: f.name.clone(),
                                data_type: f.data_type,
                            },
                            score,
                            span,
                        ));
                    }
                }
            }
        }
        best
    }

    /// Nearest resolvable column at or before position `i`, looking back up
    /// to `window` tokens, preferring the given type filter.
    fn nearest_column_before(
        &self,
        i: usize,
        window: usize,
        type_ok: impl Fn(DataType) -> bool,
    ) -> Option<ColRef> {
        let start = i.saturating_sub(window);
        for j in (start..=i.min(self.toks.len().saturating_sub(1))).rev() {
            if let Some((c, _, _)) = self.resolve_column(j) {
                if type_ok(c.data_type) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// The best date column in the pruned schema, preferring ones whose name
    /// matches nearby verbs ("shipped" → shipdate).
    fn best_date_column(&self) -> Option<ColRef> {
        let mut best: Option<(ColRef, f64)> = None;
        for (t, cols) in &self.pruned.tables {
            for &c in cols {
                let f = t.schema.field(c);
                if !matches!(f.data_type, DataType::Date | DataType::Timestamp) {
                    continue;
                }
                let mut score = 0.1;
                for tok in self.toks {
                    score += self.word_col_score(&tok.text, &f.name);
                }
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((
                        ColRef {
                            table: t.name.clone(),
                            column: f.name.clone(),
                            data_type: f.data_type,
                        },
                        score,
                    ));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    fn mark(&mut self, range: std::ops::Range<usize>) {
        for i in range {
            if i < self.consumed.len() {
                self.consumed[i] = true;
            }
        }
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    // -- main parse -----------------------------------------------------------

    fn parse(&mut self) -> Result<Translation> {
        let mut filters: Vec<Expr> = Vec::new();
        let mut filter_tables: Vec<String> = Vec::new();
        let mut agg: Option<(AggKind, Option<ColRef>)> = None;
        let mut group: Option<ColRef> = None;
        let mut order: Option<(OrderTarget, bool)> = None;
        let mut limit: Option<u64> = None;
        let mut projection_cols: Vec<ColRef> = Vec::new();
        let mut distinct_projection = false;
        // Group-count condition: "nations with more than 5 customers".
        let mut having: Option<(BinaryOp, i64, String)> = None;

        #[derive(Debug, Clone, PartialEq)]
        enum OrderTarget {
            Col(ColRef),
            AggOutput,
        }

        // Pass 1: value-grounded equality filters (quoted strings, known
        // values, multi-word value phrases like "united states").
        let n = self.toks.len();
        for span in [3usize, 2, 1] {
            for i in 0..n.saturating_sub(span - 1) {
                if (i..i + span).any(|j| self.consumed[j]) {
                    continue;
                }
                let phrase: String = self.toks[i..i + span]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                if span == 1 && (is_stopword(&phrase) || self.toks[i].number.is_some()) {
                    // Plain single stopwords/numbers are not values, but a
                    // quoted token is always a value mention.
                    if !self.toks[i].quoted {
                        continue;
                    }
                }
                let sites = self.values.lookup(&phrase);
                // Prefer a site in the pruned tables.
                let site = sites.iter().find(|s| {
                    self.pruned
                        .tables
                        .iter()
                        .any(|(t, _)| t.name.eq_ignore_ascii_case(&s.table))
                });
                let site = match site {
                    Some(s) => Some(s),
                    None if self.toks[i].quoted => sites.first(),
                    None => None,
                };
                if let Some(site) = site {
                    filters.push(Expr::eq(
                        Expr::col(site.column.clone()),
                        Expr::lit(Value::Utf8(site.stored.clone())),
                    ));
                    filter_tables.push(site.table.clone());
                    self.mark(i..i + span);
                    // Consume neighbouring words that name the value's
                    // column ("the 'BUILDING' segment" → segment).
                    for j in [i.wrapping_sub(1), i + span] {
                        if j < n
                            && !self.consumed[j]
                            && self.word_col_score(self.text(j), &site.column) >= 0.6
                        {
                            self.consumed[j] = true;
                        }
                    }
                } else if self.toks[i].quoted && span == 1 {
                    // Quoted but unknown value: attach to the nearest string
                    // column mention.
                    if let Some(c) =
                        self.nearest_column_before(i.saturating_sub(1), 4, |t| t == DataType::Utf8)
                    {
                        filters.push(Expr::eq(
                            Expr::col(c.column.clone()),
                            Expr::lit(Value::Utf8(self.toks[i].text.to_uppercase())),
                        ));
                        filter_tables.push(c.table);
                        self.mark(i..i + 1);
                    }
                }
            }
        }

        // Pass 1.5: group-count conditions ("X with more than N Y" where Y
        // names a table): becomes GROUP BY + HAVING COUNT(*) <op> N.
        {
            let mut i = 0;
            while i < n {
                if self.consumed[i] || self.toks[i].number.is_none() {
                    i += 1;
                    continue;
                }
                let (op, phrase_start) = self.comparison_before(i);
                let Some(op) = op else {
                    i += 1;
                    continue;
                };
                if (phrase_start..i).any(|j| self.consumed[j]) {
                    i += 1;
                    continue;
                }
                // The token right after the number must name a table.
                if let Some(counted) = self.table_named_at(i + 1) {
                    having = Some((op, self.toks[i].number.unwrap() as i64, counted));
                    self.mark(phrase_start..i + 2);
                }
                i += 1;
            }
        }

        // Pass 2: comparison and year filters.
        let mut i = 0;
        while i < n {
            if self.consumed[i] {
                i += 1;
                continue;
            }
            let t = &self.toks[i];
            if let Some(num) = t.number {
                // "in 1995" / "of 1995" with a year-looking number → date range.
                let is_year = (1900.0..2100.0).contains(&num) && num.fract() == 0.0;
                let prev = self.text(i.saturating_sub(1)).to_string();
                if is_year && matches!(prev.as_str(), "in" | "during" | "of" | "year") {
                    if let Some(col) = self.best_date_column() {
                        let y = num as i64;
                        let lo = value::parse_date(&format!("{y}-01-01")).unwrap();
                        let hi = value::parse_date(&format!("{y}-12-31")).unwrap();
                        filters.push(Expr::Between {
                            expr: Box::new(Expr::col(col.column.clone())),
                            low: Box::new(Expr::lit(Value::Date(lo))),
                            high: Box::new(Expr::lit(Value::Date(hi))),
                            negated: false,
                        });
                        filter_tables.push(col.table);
                        self.mark(i.saturating_sub(1)..i + 1);
                        i += 1;
                        continue;
                    }
                }
                // Comparison phrase ending just before the number.
                let (op, phrase_start) = self.comparison_before(i);
                if let Some(op) = op {
                    if let Some(col) =
                        self.nearest_column_before(phrase_start.saturating_sub(1), 5, |t| {
                            t.is_numeric()
                        })
                    {
                        filters.push(Expr::binary(
                            Expr::col(col.column.clone()),
                            op,
                            number_literal(num),
                        ));
                        filter_tables.push(col.table);
                        self.mark(phrase_start..i + 1);
                        i += 1;
                        continue;
                    }
                }
                // "status 500": column mention immediately before a number.
                if i > 0 && !self.consumed[i - 1] {
                    if let Some((col, score, _)) = self.resolve_column(i - 1) {
                        if score >= 0.7 && col.data_type.is_numeric() {
                            filters
                                .push(Expr::eq(Expr::col(col.column.clone()), number_literal(num)));
                            filter_tables.push(col.table);
                            self.mark(i - 1..i + 1);
                            i += 1;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }

        // Pass 3: top-k / ordering.
        let mut i = 0;
        while i < n {
            if self.consumed[i] {
                i += 1;
                continue;
            }
            match self.text(i) {
                "top" | "first" => {
                    if let Some(k) = self.toks.get(i + 1).and_then(|t| t.number) {
                        limit = Some(k as u64);
                        self.mark(i..i + 2);
                    }
                }
                "sorted" | "ordered" | "order" | "ranked" if self.text(i + 1) == "by" => {
                    if let Some((col, _, span)) = self.resolve_column(i + 2) {
                        let desc = matches!(
                            self.text(i + 2 + span),
                            "descending" | "desc" | "decreasing"
                        );
                        order = Some((OrderTarget::Col(col), !desc));
                        self.mark(i..i + 3 + span);
                    }
                }
                "highest" | "largest" | "biggest" | "most" | "greatest" | "slowest" => {
                    // "by the highest X" or "with the most X" → order desc.
                    if let Some((col, _, span)) = self.resolve_column(i + 1) {
                        order = Some((OrderTarget::Col(col), false));
                        self.mark(i..i + 1 + span);
                    } else if matches!(
                        self.text(i + 1),
                        "requests" | "hits" | "queries" | "rows" | "orders" | "entries"
                    ) {
                        order = Some((OrderTarget::AggOutput, false));
                        self.mark(i..i + 2);
                    }
                }
                "lowest" | "smallest" | "cheapest" | "fastest" | "fewest" => {
                    if let Some((col, _, span)) = self.resolve_column(i + 1) {
                        order = Some((OrderTarget::Col(col), true));
                        self.mark(i..i + 1 + span);
                    }
                }
                _ => {}
            }
            i += 1;
        }

        // Pass 4: aggregation intents.
        let mut i = 0;
        while i < n {
            if self.consumed[i] {
                i += 1;
                continue;
            }
            if agg.is_some() {
                // Single-turn grammar: the first aggregation intent wins.
                break;
            }
            match self.text(i) {
                "how" if self.text(i + 1) == "many" => {
                    // "how many distinct X" → COUNT(DISTINCT col).
                    if matches!(self.text(i + 2), "distinct" | "different" | "unique") {
                        if let Some((col, _, span)) = self.resolve_column(i + 3) {
                            agg = Some((AggKind::CountDistinct, Some(col)));
                            self.mark(i..i + 3 + span);
                            i += 1;
                            continue;
                        }
                    }
                    agg = Some((AggKind::Count, None));
                    self.mark(i..i + 2);
                }
                "count" => {
                    agg = Some((AggKind::Count, None));
                    self.mark(i..i + 1);
                }
                "number" if self.text(i + 1) == "of" => {
                    if matches!(self.text(i + 2), "distinct" | "different" | "unique") {
                        if let Some((col, _, span)) = self.resolve_column(i + 3) {
                            agg = Some((AggKind::CountDistinct, Some(col)));
                            self.mark(i..i + 3 + span);
                            i += 1;
                            continue;
                        }
                    }
                    agg = Some((AggKind::Count, None));
                    self.mark(i..i + 2);
                }
                kw @ ("total" | "sum" | "average" | "mean" | "avg" | "maximum" | "max"
                | "minimum" | "min") => {
                    let kind = match kw {
                        "total" | "sum" => AggKind::Sum,
                        "average" | "mean" | "avg" => AggKind::Avg,
                        "maximum" | "max" => AggKind::Max,
                        _ => AggKind::Min,
                    };
                    // Find the aggregated column within the next few tokens.
                    let mut found = None;
                    for j in i + 1..(i + 4).min(n) {
                        if self.consumed[j] || is_stopword(self.text(j)) {
                            continue;
                        }
                        if let Some((col, score, span)) = self.resolve_column(j) {
                            if score >= 0.45 && col.data_type.is_numeric() {
                                found = Some((col, j, span));
                                break;
                            }
                        }
                    }
                    if let Some((col, j, span)) = found {
                        agg = Some((kind, Some(col)));
                        self.mark(i..i + 1);
                        self.mark(j..j + span);
                    }
                }
                _ => {}
            }
            i += 1;
        }

        // Pass 5: grouping ("per X", "by X", "for each X", "grouped by X").
        let mut i = 0;
        while i < n {
            if self.consumed[i] {
                i += 1;
                continue;
            }
            let is_group_kw = match self.text(i) {
                "per" => true,
                "each" => true,
                "by" => agg.is_some(),
                "grouped" if self.text(i + 1) == "by" => {
                    self.mark(i..i + 1);
                    true
                }
                _ => false,
            };
            if is_group_kw {
                let start = if self.text(i) == "grouped" { i + 1 } else { i };
                let mut j = start + 1;
                while j < n && is_stopword(self.text(j)) && self.text(j) != "by" {
                    j += 1;
                }
                if let Some((col, score, span)) = self.resolve_column(j) {
                    if score >= 0.6 {
                        group = Some(col);
                        self.mark(i..j + span);
                    }
                }
            }
            i += 1;
        }

        // Pass 6: projection columns ("show the name and balance of ...").
        let mut i = 0;
        while i < n {
            if self.consumed[i] || is_stopword(self.text(i)) || self.toks[i].number.is_some() {
                i += 1;
                continue;
            }
            if matches!(self.text(i), "distinct" | "different" | "unique") {
                distinct_projection = true;
                self.mark(i..i + 1);
                i += 1;
                continue;
            }
            if let Some((col, score, span)) = self.resolve_column(i) {
                if score > 0.75 && !projection_cols.contains(&col) {
                    projection_cols.push(col);
                    self.mark(i..i + span);
                    i += span;
                    continue;
                }
            }
            i += 1;
        }

        // A grouping without an aggregate ("orders per status") implies a
        // count per group; GROUP BY alone would be invalid SQL.
        if group.is_some() && agg.is_none() {
            agg = Some((AggKind::Count, None));
        }

        // A group-count condition builds its own aggregate query. Known
        // grammar limit: ordering/top-k intents parsed earlier are not
        // carried into the HAVING form.
        //   SELECT <subject display col> FROM subject JOIN counted ...
        //   GROUP BY <display col> HAVING COUNT(*) <op> N
        // When the question also counts ("how many X have more than N Y"),
        // the grouped query is wrapped as a derived table and counted.
        if let Some((op, count, counted_table)) = &having {
            let count_outer = matches!(&agg, Some((AggKind::Count, None)));
            let subject = self
                .subject_table_excluding(counted_table)
                .ok_or_else(|| Error::Translate("no subject table for group count".into()))?;
            let display = self
                .display_column(&subject)
                .ok_or_else(|| Error::Translate(format!("no display column in {subject}")))?;
            let mut referenced = BTreeSet::new();
            referenced.insert(subject.clone());
            referenced.insert(counted_table.to_lowercase());
            let from = self.join_path(&subject, &referenced)?;
            let inner = Select {
                distinct: false,
                projection: vec![SelectItem::Expr {
                    expr: Expr::col(display.column.clone()),
                    alias: None,
                }],
                from: Some(from),
                selection: Expr::conjunction(filters),
                group_by: vec![Expr::col(display.column.clone())],
                having: Some(Expr::binary(
                    Expr::Function {
                        name: "count".into(),
                        args: vec![Expr::Wildcard],
                        distinct: false,
                    },
                    *op,
                    Expr::lit(Value::Int64(*count)),
                )),
                order_by: Vec::new(),
                limit: if count_outer { None } else { limit },
                offset: None,
            };
            let select = if count_outer {
                Select {
                    distinct: false,
                    projection: vec![SelectItem::Expr {
                        expr: Expr::Function {
                            name: "count".into(),
                            args: vec![Expr::Wildcard],
                            distinct: false,
                        },
                        alias: None,
                    }],
                    from: Some(TableExpr::Subquery {
                        query: Box::new(inner),
                        alias: "grouped".into(),
                    }),
                    selection: None,
                    group_by: Vec::new(),
                    having: None,
                    order_by: Vec::new(),
                    limit: None,
                    offset: None,
                }
            } else {
                inner
            };
            let tables_used = collect_tables(select.from.as_ref().unwrap());
            return Ok(Translation {
                sql: select.to_string(),
                confidence: 0.85,
                select,
                tables_used,
            });
        }

        // -- choose the primary table ------------------------------------------

        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for t in &filter_tables {
            referenced.insert(t.to_lowercase());
        }
        if let Some((_, Some(c))) = &agg {
            referenced.insert(c.table.to_lowercase());
        }
        if let Some(g) = &group {
            referenced.insert(g.table.to_lowercase());
        }
        if let Some((OrderTarget::Col(c), _)) = &order {
            referenced.insert(c.table.to_lowercase());
        }
        for c in &projection_cols {
            referenced.insert(c.table.to_lowercase());
        }
        // The subject table: the highest-ranked pruned table mentioned by a
        // plural noun ("customers", "orders"), else the first referenced, else
        // the top pruned table.
        let subject = self
            .subject_table()
            .or_else(|| referenced.iter().next().cloned())
            .or_else(|| self.pruned.tables.first().map(|(t, _)| t.name.clone()))
            .ok_or_else(|| Error::Translate("no relevant table found".into()))?;
        referenced.insert(subject.clone());

        // -- join path ------------------------------------------------------------

        let join_order = self.join_path(&subject, &referenced)?;

        // -- assemble the SELECT ---------------------------------------------------

        let mut select_items: Vec<SelectItem> = Vec::new();
        let mut order_by: Vec<OrderByItem> = Vec::new();

        if let Some((kind, arg)) = &agg {
            if let Some(g) = &group {
                select_items.push(SelectItem::Expr {
                    expr: Expr::col(g.column.clone()),
                    alias: None,
                });
            }
            let agg_expr = Expr::Function {
                name: kind.fn_name().into(),
                args: match arg {
                    Some(c) => vec![Expr::col(c.column.clone())],
                    None => vec![Expr::Wildcard],
                },
                distinct: *kind == AggKind::CountDistinct,
            };
            select_items.push(SelectItem::Expr {
                expr: agg_expr,
                alias: None,
            });
            match &order {
                Some((OrderTarget::AggOutput, asc)) => {
                    order_by.push(OrderByItem {
                        expr: Expr::lit(Value::Int64(select_items.len() as i64)),
                        asc: *asc,
                    });
                }
                Some((OrderTarget::Col(c), asc)) => {
                    order_by.push(OrderByItem {
                        expr: Expr::col(c.column.clone()),
                        asc: *asc,
                    });
                }
                None if group.is_some() && limit.is_some() => {
                    // "top N groups" without explicit metric: order by the
                    // aggregate, descending.
                    order_by.push(OrderByItem {
                        expr: Expr::lit(Value::Int64(select_items.len() as i64)),
                        asc: false,
                    });
                }
                None => {}
            }
        } else {
            for c in &projection_cols {
                select_items.push(SelectItem::Expr {
                    expr: Expr::col(c.column.clone()),
                    alias: None,
                });
            }
            if select_items.is_empty() {
                select_items.push(SelectItem::Wildcard);
            }
            if let Some((target, asc)) = &order {
                let expr = match target {
                    OrderTarget::Col(c) => {
                        // Superlative ordering implies showing the metric.
                        if !projection_cols.iter().any(|p| p.column == c.column)
                            && !select_items
                                .iter()
                                .any(|s| matches!(s, SelectItem::Wildcard))
                        {
                            select_items.push(SelectItem::Expr {
                                expr: Expr::col(c.column.clone()),
                                alias: None,
                            });
                        }
                        Expr::col(c.column.clone())
                    }
                    OrderTarget::AggOutput => Expr::lit(Value::Int64(1)),
                };
                order_by.push(OrderByItem { expr, asc: *asc });
            }
        }

        let select = Select {
            distinct: distinct_projection && agg.is_none(),
            projection: select_items,
            from: Some(join_order),
            selection: Expr::conjunction(filters),
            group_by: group
                .as_ref()
                .map(|g| vec![Expr::col(g.column.clone())])
                .unwrap_or_default(),
            having: None,
            order_by,
            limit,
            offset: None,
        };

        // Tokens naming a used table count as grounded.
        let used_tables = collect_tables(select.from.as_ref().unwrap());
        for i in 0..n {
            if self.consumed[i] {
                continue;
            }
            for t in &used_tables {
                for p in crate::text::identifier_parts(t) {
                    if word_affinity(self.text(i), &p) >= 0.7 {
                        self.consumed[i] = true;
                    }
                }
            }
        }

        // Confidence: grounded content words / total content words.
        let content: Vec<usize> = (0..n).filter(|&i| !is_stopword(self.text(i))).collect();
        let grounded = content.iter().filter(|&&i| self.consumed[i]).count();
        let confidence = if content.is_empty() {
            0.0
        } else {
            grounded as f64 / content.len() as f64
        };

        let tables_used = collect_tables(select.from.as_ref().unwrap());
        Ok(Translation {
            sql: select.to_string(),
            select,
            confidence,
            tables_used,
        })
    }

    /// A comparison phrase ending at token `i` (the number's position).
    /// Returns the operator and the phrase's start index.
    fn comparison_before(&self, i: usize) -> (Option<BinaryOp>, usize) {
        let w1 = self.text(i.saturating_sub(1));
        let w2 = self.text(i.saturating_sub(2));
        match (w2, w1) {
            (_, "over" | "above" | "exceeding") => (Some(BinaryOp::Gt), i - 1),
            (_, "under" | "below") => (Some(BinaryOp::Lt), i - 1),
            ("more" | "greater" | "bigger" | "larger" | "higher" | "longer", "than") => {
                (Some(BinaryOp::Gt), i - 2)
            }
            ("less" | "fewer" | "smaller" | "lower" | "shorter", "than") => {
                (Some(BinaryOp::Lt), i - 2)
            }
            ("at", "least") => (Some(BinaryOp::GtEq), i - 2),
            ("at", "most") => (Some(BinaryOp::LtEq), i - 2),
            (_, "exactly" | "equals" | "equal") => (Some(BinaryOp::Eq), i - 1),
            _ => (None, i),
        }
    }

    /// The table whose name a plural/singular noun in the question matches
    /// best.
    fn subject_table(&self) -> Option<String> {
        let mut best: Option<(String, f64)> = None;
        for (t, _) in &self.pruned.tables {
            let parts = crate::text::identifier_parts(&t.name);
            for tok in self.toks {
                for p in &parts {
                    let s = word_affinity(&tok.text, p);
                    if s > 0.0 && best.as_ref().is_none_or(|(_, b)| s > *b) {
                        best = Some((t.name.clone(), s));
                    }
                }
            }
        }
        best.map(|(t, _)| t.to_lowercase())
    }

    /// Like `subject_table` but never the given table (the counted side of
    /// a group-count condition).
    fn subject_table_excluding(&self, excluded: &str) -> Option<String> {
        let mut best: Option<(String, f64)> = None;
        for (t, _) in &self.pruned.tables {
            if t.name.eq_ignore_ascii_case(excluded) {
                continue;
            }
            let parts = crate::text::identifier_parts(&t.name);
            for tok in self.toks {
                for p in &parts {
                    let s = word_affinity(&tok.text, p);
                    if s > 0.0 && best.as_ref().is_none_or(|(_, b)| s > *b) {
                        best = Some((t.name.clone(), s));
                    }
                }
            }
        }
        best.map(|(t, _)| t.to_lowercase())
    }

    /// The table whose name the token at `i` matches strongly, if any.
    fn table_named_at(&self, i: usize) -> Option<String> {
        let word = self.toks.get(i)?;
        for t in self.tables {
            for p in crate::text::identifier_parts(&t.name) {
                if word_affinity(&word.text, &p) >= 0.7 {
                    return Some(t.name.clone());
                }
            }
        }
        None
    }

    /// The display column of a table: a string column named like "name",
    /// else the primary key, else the first column.
    fn display_column(&self, table: &str) -> Option<ColRef> {
        let t = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(table))?;
        let by_name =
            t.schema.fields().iter().position(|f| {
                f.data_type == DataType::Utf8 && f.name.to_lowercase().contains("name")
            });
        let idx = by_name
            .or_else(|| t.primary_key.as_ref().and_then(|pk| t.schema.index_of(pk)))
            .unwrap_or(0);
        let f = t.schema.field(idx);
        Some(ColRef {
            table: t.name.clone(),
            column: f.name.clone(),
            data_type: f.data_type,
        })
    }

    /// Build a FROM clause joining `referenced` tables via FK edges,
    /// starting at `subject` (BFS over the FK graph).
    fn join_path(&self, subject: &str, referenced: &BTreeSet<String>) -> Result<TableExpr> {
        // Build the undirected FK edge list over all tables of the database.
        let find = |name: &str| {
            self.tables
                .iter()
                .position(|t| t.name.eq_ignore_ascii_case(name))
        };
        let start =
            find(subject).ok_or_else(|| Error::Translate(format!("unknown table {subject}")))?;
        let mut need: BTreeSet<usize> = BTreeSet::new();
        for r in referenced {
            if let Some(i) = find(r) {
                need.insert(i);
            }
        }
        need.insert(start);

        // BFS from start over FK edges, recording parents.
        let n = self.tables.len();
        let mut edges: Vec<Vec<(usize, String, String)>> = vec![Vec::new(); n]; // (other, this_col, other_col)
        for (i, t) in self.tables.iter().enumerate() {
            for fk in &t.foreign_keys {
                if let Some(j) = find(&fk.ref_table) {
                    edges[i].push((j, fk.column.clone(), fk.ref_column.clone()));
                    edges[j].push((i, fk.ref_column.clone(), fk.column.clone()));
                }
            }
        }
        let mut parent: Vec<Option<(usize, String, String)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (v, ucol, vcol) in &edges[u] {
                if !visited[*v] {
                    visited[*v] = true;
                    parent[*v] = Some((u, ucol.clone(), vcol.clone()));
                    queue.push_back(*v);
                }
            }
        }
        // Union of paths from each needed table back to start.
        let mut in_join: BTreeSet<usize> = BTreeSet::new();
        in_join.insert(start);
        for &target in &need {
            if !visited[target] {
                return Err(Error::Translate(format!(
                    "no join path from {} to {}",
                    self.tables[start].name, self.tables[target].name
                )));
            }
            let mut cur = target;
            while cur != start {
                in_join.insert(cur);
                cur = parent[cur].as_ref().unwrap().0;
            }
        }
        // Emit joins in BFS order so each table joins against one already
        // present.
        let mut expr = TableExpr::Table {
            name: ObjectName::bare(self.tables[start].name.clone()),
            alias: None,
        };
        let mut placed: BTreeSet<usize> = BTreeSet::new();
        placed.insert(start);
        while placed.len() < in_join.len() {
            let mut progressed = false;
            for &t in &in_join {
                if placed.contains(&t) {
                    continue;
                }
                let Some((p, pcol, tcol)) = &parent[t] else {
                    continue;
                };
                if !placed.contains(p) {
                    continue;
                }
                expr = TableExpr::Join {
                    left: Box::new(expr),
                    right: Box::new(TableExpr::Table {
                        name: ObjectName::bare(self.tables[t].name.clone()),
                        alias: None,
                    }),
                    join_type: JoinType::Inner,
                    on: Some(Expr::eq(Expr::col(pcol.clone()), Expr::col(tcol.clone()))),
                };
                placed.insert(t);
                progressed = true;
            }
            if !progressed {
                return Err(Error::Translate("could not order join path".into()));
            }
        }
        Ok(expr)
    }
}

fn number_literal(num: f64) -> Expr {
    if num.fract() == 0.0 && num.abs() < 9e15 {
        Expr::lit(Value::Int64(num as i64))
    } else {
        Expr::lit(Value::Float64(num))
    }
}

fn collect_tables(te: &TableExpr) -> Vec<String> {
    match te {
        TableExpr::Table { name, .. } => vec![name.table.clone()],
        TableExpr::Join { left, right, .. } => {
            let mut v = collect_tables(left);
            v.extend(collect_tables(right));
            v
        }
        TableExpr::Subquery { .. } => vec![],
    }
}
