//! `pixels-nl2sql` — the natural-language interface of PixelsDB (paper §3.3).
//!
//! Reproduces the CodeS text-to-SQL pipeline as a deterministic system:
//!
//! 1. [`schema_pruning`] — select the schema elements most relevant to the
//!    question (handles arbitrarily wide tables without truncation);
//! 2. [`values`] — ground question literals in sampled database values
//!    ("germany" → `n_name = 'GERMANY'`);
//! 3. [`translator`] — single-turn grammar-based semantic parsing into an
//!    executable SQL AST, with FK-driven join-path inference;
//! 4. [`service`] — the pluggable REST-shaped JSON API Pixels-Rover calls;
//! 5. [`benchmark`] — a Spider-style evaluation suite with exact-match and
//!    execution-accuracy metrics.

pub mod benchmark;
pub mod schema_pruning;
pub mod service;
pub mod text;
pub mod translator;
pub mod values;

pub use benchmark::{evaluate, BenchmarkReport, CaseResult, NlCase, CASES};
pub use schema_pruning::{prune_schema, serialize_full, PruneConfig, PrunedSchema};
pub use service::{CodesService, TextToSqlService};
pub use translator::{Translation, Translator};
pub use values::ValueIndex;
