//! Built-in text-to-SQL benchmark (Spider-style, over our schemas).
//!
//! Each case pairs a natural-language question with gold SQL. Evaluation
//! reports two metrics, mirroring the text-to-SQL literature:
//!
//! - **exact match**: normalized generated SQL equals normalized gold SQL;
//! - **execution accuracy**: both queries run and return identical result
//!   multisets (order-insensitive unless the gold query orders).
//!
//! CodeS reports >80% single-turn execution accuracy on Spider-class
//! benchmarks; experiment E7 reproduces that *shape* on this suite.

use crate::service::TextToSqlService;
use pixels_catalog::Catalog;
use pixels_common::{RecordBatch, Result, Value};
use pixels_exec::run_query;
use pixels_storage::ObjectStoreRef;

/// One benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct NlCase {
    pub id: &'static str,
    pub database: &'static str,
    pub question: &'static str,
    pub gold_sql: &'static str,
    /// Whether row order matters for execution comparison.
    pub ordered: bool,
}

/// The built-in suite (TPC-H + web-log schemas).
pub const CASES: &[NlCase] = &[
    // -- counting ---------------------------------------------------------
    NlCase {
        id: "count_customers",
        database: "tpch",
        question: "How many customers are there?",
        gold_sql: "SELECT COUNT(*) FROM customer",
        ordered: false,
    },
    NlCase {
        id: "count_orders_1995",
        database: "tpch",
        question: "How many orders were placed in 1995?",
        gold_sql: "SELECT COUNT(*) FROM orders WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'",
        ordered: false,
    },
    NlCase {
        id: "count_large_parts",
        database: "tpch",
        question: "How many parts have a size greater than 40?",
        gold_sql: "SELECT COUNT(*) FROM part WHERE p_size > 40",
        ordered: false,
    },
    NlCase {
        id: "count_distinct_segments",
        database: "tpch",
        question: "How many distinct market segments are there?",
        gold_sql: "SELECT COUNT(DISTINCT c_mktsegment) FROM customer",
        ordered: false,
    },
    NlCase {
        id: "count_suppliers",
        database: "tpch",
        question: "Count the suppliers",
        gold_sql: "SELECT COUNT(*) FROM supplier",
        ordered: false,
    },
    // -- simple aggregates ---------------------------------------------------
    NlCase {
        id: "avg_balance",
        database: "tpch",
        question: "What is the average account balance of customers?",
        gold_sql: "SELECT AVG(c_acctbal) FROM customer",
        ordered: false,
    },
    NlCase {
        id: "max_supplycost",
        database: "tpch",
        question: "What is the maximum supply cost?",
        gold_sql: "SELECT MAX(ps_supplycost) FROM partsupp",
        ordered: false,
    },
    NlCase {
        id: "min_retailprice",
        database: "tpch",
        question: "What is the minimum retail price of parts?",
        gold_sql: "SELECT MIN(p_retailprice) FROM part",
        ordered: false,
    },
    NlCase {
        id: "sum_quantity_1994",
        database: "tpch",
        question: "What is the total quantity shipped in 1994?",
        gold_sql: "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'",
        ordered: false,
    },
    NlCase {
        id: "avg_totalprice",
        database: "tpch",
        question: "Average total price of orders",
        gold_sql: "SELECT AVG(o_totalprice) FROM orders",
        ordered: false,
    },
    // -- grouping ---------------------------------------------------------
    NlCase {
        id: "orders_per_status",
        database: "tpch",
        question: "How many orders per order status?",
        gold_sql: "SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus",
        ordered: false,
    },
    NlCase {
        id: "avg_price_per_priority",
        database: "tpch",
        question: "Average total price of orders per order priority",
        gold_sql: "SELECT o_orderpriority, AVG(o_totalprice) FROM orders GROUP BY o_orderpriority",
        ordered: false,
    },
    NlCase {
        id: "customers_per_segment",
        database: "tpch",
        question: "Number of customers per market segment",
        gold_sql: "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        ordered: false,
    },
    NlCase {
        id: "qty_per_returnflag",
        database: "tpch",
        question: "Total quantity per return flag",
        gold_sql: "SELECT l_returnflag, SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
        ordered: false,
    },
    // -- filters with values ----------------------------------------------
    NlCase {
        id: "customers_from_germany",
        database: "tpch",
        question: "How many customers are from Germany?",
        gold_sql: "SELECT COUNT(*) FROM customer JOIN nation ON c_nationkey = n_nationkey WHERE n_name = 'GERMANY'",
        ordered: false,
    },
    NlCase {
        id: "building_segment_names",
        database: "tpch",
        question: "Show the names of customers in the 'BUILDING' segment",
        gold_sql: "SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'",
        ordered: false,
    },
    NlCase {
        id: "urgent_orders",
        database: "tpch",
        question: "How many orders have priority '1-URGENT'?",
        gold_sql: "SELECT COUNT(*) FROM orders WHERE o_orderpriority = '1-URGENT'",
        ordered: false,
    },
    NlCase {
        id: "asia_nations",
        database: "tpch",
        question: "List the names of nations in the 'ASIA' region",
        gold_sql: "SELECT n_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'ASIA'",
        ordered: false,
    },
    // -- comparisons -------------------------------------------------------
    NlCase {
        id: "expensive_orders",
        database: "tpch",
        question: "How many orders have a total price over 300000?",
        gold_sql: "SELECT COUNT(*) FROM orders WHERE o_totalprice > 300000",
        ordered: false,
    },
    NlCase {
        id: "rich_customers",
        database: "tpch",
        question: "How many customers have an account balance of at least 9000?",
        gold_sql: "SELECT COUNT(*) FROM customer WHERE c_acctbal >= 9000",
        ordered: false,
    },
    NlCase {
        id: "small_quantity",
        database: "tpch",
        question: "Count lineitems with quantity less than 5",
        gold_sql: "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
        ordered: false,
    },
    // -- top-k / ordering ---------------------------------------------------
    NlCase {
        id: "top5_customers_balance",
        database: "tpch",
        question: "Show the top 5 customers sorted by account balance descending",
        gold_sql: "SELECT * FROM customer ORDER BY c_acctbal DESC LIMIT 5",
        ordered: true,
    },
    NlCase {
        id: "top3_expensive_parts",
        database: "tpch",
        question: "Top 3 parts with the highest retail price",
        gold_sql: "SELECT * FROM part ORDER BY p_retailprice DESC LIMIT 3",
        ordered: true,
    },
    // -- joins via FK inference -------------------------------------------
    NlCase {
        id: "customers_per_nation",
        database: "tpch",
        question: "Number of customers per nation name",
        gold_sql: "SELECT n_name, COUNT(*) FROM customer JOIN nation ON c_nationkey = n_nationkey GROUP BY n_name",
        ordered: false,
    },
    NlCase {
        id: "france_order_count",
        database: "tpch",
        question: "How many orders were placed by customers from France?",
        gold_sql: "SELECT COUNT(*) FROM orders JOIN customer ON o_custkey = c_custkey JOIN nation ON c_nationkey = n_nationkey WHERE n_name = 'FRANCE'",
        ordered: false,
    },
    // -- weblog -------------------------------------------------------------
    NlCase {
        id: "count_requests",
        database: "logs",
        question: "How many requests are there?",
        gold_sql: "SELECT COUNT(*) FROM requests",
        ordered: false,
    },
    NlCase {
        id: "server_errors",
        database: "logs",
        question: "How many requests have status 500?",
        gold_sql: "SELECT COUNT(*) FROM requests WHERE status = 500",
        ordered: false,
    },
    NlCase {
        id: "avg_latency_per_method",
        database: "logs",
        question: "Average latency per method",
        gold_sql: "SELECT method, AVG(latency_ms) FROM requests GROUP BY method",
        ordered: false,
    },
    NlCase {
        id: "hits_per_country",
        database: "logs",
        question: "Number of requests per country",
        gold_sql: "SELECT country, COUNT(*) FROM requests GROUP BY country",
        ordered: false,
    },
    NlCase {
        id: "slow_requests",
        database: "logs",
        question: "How many requests have latency greater than 1000?",
        gold_sql: "SELECT COUNT(*) FROM requests WHERE latency_ms > 1000",
        ordered: false,
    },
    NlCase {
        id: "get_requests",
        database: "logs",
        question: "How many requests used the 'GET' method?",
        gold_sql: "SELECT COUNT(*) FROM requests WHERE method = 'GET'",
        ordered: false,
    },
    NlCase {
        id: "bytes_per_url",
        database: "logs",
        question: "Total bytes per url",
        gold_sql: "SELECT url, SUM(bytes) FROM requests GROUP BY url",
        ordered: false,
    },
    NlCase {
        id: "distinct_countries",
        database: "logs",
        question: "How many distinct countries are there?",
        gold_sql: "SELECT COUNT(DISTINCT country) FROM requests",
        ordered: false,
    },
    // -- group-count conditions (HAVING) -------------------------------------
    NlCase {
        id: "nations_with_many_customers",
        database: "tpch",
        question: "List the names of nations with more than 5 customers",
        gold_sql: "SELECT n_name FROM nation JOIN customer ON n_nationkey = c_nationkey \
                   GROUP BY n_name HAVING COUNT(*) > 5",
        ordered: false,
    },
    NlCase {
        id: "loyal_customers",
        database: "tpch",
        question: "Customers with at least 13 orders",
        gold_sql: "SELECT c_name FROM customer JOIN orders ON c_custkey = o_custkey \
                   GROUP BY c_name HAVING COUNT(*) >= 13",
        ordered: false,
    },
    NlCase {
        id: "count_loyal_customers",
        database: "tpch",
        question: "How many customers placed more than 15 orders?",
        gold_sql: "SELECT COUNT(*) FROM (SELECT c_custkey FROM customer \
                   JOIN orders ON c_custkey = o_custkey GROUP BY c_custkey \
                   HAVING COUNT(*) > 15) AS sub",
        ordered: false,
    },
    // -- intentionally hard (grammar gaps expected) --------------------------
    NlCase {
        id: "hard_self_join",
        database: "tpch",
        question: "Which customers placed more orders than the average customer?",
        gold_sql: "SELECT c_name FROM customer WHERE c_custkey = -1", // unreachable by grammar
        ordered: false,
    },
    NlCase {
        id: "hard_negation",
        database: "tpch",
        question: "Customers who never placed any order",
        gold_sql: "SELECT c_name FROM customer LEFT JOIN orders ON c_custkey = o_custkey WHERE o_orderkey IS NULL",
        ordered: false,
    },
];

/// Outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub id: &'static str,
    pub generated_sql: Option<String>,
    pub exact_match: bool,
    pub execution_match: bool,
    pub error: Option<String>,
}

/// Aggregate report.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    pub cases: Vec<CaseResult>,
}

impl BenchmarkReport {
    pub fn total(&self) -> usize {
        self.cases.len()
    }

    pub fn exact_matches(&self) -> usize {
        self.cases.iter().filter(|c| c.exact_match).count()
    }

    pub fn execution_matches(&self) -> usize {
        self.cases.iter().filter(|c| c.execution_match).count()
    }

    pub fn execution_accuracy(&self) -> f64 {
        if self.cases.is_empty() {
            0.0
        } else {
            self.execution_matches() as f64 / self.total() as f64
        }
    }
}

/// Normalize SQL for exact-match comparison.
pub fn normalize_sql(sql: &str) -> String {
    sql.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_uppercase()
        .replace('(', " ( ")
        .replace(')', " ) ")
        .replace(',', " , ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Compare two result batches as multisets (or sequences when `ordered`).
pub fn results_equal(a: &RecordBatch, b: &RecordBatch, ordered: bool) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    let norm = |rows: Vec<Vec<Value>>| -> Vec<Vec<String>> {
        rows.into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|v| match v {
                        // Compare floats at reduced precision.
                        Value::Float64(f) => format!("{f:.4}"),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect()
    };
    let mut ra = norm(a.to_rows());
    let mut rb = norm(b.to_rows());
    if !ordered {
        ra.sort();
        rb.sort();
    }
    ra == rb
}

/// Run the full suite against a service.
pub fn evaluate(
    service: &dyn TextToSqlService,
    catalog: &Catalog,
    store: ObjectStoreRef,
    cases: &[NlCase],
) -> Result<BenchmarkReport> {
    let mut results = Vec::with_capacity(cases.len());
    for case in cases {
        let gold = run_query(catalog, store.clone(), case.database, case.gold_sql)?;
        let outcome = service.translate(case.database, case.question);
        let result = match outcome {
            Err(e) => CaseResult {
                id: case.id,
                generated_sql: None,
                exact_match: false,
                execution_match: false,
                error: Some(e.to_string()),
            },
            Ok(t) => {
                let exact = normalize_sql(&t.sql) == normalize_sql(case.gold_sql);
                match run_query(catalog, store.clone(), case.database, &t.sql) {
                    Ok(got) => CaseResult {
                        id: case.id,
                        exact_match: exact,
                        execution_match: results_equal(&gold, &got, case.ordered),
                        generated_sql: Some(t.sql),
                        error: None,
                    },
                    Err(e) => CaseResult {
                        id: case.id,
                        exact_match: exact,
                        execution_match: false,
                        generated_sql: Some(t.sql),
                        error: Some(e.to_string()),
                    },
                }
            }
        };
        results.push(result);
    }
    Ok(BenchmarkReport { cases: results })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(
            normalize_sql("select  COUNT( * )\nfrom t"),
            normalize_sql("SELECT COUNT(*) FROM t")
        );
    }

    #[test]
    fn case_ids_unique() {
        let mut ids: Vec<&str> = CASES.iter().map(|c| c.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn gold_queries_parse() {
        for c in CASES {
            assert!(
                pixels_sql::parse_query(c.gold_sql).is_ok(),
                "gold SQL for {} does not parse",
                c.id
            );
        }
    }
}
