//! Schema pruning (paper §3.3).
//!
//! CodeS "identifies the schema elements most related to the user's
//! question" before serializing them into the model prompt, which lets it
//! handle tables of *any* width (thousands of columns) without context
//! truncation. This module reproduces that stage: score every table and
//! column lexically against the question, keep the best, and always close
//! the set over foreign keys so join paths survive pruning.

use crate::text::{identifier_parts, is_stopword, tokenize, word_affinity};
use pixels_catalog::TableDef;
use std::collections::BTreeSet;

/// Pruning configuration (CodeS-like defaults).
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    pub max_tables: usize,
    pub max_columns_per_table: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            max_tables: 4,
            max_columns_per_table: 8,
        }
    }
}

/// The pruned schema handed to the translator (or serialized into a prompt).
#[derive(Debug, Clone)]
pub struct PrunedSchema {
    /// Retained tables with their retained column indices, ranked by
    /// relevance.
    pub tables: Vec<(TableDef, Vec<usize>)>,
}

impl PrunedSchema {
    /// Serialize as a CodeS-style prompt fragment:
    /// `table(col type, col type, ...)` per line. Its length is the
    /// "prompt size" measured in experiment E8.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for (t, cols) in &self.tables {
            out.push_str(&t.name);
            out.push('(');
            for (i, &c) in cols.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let f = t.schema.field(c);
                out.push_str(&f.name);
                out.push(' ');
                out.push_str(f.data_type.sql_name());
            }
            out.push_str(")\n");
        }
        out
    }

    pub fn prompt_bytes(&self) -> usize {
        self.serialize().len()
    }
}

/// Serialize a *full* (unpruned) schema — the baseline the pruning
/// experiment compares against.
pub fn serialize_full(tables: &[TableDef]) -> String {
    let all = PrunedSchema {
        tables: tables
            .iter()
            .map(|t| (t.clone(), (0..t.schema.len()).collect()))
            .collect(),
    };
    all.serialize()
}

/// Relevance score of one table for the question tokens.
fn table_score(table: &TableDef, words: &[String]) -> f64 {
    let mut score: f64 = 0.0;
    let name_parts = identifier_parts(&table.name);
    for w in words {
        for p in &name_parts {
            score += 2.0 * word_affinity(w, p);
        }
        if let Some(comment) = &table.comment {
            for cw in comment.split_whitespace() {
                score += 0.3 * word_affinity(w, &cw.to_lowercase());
            }
        }
    }
    score
}

/// Relevance score of one column.
pub fn column_score(column_name: &str, words: &[String]) -> f64 {
    let parts = identifier_parts(column_name);
    let mut score: f64 = 0.0;
    for w in words {
        let mut best: f64 = 0.0;
        for p in &parts {
            best = best.max(word_affinity(w, p));
        }
        score += best;
    }
    score
}

/// Prune `tables` down to the elements most relevant to `question`.
pub fn prune_schema(question: &str, tables: &[TableDef], cfg: PruneConfig) -> PrunedSchema {
    let words: Vec<String> = tokenize(question)
        .into_iter()
        .filter(|t| !t.quoted && t.number.is_none() && !is_stopword(&t.text))
        .map(|t| t.text)
        .collect();

    // Rank tables: lexical score plus the best column hit (a question that
    // names only a column must still pull in its table).
    let mut ranked: Vec<(usize, f64)> = tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let col_best = t
                .schema
                .fields()
                .iter()
                .map(|f| column_score(&f.name, &words))
                .fold(0.0f64, f64::max);
            (i, table_score(t, &words) + col_best)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut keep: BTreeSet<usize> = ranked
        .iter()
        .take(cfg.max_tables)
        .filter(|(_, s)| *s > 0.0)
        .map(|(i, _)| *i)
        .collect();
    // Nothing matched: keep the top table anyway so translation can try.
    if keep.is_empty() {
        if let Some((i, _)) = ranked.first() {
            keep.insert(*i);
        }
    }

    // Close over foreign keys: if a kept table references another, keep the
    // referenced table too (join paths must survive pruning).
    loop {
        let mut added = false;
        let snapshot: Vec<usize> = keep.iter().copied().collect();
        for &i in &snapshot {
            for fk in &tables[i].foreign_keys {
                if let Some(j) = tables
                    .iter()
                    .position(|t| t.name.eq_ignore_ascii_case(&fk.ref_table))
                {
                    if keep.len() < cfg.max_tables + 2 && keep.insert(j) {
                        added = true;
                    }
                }
            }
        }
        if !added {
            break;
        }
    }

    // Per kept table: rank columns, retaining keys (PK/FK) unconditionally.
    let mut result = Vec::new();
    for (i, _) in ranked {
        if !keep.contains(&i) {
            continue;
        }
        let t = &tables[i];
        // Words that name the table itself ("orders") would match every
        // `o_order*` column; exclude them from column scoring.
        let name_parts = identifier_parts(&t.name);
        let col_words: Vec<String> = words
            .iter()
            .filter(|w| !name_parts.iter().any(|p| word_affinity(w, p) >= 0.7))
            .cloned()
            .collect();
        let col_words = if col_words.is_empty() {
            &words
        } else {
            &col_words
        };
        let mut cols: Vec<(usize, f64)> = t
            .schema
            .fields()
            .iter()
            .enumerate()
            .map(|(c, f)| (c, column_score(&f.name, col_words)))
            .collect();
        cols.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut kept_cols: BTreeSet<usize> = cols
            .iter()
            .take(cfg.max_columns_per_table)
            .map(|(c, _)| *c)
            .collect();
        if let Some(pk) = &t.primary_key {
            if let Some(c) = t.schema.index_of(pk) {
                kept_cols.insert(c);
            }
        }
        for fk in &t.foreign_keys {
            if let Some(c) = t.schema.index_of(&fk.column) {
                kept_cols.insert(c);
            }
        }
        result.push((t.clone(), kept_cols.into_iter().collect()));
    }
    PrunedSchema { tables: result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_catalog::{Catalog, ForeignKey};
    use pixels_common::{DataType, Field, Schema, TableId};
    use pixels_workload::{load_tpch, TpchConfig};
    use std::sync::Arc;

    fn tpch_tables() -> Vec<TableDef> {
        let catalog = Catalog::new();
        let store = pixels_storage::InMemoryObjectStore::new();
        load_tpch(
            &catalog,
            &store,
            "tpch",
            &TpchConfig {
                scale: 0.0005,
                ..Default::default()
            },
        )
        .unwrap();
        catalog.list_tables("tpch").unwrap()
    }

    #[test]
    fn question_about_orders_keeps_orders() {
        let tables = tpch_tables();
        let pruned = prune_schema(
            "how many orders were placed in 1995",
            &tables,
            PruneConfig::default(),
        );
        let names: Vec<&str> = pruned.tables.iter().map(|(t, _)| t.name.as_str()).collect();
        assert!(names.contains(&"orders"), "{names:?}");
        assert!(
            !names.contains(&"part"),
            "irrelevant tables pruned: {names:?}"
        );
    }

    #[test]
    fn fk_closure_keeps_join_targets() {
        let tables = tpch_tables();
        let pruned = prune_schema(
            "total revenue of customers per nation",
            &tables,
            PruneConfig::default(),
        );
        let names: Vec<&str> = pruned.tables.iter().map(|(t, _)| t.name.as_str()).collect();
        assert!(names.contains(&"customer"), "{names:?}");
        assert!(names.contains(&"nation"), "{names:?}");
    }

    #[test]
    fn keys_survive_column_pruning() {
        let tables = tpch_tables();
        let pruned = prune_schema(
            "average order price",
            &tables,
            PruneConfig {
                max_tables: 2,
                max_columns_per_table: 2,
            },
        );
        let (orders, cols) = pruned
            .tables
            .iter()
            .find(|(t, _)| t.name == "orders")
            .expect("orders kept");
        let kept: Vec<&str> = cols
            .iter()
            .map(|&c| orders.schema.field(c).name.as_str())
            .collect();
        assert!(kept.contains(&"o_orderkey"), "PK kept: {kept:?}");
        assert!(kept.contains(&"o_custkey"), "FK kept: {kept:?}");
        assert!(
            kept.contains(&"o_totalprice"),
            "matched column kept: {kept:?}"
        );
    }

    #[test]
    fn wide_table_prompt_shrinks() {
        // A 2000-column table: pruning must keep the prompt tiny.
        let mut fields = vec![Field::required("event_revenue", DataType::Float64)];
        for i in 0..2000 {
            fields.push(Field::nullable(format!("attr_{i:04}"), DataType::Utf8));
        }
        let wide = TableDef {
            id: TableId(0),
            database: "w".into(),
            name: "events".into(),
            schema: Arc::new(Schema::new(fields)),
            paths: vec![],
            stats: Default::default(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        };
        let full_len = serialize_full(std::slice::from_ref(&wide)).len();
        let pruned = prune_schema(
            "total revenue of events",
            std::slice::from_ref(&wide),
            PruneConfig::default(),
        );
        assert!(
            pruned.prompt_bytes() * 20 < full_len,
            "pruned {} vs full {full_len}",
            pruned.prompt_bytes()
        );
        let (_, cols) = &pruned.tables[0];
        assert!(cols.contains(&0), "revenue column retained");
    }

    #[test]
    fn no_match_still_returns_something() {
        let t = TableDef {
            id: TableId(1),
            database: "d".into(),
            name: "zzz".into(),
            schema: Arc::new(Schema::new(vec![Field::required("a", DataType::Int32)])),
            paths: vec![],
            stats: Default::default(),
            primary_key: None,
            foreign_keys: vec![ForeignKey {
                column: "a".into(),
                ref_table: "zzz".into(),
                ref_column: "a".into(),
            }],
            comment: None,
        };
        let pruned = prune_schema("completely unrelated words", &[t], PruneConfig::default());
        assert_eq!(pruned.tables.len(), 1);
        assert!(!pruned.serialize().is_empty());
    }
}
