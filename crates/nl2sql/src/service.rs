//! The pluggable text-to-SQL service (paper §2, component 3).
//!
//! CodeS exposes a REST API taking a JSON message with the user's question
//! and the schema elements of the selected database, and answers with the
//! translated SQL in a single round trip. This module reproduces that
//! interface shape: [`TextToSqlService`] is the pluggable trait ("we can
//! upgrade or replace it independently"), and [`CodesService`] is the
//! built-in grammar-based implementation with the JSON wire format.

use crate::translator::{Translation, Translator};
use crate::values::ValueIndex;
use parking_lot::RwLock;
use pixels_catalog::CatalogRef;
use pixels_common::{Error, Json, Result};
use pixels_storage::ObjectStoreRef;
use std::collections::HashMap;

/// The pluggable translation interface.
pub trait TextToSqlService: Send + Sync {
    /// Translate a question over the given database in a single turn.
    fn translate(&self, database: &str, question: &str) -> Result<Translation>;
}

/// The built-in CodeS-style service: schema pruning + grammar translation
/// grounded in sampled database values. Translators are built lazily per
/// database and cached.
pub struct CodesService {
    catalog: CatalogRef,
    store: ObjectStoreRef,
    translators: RwLock<HashMap<String, std::sync::Arc<Translator>>>,
}

impl CodesService {
    pub fn new(catalog: CatalogRef, store: ObjectStoreRef) -> Self {
        CodesService {
            catalog,
            store,
            translators: RwLock::new(HashMap::new()),
        }
    }

    fn translator(&self, database: &str) -> Result<std::sync::Arc<Translator>> {
        let key = database.to_ascii_lowercase();
        if let Some(t) = self.translators.read().get(&key) {
            return Ok(t.clone());
        }
        let tables = self.catalog.list_tables(database)?;
        let values = ValueIndex::build(&self.catalog, self.store.as_ref(), database, 60)?;
        let t = std::sync::Arc::new(Translator::new(tables, values));
        self.translators.write().insert(key, t.clone());
        Ok(t)
    }

    /// Handle one JSON request (the wire format Pixels-Rover sends):
    /// `{"question": "...", "database": "..."}` →
    /// `{"sql": "...", "confidence": 0.9, "tables": [...]}` or
    /// `{"error": "..."}`.
    pub fn handle_json(&self, request: &str) -> String {
        let response = (|| -> Result<Json> {
            let req = Json::parse(request)?;
            let question = req
                .get_or_err("question")?
                .as_str()
                .ok_or_else(|| Error::Invalid("question must be a string".into()))?;
            let database = req
                .get_or_err("database")?
                .as_str()
                .ok_or_else(|| Error::Invalid("database must be a string".into()))?;
            let t = self.translate(database, question)?;
            Ok(Json::object([
                ("sql", Json::string(t.sql)),
                ("confidence", Json::number(t.confidence)),
                (
                    "tables",
                    Json::array(t.tables_used.into_iter().map(Json::string)),
                ),
            ]))
        })();
        match response {
            Ok(json) => json.to_compact_string(),
            Err(e) => Json::object([("error", Json::string(e.to_string()))]).to_compact_string(),
        }
    }
}

impl TextToSqlService for CodesService {
    fn translate(&self, database: &str, question: &str) -> Result<Translation> {
        self.translator(database)?.translate(question)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_catalog::Catalog;
    use pixels_storage::InMemoryObjectStore;
    use pixels_workload::{load_tpch, TpchConfig};

    fn service() -> CodesService {
        let catalog = Catalog::shared();
        let store = InMemoryObjectStore::shared();
        load_tpch(
            &catalog,
            store.as_ref(),
            "tpch",
            &TpchConfig {
                scale: 0.0005,
                ..Default::default()
            },
        )
        .unwrap();
        CodesService::new(catalog, store)
    }

    #[test]
    fn json_roundtrip() {
        let s = service();
        let resp =
            s.handle_json(r#"{"question": "how many customers are there", "database": "tpch"}"#);
        let json = Json::parse(&resp).unwrap();
        let sql = json.get("sql").unwrap().as_str().unwrap();
        assert!(sql.to_uppercase().contains("COUNT(*)"), "{sql}");
        assert!(sql.to_lowercase().contains("customer"), "{sql}");
        assert!(json.get("confidence").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn json_errors_are_reported() {
        let s = service();
        let resp = s.handle_json(r#"{"question": "hi"}"#);
        let json = Json::parse(&resp).unwrap();
        assert!(json.get("error").is_some());
        let resp = s.handle_json("not json");
        assert!(Json::parse(&resp).unwrap().get("error").is_some());
        let resp = s.handle_json(r#"{"question": "count orders", "database": "nope"}"#);
        assert!(Json::parse(&resp).unwrap().get("error").is_some());
    }

    #[test]
    fn translators_are_cached() {
        let s = service();
        let a = s.translator("tpch").unwrap();
        let b = s.translator("TPCH").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }
}
