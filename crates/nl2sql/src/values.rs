//! Database value index.
//!
//! CodeS grounds questions in actual database content (e.g. mapping the
//! words "united states" to `nation.n_name = 'UNITED STATES'`). This module
//! builds the same capability by sampling low-cardinality string columns
//! from the stored data and indexing their distinct values.

use pixels_catalog::Catalog;
use pixels_common::Result;
use pixels_storage::{ObjectStore, PixelsReader};
use std::collections::HashMap;

/// Where a literal value lives: `(table, column)` plus its exact stored
/// spelling (questions are matched case-insensitively, SQL needs the
/// original).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSite {
    pub table: String,
    pub column: String,
    pub stored: String,
}

/// Lowercased value text → candidate sites.
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    map: HashMap<String, Vec<ValueSite>>,
}

impl ValueIndex {
    /// Scan the first row group of each table's first file and index string
    /// columns with at most `max_distinct` distinct values.
    pub fn build(
        catalog: &Catalog,
        store: &dyn ObjectStore,
        database: &str,
        max_distinct: usize,
    ) -> Result<ValueIndex> {
        let mut map: HashMap<String, Vec<ValueSite>> = HashMap::new();
        for table in catalog.list_tables(database)? {
            let Some(path) = table.paths.first() else {
                continue;
            };
            let reader = PixelsReader::open(store, path)?;
            if reader.num_row_groups() == 0 {
                continue;
            }
            for (col_idx, field) in table.schema.fields().iter().enumerate() {
                if field.data_type != pixels_common::DataType::Utf8 {
                    continue;
                }
                // Honor catalog NDV hints when present.
                if let Some(ndv) = table
                    .stats
                    .columns
                    .get(col_idx)
                    .and_then(|c| c.distinct_count)
                {
                    if ndv as usize > max_distinct {
                        continue;
                    }
                }
                let batch = reader.read_row_group(0, Some(&[col_idx]))?;
                let mut distinct: Vec<String> = Vec::new();
                for row in 0..batch.num_rows() {
                    if let Some(s) = batch.column(0).value(row).as_str() {
                        if !distinct.iter().any(|d| d == s) {
                            distinct.push(s.to_string());
                            if distinct.len() > max_distinct {
                                break;
                            }
                        }
                    }
                }
                if distinct.len() > max_distinct {
                    continue;
                }
                for v in distinct {
                    map.entry(v.to_lowercase()).or_default().push(ValueSite {
                        table: table.name.clone(),
                        column: field.name.clone(),
                        stored: v,
                    });
                }
            }
        }
        Ok(ValueIndex { map })
    }

    /// Candidate sites for a literal mentioned in a question.
    pub fn lookup(&self, text: &str) -> &[ValueSite] {
        self.map
            .get(&text.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_storage::InMemoryObjectStore;
    use pixels_workload::{load_tpch, TpchConfig};

    #[test]
    fn indexes_low_cardinality_columns() {
        let catalog = Catalog::new();
        let store = InMemoryObjectStore::new();
        load_tpch(
            &catalog,
            &store,
            "tpch",
            &TpchConfig {
                scale: 0.001,
                ..Default::default()
            },
        )
        .unwrap();
        let idx = ValueIndex::build(&catalog, &store, "tpch", 50).unwrap();
        assert!(!idx.is_empty());

        let sites = idx.lookup("germany");
        assert!(
            sites
                .iter()
                .any(|s| s.table == "nation" && s.column == "n_name"),
            "{sites:?}"
        );
        assert_eq!(sites[0].stored, "GERMANY", "original spelling preserved");

        let sites = idx.lookup("BUILDING");
        assert!(sites.iter().any(|s| s.column == "c_mktsegment"));

        // High-cardinality columns (customer names) are not indexed.
        assert!(idx.lookup("Customer#000000001").is_empty());
    }
}
