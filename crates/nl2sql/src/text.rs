//! Tokenization and lexical matching utilities shared by the schema pruner
//! and the translator.

/// One token of a natural-language question.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Lowercased text with punctuation stripped (quoted strings keep their
    /// inner text verbatim, lowercased).
    pub text: String,
    /// Numeric value when the token is a number.
    pub number: Option<f64>,
    /// True when the token was quoted in the question ('...' or "...").
    pub quoted: bool,
}

/// Split a question into tokens, keeping quoted strings intact.
pub fn tokenize(question: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = question.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\'' || c == '"' {
            let quote = c;
            chars.next();
            let mut s = String::new();
            for ch in chars.by_ref() {
                if ch == quote {
                    break;
                }
                s.push(ch);
            }
            toks.push(Tok {
                text: s.to_lowercase(),
                number: None,
                quoted: true,
            });
        } else if c.is_alphanumeric() || c == '.' || c == '-' || c == '_' {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_alphanumeric() || ch == '.' || ch == '_' || (ch == '-' && s.is_empty()) {
                    s.push(ch);
                    chars.next();
                } else {
                    break;
                }
            }
            if s.is_empty() {
                chars.next();
                continue;
            }
            let number = s.parse::<f64>().ok();
            toks.push(Tok {
                text: s.to_lowercase(),
                number,
                quoted: false,
            });
        } else {
            chars.next();
        }
    }
    toks
}

/// English stopwords ignored during matching.
pub fn is_stopword(word: &str) -> bool {
    matches!(
        word,
        "the"
            | "a"
            | "an"
            | "of"
            | "in"
            | "on"
            | "at"
            | "to"
            | "for"
            | "and"
            | "or"
            | "is"
            | "are"
            | "was"
            | "were"
            | "be"
            | "been"
            | "do"
            | "does"
            | "did"
            | "what"
            | "which"
            | "who"
            | "show"
            | "me"
            | "list"
            | "give"
            | "find"
            | "all"
            | "each"
            | "with"
            | "that"
            | "have"
            | "has"
            | "had"
            | "please"
            | "their"
            | "there"
            | "it"
            | "its"
            | "how"
            | "many"
            | "much"
            | "per"
            | "by"
            | "from"
            | "than"
            | "then"
    )
}

/// Light stemming: drop plural/possessive suffixes.
pub fn stem(word: &str) -> String {
    let w = word.trim_end_matches('\'');
    if let Some(base) = w.strip_suffix("ies") {
        return format!("{base}y");
    }
    if w.len() > 3 {
        if let Some(base) = w.strip_suffix("es") {
            if base.ends_with('s') || base.ends_with('x') || base.ends_with("ch") {
                return base.to_string();
            }
        }
        if let Some(base) = w.strip_suffix('s') {
            if !base.ends_with('s') && !base.ends_with('u') {
                return base.to_string();
            }
        }
    }
    w.to_string()
}

/// Split an identifier (snake_case or camelCase) into lowercase parts,
/// dropping single-letter prefixes like the `l_` in `l_shipdate`.
pub fn identifier_parts(name: &str) -> Vec<String> {
    let mut parts = Vec::new();
    for raw in name.split(['_', '.', ' ']) {
        if raw.is_empty() {
            continue;
        }
        // Split camelCase transitions.
        let mut cur = String::new();
        for c in raw.chars() {
            if c.is_uppercase() && !cur.is_empty() {
                parts.push(cur.to_lowercase());
                cur = String::new();
            }
            cur.push(c);
        }
        if !cur.is_empty() {
            parts.push(cur.to_lowercase());
        }
    }
    let single = parts.len() == 1;
    parts.retain(|p| p.len() > 1 || single);
    parts
}

/// Score the lexical affinity between a question word and an identifier
/// part: 1.0 exact (after stemming), 0.7 prefix containment, 0 otherwise.
pub fn word_affinity(question_word: &str, ident_part: &str) -> f64 {
    let q = stem(question_word);
    let p = stem(ident_part);
    if q == p {
        return 1.0;
    }
    if q.len() >= 4 && p.len() >= 4 && (q.starts_with(&p) || p.starts_with(&q)) {
        return 0.7;
    }
    // Compound identifiers: "price" inside "totalprice".
    if q.len() >= 4 && p.len() > q.len() && p.contains(&q) {
        return 0.6;
    }
    // Shared 4-char stem: "shipped" ~ "shipdate".
    if q.len() >= 4 && p.len() >= 4 && q.as_bytes()[..4] == p.as_bytes()[..4] {
        return 0.5;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_handles_quotes_and_numbers() {
        let toks = tokenize("How many orders from 'UNITED STATES' over 42.5?");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "how",
                "many",
                "orders",
                "from",
                "united states",
                "over",
                "42.5"
            ]
        );
        assert!(toks[4].quoted);
        assert_eq!(toks[6].number, Some(42.5));
    }

    #[test]
    fn stemming() {
        assert_eq!(stem("orders"), "order");
        assert_eq!(stem("countries"), "country");
        assert_eq!(stem("status"), "status");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("price"), "price");
    }

    #[test]
    fn identifier_splitting() {
        assert_eq!(identifier_parts("l_shipdate"), vec!["shipdate"]);
        assert_eq!(identifier_parts("o_totalprice"), vec!["totalprice"]);
        assert_eq!(identifier_parts("latency_ms"), vec!["latency", "ms"]);
        assert_eq!(identifier_parts("userAgent"), vec!["user", "agent"]);
    }

    #[test]
    fn affinity() {
        assert_eq!(word_affinity("orders", "order"), 1.0);
        assert!(word_affinity("totals", "totalprice") > 0.0);
        assert_eq!(word_affinity("cat", "dog"), 0.0);
    }

    #[test]
    fn stopwords() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("revenue"));
    }
}
