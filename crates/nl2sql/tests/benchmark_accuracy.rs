//! End-to-end accuracy of the built-in text-to-SQL service on the
//! Spider-style suite — the reproduction of the paper's ">80% single-turn
//! accuracy" claim shape (experiment E7).

use pixels_catalog::Catalog;
use pixels_nl2sql::{evaluate, CodesService, TextToSqlService, CASES};
use pixels_storage::InMemoryObjectStore;
use pixels_workload::{load_tpch, load_weblog, TpchConfig, WeblogConfig};

fn setup() -> (pixels_catalog::CatalogRef, pixels_storage::ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 2048,
            files_per_table: 1,
        },
    )
    .unwrap();
    load_weblog(
        &catalog,
        store.as_ref(),
        "logs",
        &WeblogConfig {
            rows: 3000,
            seed: 7,
            row_group_rows: 1024,
        },
    )
    .unwrap();
    (catalog, store)
}

#[test]
fn execution_accuracy_above_80_percent() {
    let (catalog, store) = setup();
    let service = CodesService::new(catalog.clone(), store.clone());
    let report = evaluate(&service, &catalog, store, CASES).unwrap();
    for c in &report.cases {
        eprintln!(
            "{:>28}  exact={} exec={} sql={:?} err={:?}",
            c.id, c.exact_match, c.execution_match, c.generated_sql, c.error
        );
    }
    let acc = report.execution_accuracy();
    assert!(
        acc >= 0.8,
        "execution accuracy {acc:.2} below the paper's 80% bar ({}/{} cases)",
        report.execution_matches(),
        report.total()
    );
    // Exact match is strictly harder.
    assert!(report.exact_matches() <= report.execution_matches() + 5);
}

#[test]
fn translation_is_single_turn_and_fast() {
    let (catalog, store) = setup();
    let service = CodesService::new(catalog, store);
    let start = std::time::Instant::now();
    let t = service
        .translate("tpch", "how many orders per order status")
        .unwrap();
    let elapsed = start.elapsed();
    assert!(t.sql.to_uppercase().contains("GROUP BY"));
    assert!(
        elapsed.as_millis() < 2000,
        "single-turn translation should be interactive, took {elapsed:?}"
    );
}

#[test]
fn deterministic_translations() {
    let (catalog, store) = setup();
    let service = CodesService::new(catalog, store);
    let a = service
        .translate("tpch", "total quantity per return flag")
        .unwrap();
    let b = service
        .translate("tpch", "total quantity per return flag")
        .unwrap();
    assert_eq!(a.sql, b.sql);
}
