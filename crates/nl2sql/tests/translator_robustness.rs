//! Robustness of the text-to-SQL service: arbitrary input must never panic,
//! and whenever the translator returns SQL, that SQL must parse and (over a
//! real catalog) either plan cleanly or fail with a proper error.

use pixels_catalog::Catalog;
use pixels_nl2sql::{CodesService, TextToSqlService};
use pixels_storage::InMemoryObjectStore;
use pixels_workload::{load_tpch, TpchConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn service() -> (Arc<CodesService>, pixels_catalog::CatalogRef) {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.0003,
            seed: 5,
            row_group_rows: 512,
            files_per_table: 1,
        },
    )
    .unwrap();
    (Arc::new(CodesService::new(catalog.clone(), store)), catalog)
}

// Build the service once; proptest runs many cases.
fn with_service(f: impl FnOnce(&CodesService, &Catalog)) {
    thread_local! {
        static SVC: (Arc<CodesService>, pixels_catalog::CatalogRef) = service();
    }
    SVC.with(|(s, c)| f(s, c));
}

/// Question-shaped random text: mixtures of schema words, filler, numbers,
/// and junk.
fn question_strategy() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        prop::sample::select(vec![
            "how",
            "many",
            "orders",
            "customers",
            "total",
            "average",
            "price",
            "per",
            "top",
            "status",
            "show",
            "the",
            "of",
            "with",
            "more",
            "than",
            "in",
            "1995",
            "highest",
            "balance",
            "nation",
            "from",
            "germany",
            "quantity",
            "shipped",
            "by",
            "distinct",
        ])
        .prop_map(|s| s.to_string()),
        "[a-zA-Z0-9']{1,10}",
        (0..100_000i64).prop_map(|n| n.to_string()),
    ];
    prop::collection::vec(word, 0..14).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn translator_never_panics_and_output_is_valid_sql(q in question_strategy()) {
        with_service(|svc, catalog| {
            match svc.translate("tpch", &q) {
                Err(_) => {} // a clean error is fine
                Ok(t) => {
                    // Generated SQL must parse...
                    let parsed = pixels_sql::parse_query(&t.sql);
                    assert!(parsed.is_ok(), "generated SQL does not parse: {} <- {q:?}", t.sql);
                    // ...and bind/plan against the real catalog (the
                    // translator only references real schema elements).
                    let planned = pixels_planner::plan_query(catalog, "tpch", &t.sql);
                    assert!(
                        planned.is_ok(),
                        "generated SQL does not plan: {} ({:?}) <- {q:?}",
                        t.sql,
                        planned.err()
                    );
                    assert!((0.0..=1.0).contains(&t.confidence));
                }
            }
        });
    }

    #[test]
    fn json_api_never_panics(q in "\\PC{0,60}") {
        with_service(|svc, _| {
            let req = pixels_common::Json::object([
                ("question", pixels_common::Json::string(q.clone())),
                ("database", pixels_common::Json::string("tpch")),
            ])
            .to_compact_string();
            let resp = svc.handle_json(&req);
            assert!(pixels_common::Json::parse(&resp).is_ok());
        });
    }
}
