//! Trace-instrumentation tests: one query yields one span tree covering
//! every operator and every storage access, with byte attribution that
//! reconciles exactly with the billed `bytes_scanned`.

use pixels_catalog::Catalog;
use pixels_exec::{execute, ExecContext};
use pixels_obs::{Trace, TraceCtx};
use pixels_planner::plan_query;
use pixels_storage::InMemoryObjectStore;
use pixels_workload::{load_tpch, TpchConfig};
use std::sync::Arc;

fn setup() -> (Arc<Catalog>, pixels_storage::ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 7,
            row_group_rows: 256,
            files_per_table: 1,
        },
    )
    .unwrap();
    (catalog, store)
}

#[test]
fn span_tree_covers_operators_and_bytes_reconcile() {
    let (catalog, store) = setup();
    let sql = "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
               WHERE o_totalprice > 1000 GROUP BY o_orderstatus ORDER BY n DESC";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();

    let trace = Trace::wall();
    let ctx = ExecContext::new(store).with_trace(TraceCtx::root(&trace));
    execute(&plan, &ctx).unwrap();

    let spans = trace.finished_spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["scan", "hash_aggregate", "sort", "storage_open", "morsel"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }

    // Every byte billed to the query is attributed to exactly one span
    // (storage opens bill footer bytes, morsels bill chunk bytes).
    let billed = ctx.metrics.snapshot().bytes_scanned;
    assert!(billed > 0);
    assert_eq!(trace.attr_sum("bytes") as u64, billed);

    // Operator spans nest: the scan is a descendant of the aggregate, and
    // morsels are children of the scan.
    let json = trace.to_json();
    let rendered = json.to_compact_string();
    assert!(rendered.contains("\"name\":\"morsel\""), "{rendered}");
    let scan = spans.iter().find(|s| s.name == "scan").unwrap();
    let morsels: Vec<_> = spans.iter().filter(|s| s.name == "morsel").collect();
    assert!(!morsels.is_empty());
    for m in &morsels {
        assert_eq!(m.parent, Some(scan.id), "morsel must attach to the scan");
    }
}

#[test]
fn parallel_and_serial_traces_attribute_identical_bytes() {
    let (catalog, store) = setup();
    let sql = "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 25";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();

    let mut byte_sums = Vec::new();
    for parallelism in [1usize, 4] {
        let trace = Trace::wall();
        let ctx = ExecContext::new(store.clone())
            .with_parallelism(parallelism)
            .with_trace(TraceCtx::root(&trace));
        execute(&plan, &ctx).unwrap();
        assert_eq!(
            trace.attr_sum("bytes") as u64,
            ctx.metrics.snapshot().bytes_scanned
        );
        byte_sums.push(trace.attr_sum("bytes") as u64);
    }
    // Thread interleaving must not change attribution, only span timing.
    // (Footer opens bill only on the first open per context: both runs use
    // private caches, so the sums match exactly.)
    assert_eq!(byte_sums[0], byte_sums[1]);
}

#[test]
fn cross_thread_children_never_yield_negative_self_time() {
    let (catalog, store) = setup();
    let sql = "SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();

    // A parallel scan opens morsel spans from worker threads via
    // `ExecContext::under(&scan_span)` — exactly the cross-thread parenting
    // the self-time sweep must survive. Wall-clock overlap between sibling
    // morsels on different workers must clip, never go negative.
    let trace = Trace::wall();
    let ctx = ExecContext::new(store)
        .with_parallelism(4)
        .with_trace(TraceCtx::root(&trace));
    execute(&plan, &ctx).unwrap();

    let spans = trace.finished_spans();
    let selfs = pixels_obs::selftime::self_times(&spans);
    assert_eq!(selfs.len(), spans.len(), "every span gets a self-time");
    for s in &spans {
        let self_us = selfs[&s.id];
        let duration = s.end_us.saturating_sub(s.start_us);
        assert!(
            self_us <= duration,
            "span {} self {self_us}us exceeds duration {duration}us",
            s.name
        );
    }
    // The scan's workers run concurrently, so its children's summed wall
    // time may exceed the scan's own duration — clipping must still leave
    // self-time within bounds (checked above) and the rollup table renders.
    let table = pixels_obs::render_operator_table(&spans);
    assert!(table.contains("scan"), "{table}");
    assert!(table.contains("morsel"), "{table}");
}

#[test]
fn disabled_trace_produces_no_spans_and_same_results() {
    let (catalog, store) = setup();
    let sql = "SELECT COUNT(*) AS n FROM orders";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();

    let traced = Trace::wall();
    let ctx_on = ExecContext::new(store.clone()).with_trace(TraceCtx::root(&traced));
    let ctx_off = ExecContext::new(store);
    let a = execute(&plan, &ctx_on).unwrap();
    let b = execute(&plan, &ctx_off).unwrap();
    assert_eq!(a, b, "tracing must not change results");
    assert!(!traced.finished_spans().is_empty());
    assert!(!ctx_off.trace.enabled());
    assert_eq!(
        ctx_on.metrics.snapshot().bytes_scanned,
        ctx_off.metrics.snapshot().bytes_scanned,
        "tracing must not change billing"
    );
}
