//! End-to-end SQL correctness tests: parse → bind → optimize → execute over
//! real Pixels files in an in-memory object store.

use pixels_catalog::{Catalog, CreateTable, ForeignKey};
use pixels_common::{DataType, Field, RecordBatch, Schema, Value};
use pixels_exec::{run_query, ExecContext};
use pixels_storage::{InMemoryObjectStore, ObjectStoreRef, PixelsReader, PixelsWriter};
use std::sync::Arc;

fn v_i(v: i64) -> Value {
    Value::Int64(v)
}
fn v_f(v: f64) -> Value {
    Value::Float64(v)
}
fn v_s(s: &str) -> Value {
    Value::Utf8(s.into())
}

/// A small sales database: customers and orders with known contents.
fn setup() -> (Arc<Catalog>, ObjectStoreRef) {
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    let catalog = Catalog::shared();

    let customer_schema = Arc::new(Schema::new(vec![
        Field::required("c_id", DataType::Int64),
        Field::required("c_name", DataType::Utf8),
        Field::required("c_nation", DataType::Utf8),
    ]));
    let order_schema = Arc::new(Schema::new(vec![
        Field::required("o_id", DataType::Int64),
        Field::required("o_cid", DataType::Int64),
        Field::required("o_total", DataType::Float64),
        Field::required("o_status", DataType::Utf8),
        Field::nullable("o_note", DataType::Utf8),
        Field::required("o_date", DataType::Date),
    ]));

    catalog
        .create_table(CreateTable {
            database: "sales".into(),
            name: "customer".into(),
            schema: customer_schema.clone(),
            primary_key: Some("c_id".into()),
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    catalog
        .create_table(CreateTable {
            database: "sales".into(),
            name: "orders".into(),
            schema: order_schema.clone(),
            primary_key: Some("o_id".into()),
            foreign_keys: vec![ForeignKey {
                column: "o_cid".into(),
                ref_table: "customer".into(),
                ref_column: "c_id".into(),
            }],
            comment: None,
        })
        .unwrap();

    let customers = RecordBatch::from_rows(
        customer_schema.clone(),
        &[
            vec![v_i(1), v_s("alice"), v_s("FR")],
            vec![v_i(2), v_s("bob"), v_s("DE")],
            vec![v_i(3), v_s("carol"), v_s("FR")],
            vec![v_i(4), v_s("dave"), v_s("US")],
        ],
    )
    .unwrap();
    let d = |s: &str| Value::Date(pixels_common::value::parse_date(s).unwrap());
    let orders = RecordBatch::from_rows(
        order_schema.clone(),
        &[
            vec![
                v_i(100),
                v_i(1),
                v_f(50.0),
                v_s("OPEN"),
                Value::Null,
                d("2024-01-05"),
            ],
            vec![
                v_i(101),
                v_i(1),
                v_f(75.5),
                v_s("DONE"),
                v_s("gift"),
                d("2024-02-11"),
            ],
            vec![
                v_i(102),
                v_i(2),
                v_f(20.0),
                v_s("DONE"),
                Value::Null,
                d("2024-02-20"),
            ],
            vec![
                v_i(103),
                v_i(3),
                v_f(10.0),
                v_s("OPEN"),
                v_s("rush"),
                d("2024-03-02"),
            ],
            vec![
                v_i(104),
                v_i(3),
                v_f(90.0),
                v_s("DONE"),
                Value::Null,
                d("2024-03-15"),
            ],
            vec![
                v_i(105),
                v_i(9),
                v_f(5.0),
                v_s("LOST"),
                Value::Null,
                d("2024-04-01"),
            ],
        ],
    )
    .unwrap();

    for (name, schema, batch) in [
        ("customer", customer_schema, customers),
        ("orders", order_schema, orders),
    ] {
        let path = format!("sales/{name}/0.pxl");
        let mut w = PixelsWriter::with_row_group_rows(store.as_ref(), &path, schema.clone(), 2);
        w.write_batch(&batch).unwrap();
        let size = w.finish().unwrap();
        let reader = PixelsReader::open(store.as_ref(), &path).unwrap();
        catalog
            .register_data_file("sales", name, &path, reader.footer(), size)
            .unwrap();
    }
    (catalog, store)
}

fn run(sql: &str) -> RecordBatch {
    let (catalog, store) = setup();
    run_query(&catalog, store, "sales", sql).unwrap()
}

fn rows(sql: &str) -> Vec<Vec<Value>> {
    run(sql).to_rows()
}

#[test]
fn select_star() {
    let b = run("SELECT * FROM customer");
    assert_eq!(b.num_rows(), 4);
    assert_eq!(b.num_columns(), 3);
    assert_eq!(b.schema().field(0).name, "c_id");
}

#[test]
fn projection_and_alias() {
    let r = rows("SELECT c_name AS who, c_id * 10 AS tens FROM customer WHERE c_id <= 2");
    assert_eq!(
        r,
        vec![vec![v_s("alice"), v_i(10)], vec![v_s("bob"), v_i(20)],]
    );
}

#[test]
fn where_with_and_or() {
    let r = rows("SELECT o_id FROM orders WHERE o_total > 40 AND o_status = 'DONE' OR o_id = 103");
    let ids: Vec<i64> = r.iter().map(|x| x[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![101, 103, 104]);
}

#[test]
fn is_null_and_not_null() {
    assert_eq!(
        rows("SELECT COUNT(*) FROM orders WHERE o_note IS NULL"),
        vec![vec![v_i(4)]]
    );
    assert_eq!(
        rows("SELECT COUNT(*) FROM orders WHERE o_note IS NOT NULL"),
        vec![vec![v_i(2)]]
    );
}

#[test]
fn like_and_in() {
    assert_eq!(
        rows("SELECT c_name FROM customer WHERE c_name LIKE '%a%' AND c_nation IN ('FR', 'US')"),
        vec![vec![v_s("alice")], vec![v_s("carol")], vec![v_s("dave")]]
    );
}

#[test]
fn between_dates() {
    let r = rows(
        "SELECT o_id FROM orders WHERE o_date BETWEEN DATE '2024-02-01' AND DATE '2024-03-01'",
    );
    let ids: Vec<i64> = r.iter().map(|x| x[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![101, 102]);
}

#[test]
fn extract_year_month() {
    let r = rows("SELECT o_id, EXTRACT(MONTH FROM o_date) FROM orders WHERE EXTRACT(YEAR FROM o_date) = 2024 ORDER BY o_id LIMIT 2");
    assert_eq!(r, vec![vec![v_i(100), v_i(1)], vec![v_i(101), v_i(2)]]);
}

#[test]
fn global_aggregates() {
    let r =
        rows("SELECT COUNT(*), SUM(o_total), MIN(o_total), MAX(o_total), AVG(o_total) FROM orders");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], v_i(6));
    assert_eq!(r[0][1], v_f(250.5));
    assert_eq!(r[0][2], v_f(5.0));
    assert_eq!(r[0][3], v_f(90.0));
    assert_eq!(r[0][4], v_f(250.5 / 6.0));
}

#[test]
fn aggregate_empty_input() {
    let r = rows("SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_id > 9999");
    assert_eq!(r, vec![vec![v_i(0), Value::Null]]);
}

#[test]
fn group_by_with_having_and_order() {
    let r = rows(
        "SELECT o_status, COUNT(*) AS n, SUM(o_total) AS total FROM orders \
         GROUP BY o_status HAVING COUNT(*) > 1 ORDER BY total DESC",
    );
    assert_eq!(
        r,
        vec![
            vec![v_s("DONE"), v_i(3), v_f(185.5)],
            vec![v_s("OPEN"), v_i(2), v_f(60.0)],
        ]
    );
}

#[test]
fn group_by_expression() {
    let r = rows(
        "SELECT EXTRACT(MONTH FROM o_date) AS m, COUNT(*) FROM orders GROUP BY EXTRACT(MONTH FROM o_date) ORDER BY m",
    );
    assert_eq!(
        r,
        vec![
            vec![v_i(1), v_i(1)],
            vec![v_i(2), v_i(2)],
            vec![v_i(3), v_i(2)],
            vec![v_i(4), v_i(1)],
        ]
    );
}

#[test]
fn count_distinct() {
    let r = rows("SELECT COUNT(DISTINCT c_nation) FROM customer");
    assert_eq!(r, vec![vec![v_i(3)]]);
    let r = rows("SELECT COUNT(DISTINCT o_cid), COUNT(o_cid) FROM orders");
    assert_eq!(r, vec![vec![v_i(4), v_i(6)]]);
}

#[test]
fn inner_join() {
    let r = rows(
        "SELECT c_name, o_total FROM customer JOIN orders ON c_id = o_cid \
         WHERE o_status = 'DONE' ORDER BY o_total",
    );
    assert_eq!(
        r,
        vec![
            vec![v_s("bob"), v_f(20.0)],
            vec![v_s("alice"), v_f(75.5)],
            vec![v_s("carol"), v_f(90.0)],
        ]
    );
}

#[test]
fn comma_join_becomes_equi_join() {
    // FROM a, b WHERE a.x = b.y must execute as a hash join and return the
    // same rows as the explicit JOIN.
    let explicit =
        rows("SELECT c_name, o_id FROM customer JOIN orders ON c_id = o_cid ORDER BY o_id");
    let comma = rows("SELECT c_name, o_id FROM customer, orders WHERE c_id = o_cid ORDER BY o_id");
    assert_eq!(explicit, comma);
    assert_eq!(explicit.len(), 5, "order 105 references a missing customer");
}

#[test]
fn left_join_null_extends() {
    let r = rows(
        "SELECT c_name, o_id FROM customer LEFT JOIN orders ON c_id = o_cid AND o_status = 'OPEN' \
         ORDER BY c_name, o_id",
    );
    assert_eq!(
        r,
        vec![
            vec![v_s("alice"), v_i(100)],
            vec![v_s("bob"), Value::Null],
            vec![v_s("carol"), v_i(103)],
            vec![v_s("dave"), Value::Null],
        ]
    );
}

#[test]
fn right_join() {
    let r =
        rows("SELECT c_name, o_id FROM customer RIGHT JOIN orders ON c_id = o_cid ORDER BY o_id");
    assert_eq!(r.len(), 6);
    // Order 105 (customer 9) has no match: c_name is NULL.
    assert_eq!(r[5], vec![Value::Null, v_i(105)]);
}

#[test]
fn cross_join_counts() {
    let r = rows("SELECT COUNT(*) FROM customer CROSS JOIN orders");
    assert_eq!(r, vec![vec![v_i(24)]]);
}

#[test]
fn join_with_aggregation() {
    let r = rows(
        "SELECT c_nation, SUM(o_total) AS t FROM customer JOIN orders ON c_id = o_cid \
         GROUP BY c_nation ORDER BY t DESC",
    );
    assert_eq!(
        r,
        vec![vec![v_s("FR"), v_f(225.5)], vec![v_s("DE"), v_f(20.0)],]
    );
}

#[test]
fn order_by_multiple_keys_and_desc() {
    let r = rows("SELECT o_status, o_total FROM orders ORDER BY o_status, o_total DESC");
    assert_eq!(r[0], vec![v_s("DONE"), v_f(90.0)]);
    assert_eq!(r[2], vec![v_s("DONE"), v_f(20.0)]);
    assert_eq!(r[3], vec![v_s("LOST"), v_f(5.0)]);
}

#[test]
fn order_by_hidden_column() {
    // o_date is not in the select list.
    let r = rows("SELECT o_id FROM orders ORDER BY o_date DESC LIMIT 2");
    assert_eq!(r, vec![vec![v_i(105)], vec![v_i(104)]]);
}

#[test]
fn limit_and_offset() {
    let r = rows("SELECT o_id FROM orders ORDER BY o_id LIMIT 2 OFFSET 3");
    assert_eq!(r, vec![vec![v_i(103)], vec![v_i(104)]]);
    let r = rows("SELECT o_id FROM orders ORDER BY o_id LIMIT 0");
    assert!(r.is_empty());
}

#[test]
fn distinct_rows() {
    let r = rows("SELECT DISTINCT c_nation FROM customer ORDER BY c_nation");
    assert_eq!(r, vec![vec![v_s("DE")], vec![v_s("FR")], vec![v_s("US")]]);
}

#[test]
fn case_expression() {
    let r = rows(
        "SELECT o_id, CASE WHEN o_total >= 50 THEN 'big' ELSE 'small' END AS size \
         FROM orders ORDER BY o_id LIMIT 3",
    );
    assert_eq!(
        r,
        vec![
            vec![v_i(100), v_s("big")],
            vec![v_i(101), v_s("big")],
            vec![v_i(102), v_s("small")],
        ]
    );
}

#[test]
fn scalar_functions_in_query() {
    let r = rows("SELECT UPPER(c_name), LENGTH(c_name) FROM customer WHERE c_id = 1");
    assert_eq!(r, vec![vec![v_s("ALICE"), v_i(5)]]);
    let r = rows("SELECT SUBSTR(c_name, 1, 3) FROM customer WHERE c_id = 3");
    assert_eq!(r, vec![vec![v_s("car")]]);
    let r = rows("SELECT COALESCE(o_note, 'none') FROM orders WHERE o_id = 100");
    assert_eq!(r, vec![vec![v_s("none")]]);
}

#[test]
fn cast_in_query() {
    let r = rows("SELECT CAST(o_total AS BIGINT) FROM orders WHERE o_id = 101");
    assert_eq!(r, vec![vec![v_i(75)]]);
}

#[test]
fn derived_table() {
    let r = rows(
        "SELECT nation, cnt FROM (SELECT c_nation AS nation, COUNT(*) AS cnt \
         FROM customer GROUP BY c_nation) AS sub WHERE cnt > 1",
    );
    assert_eq!(r, vec![vec![v_s("FR"), v_i(2)]]);
}

#[test]
fn select_without_from() {
    assert_eq!(rows("SELECT 1 + 2 AS x"), vec![vec![v_i(3)]]);
    assert_eq!(rows("SELECT 'a' || 'b'"), vec![vec![v_s("ab")]]);
}

#[test]
fn date_arithmetic_in_query() {
    let r = rows("SELECT o_id FROM orders WHERE o_date < DATE '2024-03-01' + 5 ORDER BY o_id");
    let ids: Vec<i64> = r.iter().map(|x| x[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![100, 101, 102, 103]);
}

#[test]
fn qualified_columns_and_aliases() {
    let r = rows(
        "SELECT c.c_name, o.o_id FROM customer AS c JOIN orders AS o ON c.c_id = o.o_cid \
         WHERE c.c_nation = 'DE'",
    );
    assert_eq!(r, vec![vec![v_s("bob"), v_i(102)]]);
}

#[test]
fn group_by_ordinal() {
    let r = rows("SELECT c_nation, COUNT(*) FROM customer GROUP BY 1 ORDER BY 1");
    assert_eq!(r.len(), 3);
    assert_eq!(r[1], vec![v_s("FR"), v_i(2)]);
}

#[test]
fn errors_surface_properly() {
    let (catalog, store) = setup();
    for (sql, kind) in [
        ("SELECT nope FROM customer", "plan"),
        ("SELECT * FROM missing_table", "not_found"),
        ("SELECT c_id FROM customer WHERE c_name > 5", "plan"),
        ("SELECT c_name FROM customer GROUP BY c_nation", "plan"),
        ("SELECT SUM(c_name) FROM customer", "plan"),
        ("SELECT 1 +", "parse"),
    ] {
        let err = run_query(&catalog, store.clone(), "sales", sql).unwrap_err();
        assert_eq!(err.kind(), kind, "{sql} -> {err}");
    }
}

#[test]
fn runtime_division_by_zero() {
    let (catalog, store) = setup();
    let err = run_query(&catalog, store, "sales", "SELECT c_id / 0 FROM customer").unwrap_err();
    assert_eq!(err.kind(), "exec");
}

#[test]
fn projection_pruning_reduces_bytes_scanned() {
    let (catalog, store) = setup();
    let plan_narrow =
        pixels_planner::plan_query(&catalog, "sales", "SELECT o_id FROM orders").unwrap();
    let plan_wide = pixels_planner::plan_query(&catalog, "sales", "SELECT * FROM orders").unwrap();

    let ctx1 = ExecContext::new(store.clone());
    pixels_exec::execute(&plan_narrow, &ctx1).unwrap();
    let narrow = ctx1.metrics.snapshot().bytes_scanned;

    let ctx2 = ExecContext::new(store);
    pixels_exec::execute(&plan_wide, &ctx2).unwrap();
    let wide = ctx2.metrics.snapshot().bytes_scanned;

    assert!(
        narrow < wide,
        "narrow scan should read fewer bytes: {narrow} vs {wide}"
    );
}

#[test]
fn zone_map_pruning_skips_row_groups() {
    let (catalog, store) = setup();
    // Row groups of 2 rows; o_id = 105 lives in the last group.
    let plan = pixels_planner::plan_query(
        &catalog,
        "sales",
        "SELECT o_total FROM orders WHERE o_id = 105",
    )
    .unwrap();
    let ctx = ExecContext::new(store);
    let batches = pixels_exec::execute(&plan, &ctx).unwrap();
    let all = RecordBatch::concat(&batches).unwrap();
    assert_eq!(all.num_rows(), 1);
    let m = ctx.metrics.snapshot();
    assert_eq!(m.row_groups_total, 3);
    assert_eq!(m.row_groups_read, 1, "zone maps should prune 2 of 3 groups");
}

#[test]
fn explain_physical_plan_shows_pushdown() {
    let (catalog, _) = setup();
    let plan = pixels_planner::plan_query(
        &catalog,
        "sales",
        "SELECT c_name FROM customer WHERE c_id > 2",
    )
    .unwrap();
    let text = plan.explain();
    assert!(text.contains("PixelsScan"), "{text}");
    assert!(text.contains("zone_preds=1"), "{text}");
}

#[test]
fn split_plan_produces_identical_results() {
    use pixels_exec::{execute_collect, materialize};
    let (catalog, store) = setup();
    let sql = "SELECT c_nation, SUM(o_total) AS t FROM customer JOIN orders ON c_id = o_cid \
               GROUP BY c_nation ORDER BY t DESC LIMIT 1";
    let plan = pixels_planner::plan_query(&catalog, "sales", sql).unwrap();

    // Direct execution.
    let ctx = ExecContext::new(store.clone());
    let direct = execute_collect(&plan, &ctx).unwrap();

    // Split execution: sub-plan materialized (as CF workers would), top plan
    // reads it back.
    let split = pixels_planner::split_for_acceleration(&plan, "intermediate/q1.pxl").unwrap();
    let ctx_sub = ExecContext::new(store.clone());
    let sub_result = pixels_exec::execute(&split.sub_plan, &ctx_sub).unwrap();
    materialize(
        store.as_ref(),
        &split.mv_path,
        split.sub_plan.schema(),
        &sub_result,
    )
    .unwrap();
    let ctx_top = ExecContext::new(store);
    let via_split = execute_collect(&split.top_plan, &ctx_top).unwrap();

    assert_eq!(direct, via_split);
    assert_eq!(direct.num_rows(), 1);
    assert_eq!(direct.row(0)[0], v_s("FR"));
}
