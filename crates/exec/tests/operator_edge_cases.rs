//! Edge-case behaviour of executor operators via end-to-end SQL: NULL
//! ordering, empty inputs, boundary limits, and join corner cases.

use pixels_catalog::{Catalog, CreateTable};
use pixels_common::{DataType, Field, RecordBatch, Schema, Value};
use pixels_exec::run_query;
use pixels_storage::{InMemoryObjectStore, ObjectStoreRef, PixelsReader, PixelsWriter};
use std::sync::Arc;

fn v_i(v: i64) -> Value {
    Value::Int64(v)
}

fn setup(rows: &[(Option<i64>, Option<&str>)]) -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    let schema = Arc::new(Schema::new(vec![
        Field::nullable("a", DataType::Int64),
        Field::nullable("s", DataType::Utf8),
    ]));
    catalog
        .create_table(CreateTable {
            database: "d".into(),
            name: "t".into(),
            schema: schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .unwrap();
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(a, s)| {
            vec![
                a.map_or(Value::Null, Value::Int64),
                s.map_or(Value::Null, |x| Value::Utf8(x.into())),
            ]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema.clone(), &data).unwrap();
    let mut w = PixelsWriter::with_row_group_rows(store.as_ref(), "d/t/0.pxl", schema, 4);
    w.write_batch(&batch).unwrap();
    let size = w.finish().unwrap();
    let reader = PixelsReader::open(store.as_ref(), "d/t/0.pxl").unwrap();
    catalog
        .register_data_file("d", "t", "d/t/0.pxl", reader.footer(), size)
        .unwrap();
    (catalog, store)
}

#[test]
fn nulls_order_first_ascending_last_descending() {
    let (c, s) = setup(&[(Some(2), None), (None, None), (Some(1), None)]);
    let asc = run_query(&c, s.clone(), "d", "SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(
        asc.to_rows()
            .iter()
            .map(|r| r[0].clone())
            .collect::<Vec<_>>(),
        vec![Value::Null, v_i(1), v_i(2)]
    );
    let desc = run_query(&c, s, "d", "SELECT a FROM t ORDER BY a DESC").unwrap();
    assert_eq!(
        desc.to_rows()
            .iter()
            .map(|r| r[0].clone())
            .collect::<Vec<_>>(),
        vec![v_i(2), v_i(1), Value::Null]
    );
}

#[test]
fn topk_matches_full_sort_with_nulls() {
    let rows: Vec<(Option<i64>, Option<&str>)> = (0..40)
        .map(|i| {
            if i % 7 == 0 {
                (None, None)
            } else {
                (Some((i * 13) % 17), None)
            }
        })
        .collect();
    let (c, s) = setup(&rows);
    let full = run_query(&c, s.clone(), "d", "SELECT a FROM t ORDER BY a DESC").unwrap();
    let topk = run_query(&c, s, "d", "SELECT a FROM t ORDER BY a DESC LIMIT 5").unwrap();
    assert_eq!(topk.to_rows(), full.to_rows()[..5].to_vec());
}

#[test]
fn offset_beyond_end_and_limit_zero() {
    let (c, s) = setup(&[(Some(1), None), (Some(2), None)]);
    let r = run_query(
        &c,
        s.clone(),
        "d",
        "SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 10",
    )
    .unwrap();
    assert_eq!(r.num_rows(), 0);
    let r = run_query(&c, s, "d", "SELECT a FROM t LIMIT 0").unwrap();
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn aggregates_over_empty_and_all_null() {
    let (c, s) = setup(&[(None, None), (None, None)]);
    let r = run_query(
        &c,
        s.clone(),
        "d",
        "SELECT COUNT(*), COUNT(a), SUM(a), MIN(a), AVG(a) FROM t",
    )
    .unwrap();
    assert_eq!(
        r.row(0),
        vec![v_i(2), v_i(0), Value::Null, Value::Null, Value::Null]
    );
    // Filter removes everything: global aggregate still emits one row.
    let r = run_query(&c, s, "d", "SELECT COUNT(*) FROM t WHERE a > 100").unwrap();
    assert_eq!(r.row(0), vec![v_i(0)]);
}

#[test]
fn group_by_null_keys_form_one_group() {
    let (c, s) = setup(&[(None, Some("x")), (None, Some("y")), (Some(1), Some("z"))]);
    let r = run_query(
        &c,
        s,
        "d",
        "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a",
    )
    .unwrap();
    assert_eq!(r.num_rows(), 2);
    assert_eq!(r.row(0), vec![Value::Null, v_i(2)], "NULLs group together");
    assert_eq!(r.row(1), vec![v_i(1), v_i(1)]);
}

#[test]
fn self_join_null_keys_never_match() {
    let (c, s) = setup(&[
        (None, Some("n1")),
        (None, Some("n2")),
        (Some(1), Some("one")),
    ]);
    let r = run_query(
        &c,
        s,
        "d",
        "SELECT COUNT(*) FROM t AS l JOIN t AS r ON l.a = r.a",
    )
    .unwrap();
    // Only the a=1 row matches itself; NULL keys never join.
    assert_eq!(r.row(0), vec![v_i(1)]);
}

#[test]
fn count_distinct_ignores_nulls() {
    let (c, s) = setup(&[
        (Some(1), None),
        (Some(1), None),
        (None, None),
        (Some(2), None),
    ]);
    let r = run_query(&c, s, "d", "SELECT COUNT(DISTINCT a) FROM t").unwrap();
    assert_eq!(r.row(0), vec![v_i(2)]);
}

#[test]
fn distinct_treats_null_rows_as_equal() {
    let (c, s) = setup(&[(None, None), (None, None), (Some(1), None)]);
    let r = run_query(&c, s, "d", "SELECT DISTINCT a FROM t").unwrap();
    assert_eq!(r.num_rows(), 2);
}

#[test]
fn like_patterns_with_special_rows() {
    let (c, s) = setup(&[
        (Some(1), Some("abc")),
        (Some(2), Some("a%c")),
        (Some(3), None),
    ]);
    // `\`-free dialect: % and _ are wildcards; NULL never matches.
    let r = run_query(
        &c,
        s.clone(),
        "d",
        "SELECT a FROM t WHERE s LIKE 'a%c' ORDER BY a",
    )
    .unwrap();
    assert_eq!(r.num_rows(), 2, "wildcard matches both strings");
    let r = run_query(&c, s, "d", "SELECT a FROM t WHERE s NOT LIKE 'a%'").unwrap();
    assert_eq!(r.num_rows(), 0, "NULL is excluded by NOT LIKE as well");
}

#[test]
fn case_with_null_operand_takes_else() {
    let (c, s) = setup(&[(None, None)]);
    let r = run_query(
        &c,
        s,
        "d",
        "SELECT CASE a WHEN 1 THEN 'one' ELSE 'other' END FROM t",
    )
    .unwrap();
    assert_eq!(r.row(0), vec![Value::Utf8("other".into())]);
}

#[test]
fn cross_join_with_empty_side_is_empty() {
    let (c, s) = setup(&[(Some(1), None)]);
    let r = run_query(
        &c,
        s,
        "d",
        "SELECT COUNT(*) FROM t AS a CROSS JOIN (SELECT * FROM t WHERE a > 99) AS b",
    )
    .unwrap();
    assert_eq!(r.row(0), vec![v_i(0)]);
}
