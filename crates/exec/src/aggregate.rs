//! Hash aggregation with COUNT/SUM/AVG/MIN/MAX and DISTINCT variants.

use crate::evaluate::evaluate;
use pixels_common::{ColumnBuilder, DataType, Error, RecordBatch, Result, SchemaRef, Value};
use pixels_planner::{AggExpr, AggFunc};
use std::collections::{HashMap, HashSet};

/// Running state of one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(agg: &AggExpr) -> AggState {
        match agg.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if agg.output_type == DataType::Float64 {
                    AggState::SumFloat {
                        sum: 0.0,
                        seen: false,
                    }
                } else {
                    AggState::SumInt {
                        sum: 0,
                        seen: false,
                    }
                }
            }
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one non-null input value into the state.
    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt { sum, seen } => {
                let x = v
                    .as_i64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-integer value {v}")))?;
                *sum = sum
                    .checked_add(x)
                    .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                *seen = true;
            }
            AggState::SumFloat { sum, seen } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-numeric value {v}")))?;
                *sum += x;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("AVG over non-numeric value {v}")))?;
                *sum += x;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Final value of the aggregate (SQL: SUM/AVG/MIN/MAX of no rows = NULL,
    /// COUNT of no rows = 0).
    fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(*c),
            AggState::SumInt { sum, seen } => {
                if *seen {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, seen } => {
                if *seen {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Per-group state: one accumulator per aggregate, plus distinct-value sets
/// for DISTINCT aggregates.
struct GroupState {
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    fn new(aggs: &[AggExpr]) -> GroupState {
        GroupState {
            states: aggs.iter().map(AggState::new).collect(),
            distinct_seen: aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }
}

/// Execute a hash aggregate over materialized input.
pub fn execute_aggregate(
    input: &[RecordBatch],
    group_exprs: &[pixels_planner::BoundExpr],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
) -> Result<Vec<RecordBatch>> {
    // Group key -> state, with first-appearance ordering for determinism.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut states: Vec<GroupState> = Vec::new();

    for batch in input {
        let group_cols: Vec<_> = group_exprs
            .iter()
            .map(|g| evaluate(g, batch))
            .collect::<Result<_>>()?;
        let agg_cols: Vec<Option<pixels_common::Column>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|arg| evaluate(arg, batch)).transpose())
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
            let gi = match groups.get(&key) {
                Some(&i) => i,
                None => {
                    let i = states.len();
                    groups.insert(key.clone(), i);
                    keys.push(key);
                    states.push(GroupState::new(aggs));
                    i
                }
            };
            let state = &mut states[gi];
            for (ai, agg_col) in agg_cols.iter().enumerate() {
                let value = match agg_col {
                    Some(col) => col.value(row),
                    // COUNT(*): every row counts, represented as a non-null
                    // sentinel.
                    None => Value::Int64(1),
                };
                if value.is_null() {
                    continue; // aggregates skip NULLs
                }
                if let Some(seen) = &mut state.distinct_seen[ai] {
                    if !seen.insert(value.clone()) {
                        continue;
                    }
                }
                state.states[ai].update(&value)?;
            }
        }
    }

    // Global aggregate over zero rows still yields one output row.
    if group_exprs.is_empty() && states.is_empty() {
        keys.push(Vec::new());
        states.push(GroupState::new(aggs));
    }

    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for (key, state) in keys.iter().zip(&states) {
        for (b, v) in builders.iter_mut().zip(key.iter()) {
            b.push(v)?;
        }
        for (ai, s) in state.states.iter().enumerate() {
            let v = s.finish();
            let b = &mut builders[group_exprs.len() + ai];
            if v.is_null() {
                b.push_null();
            } else {
                b.push(&v)?;
            }
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::try_new(output_schema.clone(), columns)?])
}

/// Hash-based DISTINCT preserving first-appearance order.
pub fn execute_distinct(input: &[RecordBatch]) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let schema = first.schema().clone();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut sink = crate::join::RowSink::new(schema, 8192);
    for batch in input {
        for row in 0..batch.num_rows() {
            let r = batch.row(row);
            if seen.insert(r.clone()) {
                sink.push(r)?;
            }
        }
    }
    sink.finish()
}
