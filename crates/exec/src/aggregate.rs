//! Hash aggregation with COUNT/SUM/AVG/MIN/MAX and DISTINCT variants.
//!
//! Aggregation is parallelized the classic way: the input batches are split
//! into contiguous chunks, each worker builds a thread-local hash table
//! (a [`Partial`]), and the partials are merged on the caller's thread *in
//! chunk order*. Because merging walks chunks in input order and each
//! partial records groups (and DISTINCT values) in first-appearance order,
//! the merged output preserves exactly the group ordering the serial path
//! produces. Integer aggregates are bit-identical to serial execution;
//! floating-point SUM/AVG may differ in the last ulps because partial sums
//! reassociate the additions.
//!
//! Group keys are interned through the compact byte-row encoding in
//! [`crate::keys`] (FNV-1a + memcmp) instead of a `HashMap<Vec<Value>, _>`;
//! the `Vec<Value>` form of a key is materialized once per *group* (for
//! output building), not once per input row.

use crate::evaluate::{evaluate_ref, NumSlice};
use crate::keys::{KeyEncoder, KeyTable};
use crate::parallel;
use pixels_common::{
    Column, ColumnBuilder, ColumnData, DataType, Error, RecordBatch, Result, SchemaRef, Value,
};
use pixels_planner::{AggExpr, AggFunc, BoundExpr};
use std::borrow::Cow;
use std::collections::HashSet;

/// Running state of one aggregate within one group.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(agg: &AggExpr) -> AggState {
        match agg.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if agg.output_type == DataType::Float64 {
                    AggState::SumFloat {
                        sum: 0.0,
                        seen: false,
                    }
                } else {
                    AggState::SumInt {
                        sum: 0,
                        seen: false,
                    }
                }
            }
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one non-null input value into the state.
    pub(crate) fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt { sum, seen } => {
                let x = v
                    .as_i64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-integer value {v}")))?;
                *sum = sum
                    .checked_add(x)
                    .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                *seen = true;
            }
            AggState::SumFloat { sum, seen } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-numeric value {v}")))?;
                *sum += x;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("AVG over non-numeric value {v}")))?;
                *sum += x;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Fold another partial state for the same group into this one.
    pub(crate) fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt { sum, seen }, AggState::SumInt { sum: s, seen: b }) => {
                if *b {
                    *sum = sum
                        .checked_add(*s)
                        .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                    *seen = true;
                }
            }
            (AggState::SumFloat { sum, seen }, AggState::SumFloat { sum: s, seen: b }) => {
                if *b {
                    *sum += s;
                    *seen = true;
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s, count: c }) => {
                *sum += s;
                *count += c;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
            _ => return Err(Error::Exec("mismatched aggregate states".into())),
        }
        Ok(())
    }

    /// The primary spill-column type for this aggregate (the exchange spill
    /// format carries each state as two columns; see [`spill_values`]).
    ///
    /// [`spill_values`]: AggState::spill_values
    pub(crate) fn spill_type(agg: &AggExpr) -> DataType {
        match agg.func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Sum => agg.output_type,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Min | AggFunc::Max => agg.output_type,
        }
    }

    /// Encode the state as a `(primary, secondary)` value pair for the
    /// exchange spill format. The secondary slot is `Null` for every
    /// aggregate except AVG, which spills `(sum, count)` so the final
    /// division happens exactly once, in the final stage.
    pub(crate) fn spill_values(&self) -> (Value, Value) {
        match self {
            AggState::Count(c) => (Value::Int64(*c), Value::Null),
            AggState::SumInt { sum, seen } => (
                if *seen {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                },
                Value::Null,
            ),
            AggState::SumFloat { sum, seen } => (
                if *seen {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                },
                Value::Null,
            ),
            AggState::Avg { sum, count } => (Value::Float64(*sum), Value::Int64(*count)),
            AggState::Min(v) | AggState::Max(v) => (v.clone().unwrap_or(Value::Null), Value::Null),
        }
    }

    /// Decode a state from its spill value pair (inverse of
    /// [`spill_values`](AggState::spill_values)).
    pub(crate) fn from_spill(agg: &AggExpr, a: Value, b: Value) -> Result<AggState> {
        let bad = || Error::Exec(format!("corrupt {:?} spill state: ({a}, {b})", agg.func));
        Ok(match agg.func {
            AggFunc::Count => AggState::Count(a.as_i64().ok_or_else(bad)?),
            AggFunc::Sum if agg.output_type == DataType::Float64 => match a {
                Value::Null => AggState::SumFloat {
                    sum: 0.0,
                    seen: false,
                },
                ref v => AggState::SumFloat {
                    sum: v.as_f64().ok_or_else(bad)?,
                    seen: true,
                },
            },
            AggFunc::Sum => match a {
                Value::Null => AggState::SumInt {
                    sum: 0,
                    seen: false,
                },
                ref v => AggState::SumInt {
                    sum: v.as_i64().ok_or_else(bad)?,
                    seen: true,
                },
            },
            AggFunc::Avg => AggState::Avg {
                sum: a.as_f64().ok_or_else(bad)?,
                count: b.as_i64().ok_or_else(bad)?,
            },
            AggFunc::Min => AggState::Min((!a.is_null()).then_some(a)),
            AggFunc::Max => AggState::Max((!a.is_null()).then_some(a)),
        })
    }

    /// Final value of the aggregate (SQL: SUM/AVG/MIN/MAX of no rows = NULL,
    /// COUNT of no rows = 0).
    pub(crate) fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(*c),
            AggState::SumInt { sum, seen } => {
                if *seen {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, seen } => {
                if *seen {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Values a DISTINCT aggregate has consumed, in first-appearance order. The
/// order matters when merging partials: replaying it keeps the update
/// sequence identical to serial execution.
#[derive(Debug, Default)]
pub(crate) struct DistinctSet {
    seen: HashSet<Value>,
    pub(crate) order: Vec<Value>,
}

impl DistinctSet {
    /// True (and records the value) if `v` has not been seen before.
    pub(crate) fn insert(&mut self, v: &Value) -> bool {
        if self.seen.insert(v.clone()) {
            self.order.push(v.clone());
            true
        } else {
            false
        }
    }
}

/// Per-group state: one accumulator per aggregate, plus distinct-value sets
/// for DISTINCT aggregates.
pub(crate) struct GroupState {
    pub(crate) states: Vec<AggState>,
    pub(crate) distinct: Vec<Option<DistinctSet>>,
}

impl GroupState {
    pub(crate) fn new(aggs: &[AggExpr]) -> GroupState {
        GroupState {
            states: aggs.iter().map(AggState::new).collect(),
            distinct: aggs
                .iter()
                .map(|a| a.distinct.then(DistinctSet::default))
                .collect(),
        }
    }

    /// Fold row `row` of the (optional) aggregate argument columns into the
    /// group. `None` columns are COUNT(*) — every row counts.
    pub(crate) fn consume_row(&mut self, agg_cols: &[Option<Column>], row: usize) -> Result<()> {
        for (ai, agg_col) in agg_cols.iter().enumerate() {
            let value = match agg_col {
                Some(col) => col.value(row),
                None => Value::Int64(1),
            };
            if value.is_null() {
                continue; // aggregates skip NULLs
            }
            if let Some(seen) = &mut self.distinct[ai] {
                if !seen.insert(&value) {
                    continue;
                }
            }
            self.states[ai].update(&value)?;
        }
        Ok(())
    }
}

/// One worker's aggregation state: interned group keys (dense, in
/// first-appearance order) and the per-group accumulators. `keys[i]` is the
/// materialized `Vec<Value>` form of `table` entry `i`, used only to build
/// the final output columns.
pub(crate) struct Partial {
    pub(crate) table: KeyTable,
    pub(crate) keys: Vec<Vec<Value>>,
    pub(crate) states: Vec<GroupState>,
}

impl Partial {
    pub(crate) fn new() -> Partial {
        Partial {
            table: KeyTable::new(),
            keys: Vec::new(),
            states: Vec::new(),
        }
    }
}

/// Integer view of a column's raw payload, for checked integer SUM. Shared
/// with the encoded aggregate path so both sum the identical i64 sequence.
pub(crate) enum IntSlice<'a> {
    I32(&'a [i32]),
    I64(&'a [i64]),
}

impl IntSlice<'_> {
    pub(crate) fn get(&self, i: usize) -> i64 {
        match self {
            IntSlice::I32(v) => v[i] as i64,
            IntSlice::I64(v) => v[i],
        }
    }
}

pub(crate) fn int_view(data: &ColumnData) -> Option<IntSlice<'_>> {
    match data {
        ColumnData::Int32(v) => Some(IntSlice::I32(v)),
        ColumnData::Int64(v) => Some(IntSlice::I64(v)),
        _ => None,
    }
}

/// Fold one aggregate's argument column into the per-group states, walking
/// rows in input order (so float accumulation order matches the row-at-a-time
/// path exactly). Non-distinct COUNT/SUM/AVG over numeric columns read the
/// raw slice instead of materializing a `Value` per row; DISTINCT, MIN/MAX,
/// and uncovered argument types take the general path, which is
/// [`GroupState::consume_row`] restricted to this aggregate.
fn update_agg_column(
    states: &mut [GroupState],
    ai: usize,
    agg: &AggExpr,
    col: Option<&Column>,
    gidx: &[u32],
) -> Result<()> {
    if !agg.distinct {
        if let Some(col) = col {
            let validity = col.validity();
            let valid = |row: usize| validity.is_none_or(|v| v[row]);
            match (&agg.func, NumSlice::of(col.data())) {
                (AggFunc::Count, _) => {
                    for (row, &g) in gidx.iter().enumerate() {
                        if valid(row) {
                            if let AggState::Count(c) = &mut states[g as usize].states[ai] {
                                *c += 1;
                            }
                        }
                    }
                    return Ok(());
                }
                (AggFunc::Sum, Some(ns)) if agg.output_type == DataType::Float64 => {
                    for (row, &g) in gidx.iter().enumerate() {
                        if valid(row) {
                            if let AggState::SumFloat { sum, seen } =
                                &mut states[g as usize].states[ai]
                            {
                                *sum += ns.get(row);
                                *seen = true;
                            }
                        }
                    }
                    return Ok(());
                }
                (AggFunc::Sum, _) if agg.output_type != DataType::Float64 => {
                    if let Some(xs) = int_view(col.data()) {
                        for (row, &g) in gidx.iter().enumerate() {
                            if valid(row) {
                                if let AggState::SumInt { sum, seen } =
                                    &mut states[g as usize].states[ai]
                                {
                                    *sum = sum
                                        .checked_add(xs.get(row))
                                        .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                                    *seen = true;
                                }
                            }
                        }
                        return Ok(());
                    }
                }
                (AggFunc::Avg, Some(ns)) => {
                    for (row, &g) in gidx.iter().enumerate() {
                        if valid(row) {
                            if let AggState::Avg { sum, count } = &mut states[g as usize].states[ai]
                            {
                                *sum += ns.get(row);
                                *count += 1;
                            }
                        }
                    }
                    return Ok(());
                }
                _ => {}
            }
        } else {
            // COUNT(*): no argument column, every row counts.
            for &g in gidx {
                match &mut states[g as usize].states[ai] {
                    AggState::Count(c) => *c += 1,
                    other => other.update(&Value::Int64(1))?,
                }
            }
            return Ok(());
        }
    }
    for (row, &g) in gidx.iter().enumerate() {
        let value = match col {
            Some(c) => c.value(row),
            None => Value::Int64(1),
        };
        if value.is_null() {
            continue; // aggregates skip NULLs
        }
        let st = &mut states[g as usize];
        if let Some(seen) = &mut st.distinct[ai] {
            if !seen.insert(&value) {
                continue;
            }
        }
        st.states[ai].update(&value)?;
    }
    Ok(())
}

/// Aggregate `input` into a fresh hash table (the serial inner loop): one
/// pass interning group keys into per-row group indices, then one typed
/// update pass per aggregate column.
pub(crate) fn build_partial(
    input: &[&RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
) -> Result<Partial> {
    let mut partial = Partial::new();
    let encoder = KeyEncoder::new(
        &group_exprs
            .iter()
            .map(|g| g.data_type())
            .collect::<Vec<_>>(),
    );
    let mut buf = Vec::new();
    let mut gidx: Vec<u32> = Vec::new();
    for &batch in input {
        let group_cols: Vec<Cow<Column>> = group_exprs
            .iter()
            .map(|g| evaluate_ref(g, batch))
            .collect::<Result<_>>()?;
        let agg_cols: Vec<Option<Cow<Column>>> = aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|arg| evaluate_ref(arg, batch))
                    .transpose()
            })
            .collect::<Result<_>>()?;
        gidx.clear();
        gidx.reserve(batch.num_rows());
        for row in 0..batch.num_rows() {
            // Group keys treat NULLs as equal, so the any-null flag from
            // the encoder is irrelevant here (unlike joins).
            encoder.encode_row(&group_cols, row, &mut buf);
            let (gi, is_new) = partial.table.intern(&buf);
            if is_new {
                partial
                    .keys
                    .push(group_cols.iter().map(|c| c.value(row)).collect());
                partial.states.push(GroupState::new(aggs));
            }
            gidx.push(gi as u32);
        }
        for (ai, agg) in aggs.iter().enumerate() {
            update_agg_column(&mut partial.states, ai, agg, agg_cols[ai].as_deref(), &gidx)?;
        }
    }
    Ok(partial)
}

/// Fold `part` into `acc`. Called with partials in chunk order, so groups
/// (and DISTINCT values) keep their global first-appearance order. Keys are
/// re-interned from the source partial's encoded bytes — never re-encoded.
pub(crate) fn merge_partial(acc: &mut Partial, part: Partial) -> Result<()> {
    let Partial {
        table,
        keys,
        states,
    } = part;
    for (src, (key, gstate)) in keys.into_iter().zip(states).enumerate() {
        let (gi, is_new) = acc.table.intern(table.key_bytes(src));
        if is_new {
            acc.keys.push(key);
            acc.states.push(gstate);
            continue;
        }
        let target = &mut acc.states[gi];
        for (ai, incoming) in gstate.states.iter().enumerate() {
            match (gstate.distinct[ai].as_ref(), &mut target.distinct[ai]) {
                (Some(ds), Some(tds)) => {
                    // Replay the chunk's distinct values in order;
                    // only globally-new values update the state.
                    for v in &ds.order {
                        if tds.insert(v) {
                            target.states[ai].update(v)?;
                        }
                    }
                }
                _ => target.states[ai].merge(incoming)?,
            }
        }
    }
    Ok(())
}

/// Split `input` into at most `parts` contiguous runs of whole batches,
/// balanced by row count.
pub(crate) fn partition_batches(input: &[RecordBatch], parts: usize) -> Vec<Vec<&RecordBatch>> {
    let parts = parts.clamp(1, input.len().max(1));
    let total: usize = input.iter().map(|b| b.num_rows()).sum();
    let target = total.div_ceil(parts).max(1);
    let mut chunks: Vec<Vec<&RecordBatch>> = Vec::with_capacity(parts);
    let mut current: Vec<&RecordBatch> = Vec::new();
    let mut current_rows = 0;
    for b in input {
        current.push(b);
        current_rows += b.num_rows();
        if current_rows >= target && chunks.len() + 1 < parts {
            chunks.push(std::mem::take(&mut current));
            current_rows = 0;
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Execute a hash aggregate over materialized input with up to `parallelism`
/// workers building partial aggregates.
pub fn execute_aggregate(
    input: &[RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
    parallelism: usize,
) -> Result<Vec<RecordBatch>> {
    let acc = merged_partial(input, group_exprs, aggs, parallelism)?;
    finish_partial(acc, group_exprs.len(), aggs, output_schema)
}

/// Build and merge the partial aggregates for `input` (the parallel part of
/// [`execute_aggregate`], without the output materialization). The exchange
/// spill writer runs this same routine, so stage-0 partial states are
/// bit-identical to the in-process merged accumulator.
pub(crate) fn merged_partial(
    input: &[RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    parallelism: usize,
) -> Result<Partial> {
    let chunks = partition_batches(input, parallelism);
    let partials = parallel::run_indexed(chunks.len(), parallelism, |i| {
        build_partial(&chunks[i], group_exprs, aggs)
    })?;
    let mut partials = partials.into_iter();
    let mut acc = partials.next().unwrap_or_else(Partial::new);
    for part in partials {
        merge_partial(&mut acc, part)?;
    }
    Ok(acc)
}

/// Materialize a merged [`Partial`] into the final output batch: group key
/// columns followed by finished aggregate values. Shared by the in-process
/// path above and the exchange final stage, so both produce bit-identical
/// output (including the one-row result of a global aggregate over no rows).
pub(crate) fn finish_partial(
    mut acc: Partial,
    group_len: usize,
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
) -> Result<Vec<RecordBatch>> {
    // Global aggregate over zero rows still yields one output row.
    if group_len == 0 && acc.states.is_empty() {
        acc.keys.push(Vec::new());
        acc.states.push(GroupState::new(aggs));
    }

    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type, acc.keys.len()))
        .collect();
    for (key, state) in acc.keys.iter().zip(&acc.states) {
        for (b, v) in builders.iter_mut().zip(key.iter()) {
            b.push(v)?;
        }
        for (ai, s) in state.states.iter().enumerate() {
            let v = s.finish();
            let b = &mut builders[group_len + ai];
            if v.is_null() {
                b.push_null();
            } else {
                b.push(&v)?;
            }
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::try_new(output_schema.clone(), columns)?])
}

/// Hash-based DISTINCT preserving first-appearance order: whole rows are
/// interned through the key encoding and the surviving (first-appearance)
/// row indices are gathered columnar, in 8192-row output chunks.
pub fn execute_distinct(input: &[RecordBatch]) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let schema = first.schema().clone();
    let types: Vec<DataType> = schema.fields().iter().map(|f| f.data_type).collect();
    let encoder = KeyEncoder::new(&types);
    let mut table = KeyTable::new();
    let mut buf = Vec::new();

    // Coalesce so kept-row indices are global and one gather per column
    // materializes the output.
    let all;
    let source = match input {
        [single] => single,
        many => {
            all = RecordBatch::concat(many)?;
            &all
        }
    };
    let mut kept: Vec<usize> = Vec::new();
    for row in 0..source.num_rows() {
        // DISTINCT treats NULLs as equal; the any-null flag is irrelevant.
        encoder.encode_row(source.columns(), row, &mut buf);
        let (_, is_new) = table.intern(&buf);
        if is_new {
            kept.push(row);
        }
    }
    let mut out = Vec::with_capacity(kept.len().div_ceil(8192));
    for chunk in kept.chunks(8192) {
        out.push(source.gather(chunk)?);
    }
    Ok(out)
}
