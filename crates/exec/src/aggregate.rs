//! Hash aggregation with COUNT/SUM/AVG/MIN/MAX and DISTINCT variants.
//!
//! Aggregation is parallelized the classic way: the input batches are split
//! into contiguous chunks, each worker builds a thread-local hash table
//! (a [`Partial`]), and the partials are merged on the caller's thread *in
//! chunk order*. Because merging walks chunks in input order and each
//! partial records groups (and DISTINCT values) in first-appearance order,
//! the merged output preserves exactly the group ordering the serial path
//! produces. Integer aggregates are bit-identical to serial execution;
//! floating-point SUM/AVG may differ in the last ulps because partial sums
//! reassociate the additions.

use crate::evaluate::evaluate;
use crate::parallel;
use pixels_common::{ColumnBuilder, DataType, Error, RecordBatch, Result, SchemaRef, Value};
use pixels_planner::{AggExpr, AggFunc};
use std::collections::{HashMap, HashSet};

/// Running state of one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(agg: &AggExpr) -> AggState {
        match agg.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if agg.output_type == DataType::Float64 {
                    AggState::SumFloat {
                        sum: 0.0,
                        seen: false,
                    }
                } else {
                    AggState::SumInt {
                        sum: 0,
                        seen: false,
                    }
                }
            }
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one non-null input value into the state.
    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt { sum, seen } => {
                let x = v
                    .as_i64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-integer value {v}")))?;
                *sum = sum
                    .checked_add(x)
                    .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                *seen = true;
            }
            AggState::SumFloat { sum, seen } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("SUM over non-numeric value {v}")))?;
                *sum += x;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::Exec(format!("AVG over non-numeric value {v}")))?;
                *sum += x;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Fold another partial state for the same group into this one.
    fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt { sum, seen }, AggState::SumInt { sum: s, seen: b }) => {
                if *b {
                    *sum = sum
                        .checked_add(*s)
                        .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                    *seen = true;
                }
            }
            (AggState::SumFloat { sum, seen }, AggState::SumFloat { sum: s, seen: b }) => {
                if *b {
                    *sum += s;
                    *seen = true;
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s, count: c }) => {
                *sum += s;
                *count += c;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                        *cur = Some(v.clone());
                    }
                }
            }
            _ => return Err(Error::Exec("mismatched aggregate states".into())),
        }
        Ok(())
    }

    /// Final value of the aggregate (SQL: SUM/AVG/MIN/MAX of no rows = NULL,
    /// COUNT of no rows = 0).
    fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(*c),
            AggState::SumInt { sum, seen } => {
                if *seen {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, seen } => {
                if *seen {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Values a DISTINCT aggregate has consumed, in first-appearance order. The
/// order matters when merging partials: replaying it keeps the update
/// sequence identical to serial execution.
#[derive(Debug, Default)]
struct DistinctSet {
    seen: HashSet<Value>,
    order: Vec<Value>,
}

impl DistinctSet {
    /// True (and records the value) if `v` has not been seen before.
    fn insert(&mut self, v: &Value) -> bool {
        if self.seen.insert(v.clone()) {
            self.order.push(v.clone());
            true
        } else {
            false
        }
    }
}

/// Per-group state: one accumulator per aggregate, plus distinct-value sets
/// for DISTINCT aggregates.
struct GroupState {
    states: Vec<AggState>,
    distinct: Vec<Option<DistinctSet>>,
}

impl GroupState {
    fn new(aggs: &[AggExpr]) -> GroupState {
        GroupState {
            states: aggs.iter().map(AggState::new).collect(),
            distinct: aggs
                .iter()
                .map(|a| a.distinct.then(DistinctSet::default))
                .collect(),
        }
    }
}

/// One worker's aggregation state: group key → index, with keys and states
/// in first-appearance order.
struct Partial {
    index: HashMap<Vec<Value>, usize>,
    keys: Vec<Vec<Value>>,
    states: Vec<GroupState>,
}

/// Aggregate `input` into a fresh hash table (the serial inner loop).
fn build_partial(
    input: &[&RecordBatch],
    group_exprs: &[pixels_planner::BoundExpr],
    aggs: &[AggExpr],
) -> Result<Partial> {
    let mut partial = Partial {
        index: HashMap::new(),
        keys: Vec::new(),
        states: Vec::new(),
    };
    for &batch in input {
        let group_cols: Vec<_> = group_exprs
            .iter()
            .map(|g| evaluate(g, batch))
            .collect::<Result<_>>()?;
        let agg_cols: Vec<Option<pixels_common::Column>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|arg| evaluate(arg, batch)).transpose())
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
            let gi = match partial.index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = partial.states.len();
                    partial.index.insert(key.clone(), i);
                    partial.keys.push(key);
                    partial.states.push(GroupState::new(aggs));
                    i
                }
            };
            let state = &mut partial.states[gi];
            for (ai, agg_col) in agg_cols.iter().enumerate() {
                let value = match agg_col {
                    Some(col) => col.value(row),
                    // COUNT(*): every row counts, represented as a non-null
                    // sentinel.
                    None => Value::Int64(1),
                };
                if value.is_null() {
                    continue; // aggregates skip NULLs
                }
                if let Some(seen) = &mut state.distinct[ai] {
                    if !seen.insert(&value) {
                        continue;
                    }
                }
                state.states[ai].update(&value)?;
            }
        }
    }
    Ok(partial)
}

/// Fold `part` into `acc`. Called with partials in chunk order, so groups
/// (and DISTINCT values) keep their global first-appearance order.
fn merge_partial(acc: &mut Partial, part: Partial) -> Result<()> {
    for (key, gstate) in part.keys.into_iter().zip(part.states) {
        match acc.index.get(&key) {
            Some(&gi) => {
                let target = &mut acc.states[gi];
                for (ai, incoming) in gstate.states.iter().enumerate() {
                    match (gstate.distinct[ai].as_ref(), &mut target.distinct[ai]) {
                        (Some(ds), Some(tds)) => {
                            // Replay the chunk's distinct values in order;
                            // only globally-new values update the state.
                            for v in &ds.order {
                                if tds.insert(v) {
                                    target.states[ai].update(v)?;
                                }
                            }
                        }
                        _ => target.states[ai].merge(incoming)?,
                    }
                }
            }
            None => {
                acc.index.insert(key.clone(), acc.states.len());
                acc.keys.push(key);
                acc.states.push(gstate);
            }
        }
    }
    Ok(())
}

/// Split `input` into at most `parts` contiguous runs of whole batches,
/// balanced by row count.
fn partition_batches(input: &[RecordBatch], parts: usize) -> Vec<Vec<&RecordBatch>> {
    let parts = parts.clamp(1, input.len().max(1));
    let total: usize = input.iter().map(|b| b.num_rows()).sum();
    let target = total.div_ceil(parts).max(1);
    let mut chunks: Vec<Vec<&RecordBatch>> = Vec::with_capacity(parts);
    let mut current: Vec<&RecordBatch> = Vec::new();
    let mut current_rows = 0;
    for b in input {
        current.push(b);
        current_rows += b.num_rows();
        if current_rows >= target && chunks.len() + 1 < parts {
            chunks.push(std::mem::take(&mut current));
            current_rows = 0;
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Execute a hash aggregate over materialized input with up to `parallelism`
/// workers building partial aggregates.
pub fn execute_aggregate(
    input: &[RecordBatch],
    group_exprs: &[pixels_planner::BoundExpr],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
    parallelism: usize,
) -> Result<Vec<RecordBatch>> {
    let chunks = partition_batches(input, parallelism);
    let partials = parallel::run_indexed(chunks.len(), parallelism, |i| {
        build_partial(&chunks[i], group_exprs, aggs)
    })?;
    let mut acc = Partial {
        index: HashMap::new(),
        keys: Vec::new(),
        states: Vec::new(),
    };
    let mut partials = partials.into_iter();
    if let Some(first) = partials.next() {
        acc = first;
    }
    for part in partials {
        merge_partial(&mut acc, part)?;
    }

    // Global aggregate over zero rows still yields one output row.
    if group_exprs.is_empty() && acc.states.is_empty() {
        acc.keys.push(Vec::new());
        acc.states.push(GroupState::new(aggs));
    }

    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for (key, state) in acc.keys.iter().zip(&acc.states) {
        for (b, v) in builders.iter_mut().zip(key.iter()) {
            b.push(v)?;
        }
        for (ai, s) in state.states.iter().enumerate() {
            let v = s.finish();
            let b = &mut builders[group_exprs.len() + ai];
            if v.is_null() {
                b.push_null();
            } else {
                b.push(&v)?;
            }
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::try_new(output_schema.clone(), columns)?])
}

/// Hash-based DISTINCT preserving first-appearance order.
pub fn execute_distinct(input: &[RecordBatch]) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let schema = first.schema().clone();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut sink = crate::join::RowSink::new(schema, 8192);
    for batch in input {
        for row in 0..batch.num_rows() {
            let r = batch.row(row);
            if seen.insert(r.clone()) {
                sink.push(r)?;
            }
        }
    }
    sink.finish()
}
