//! Table scans with projection pushdown, zone-map pruning, and residual
//! filtering.

use crate::context::ExecContext;
use crate::evaluate::predicate_mask;
use pixels_common::{RecordBatch, Result};
use pixels_planner::BoundExpr;
use pixels_storage::{ColumnPredicate, PixelsReader};

/// Execute a Pixels table scan over `paths`.
///
/// Bytes scanned are metered exactly: the footer plus every fetched column
/// chunk, which is what the reader actually transfers from object storage.
pub fn execute_scan(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    filters: &[BoundExpr],
    out: &mut Vec<RecordBatch>,
) -> Result<()> {
    for path in paths {
        let before = ctx.store.metrics();
        let reader = PixelsReader::open(ctx.store.as_ref(), path)?;
        let retained = reader.prune_row_groups(zone_predicates);
        ctx.metrics
            .add_row_groups(reader.num_row_groups() as u64, retained.len() as u64);
        for rg in retained {
            let batch = reader.read_row_group(rg, Some(projection))?;
            let rows = batch.num_rows() as u64;
            let batch = apply_filters(filters, batch)?;
            ctx.metrics.add_produced(batch.num_rows() as u64);
            ctx.metrics.add_scan(0, rows);
            if batch.num_rows() > 0 {
                out.push(batch);
            }
        }
        // Exact transfer accounting from the store's own counters.
        let delta = ctx.store.metrics().delta_since(&before);
        ctx.metrics.add_scan(delta.bytes_read, 0);
    }
    Ok(())
}

/// Apply residual row-level filters (a conjunction) to one batch.
pub fn apply_filters(filters: &[BoundExpr], batch: RecordBatch) -> Result<RecordBatch> {
    let mut batch = batch;
    for f in filters {
        if batch.num_rows() == 0 {
            break;
        }
        let mask = predicate_mask(f, &batch)?;
        batch = batch.filter(&mask)?;
    }
    Ok(batch)
}
