//! Table scans with projection pushdown, zone-map pruning, residual
//! filtering, and morsel-driven parallelism.
//!
//! With [`ExecContext::encoded_scan`] on (the default), each morsel is split
//! into a fetch phase and a decode/filter phase: a prefetcher
//! ([`crate::prefetch::run_prefetched`]) overlaps the next row group's GETs
//! with the current group's decode, raw chunk bytes are served from the
//! optional [`pixels_storage::ChunkCache`], and residual filters run on
//! encoded chunks ([`crate::encoded`]) with late materialization. Billing is
//! metered from chunk metadata in both modes, so results *and* bills are
//! identical with the pipeline on or off.

use crate::context::ExecContext;
use crate::encoded::{encoded_filter_mask, LazyRowGroup};
use crate::evaluate::fused_filter_mask;
use crate::parallel;
use crate::prefetch::run_prefetched;
use pixels_common::{RecordBatch, Result, SchemaRef};
use pixels_planner::BoundExpr;
use pixels_storage::{ColumnPredicate, ColumnStats, EncodedChunk, PixelsReader};
use std::sync::Arc;

/// Open `path` through the context's shared footer cache and meter the open:
/// a miss bills the bytes actually fetched, a hit bills nothing and bumps
/// the hit counter instead. When tracing, the open is a `storage_open` span
/// whose `bytes` attribute is exactly what the open billed (zero on a hit),
/// so span byte sums stay consistent with `bytes_scanned`.
pub(crate) fn open_metered<'a>(ctx: &'a ExecContext, path: &str) -> Result<PixelsReader<'a>> {
    let mut span = ctx.trace.span("storage_open");
    let reader = PixelsReader::open_with_cache(ctx.store.as_ref(), path, &ctx.footer_cache)?;
    if span.enabled() {
        span.record_str("path", path);
        span.record_u64("cache_hit", reader.from_cache() as u64);
        span.record_u64(
            "bytes",
            if reader.from_cache() {
                0
            } else {
                reader.open_bytes()
            },
        );
    }
    if reader.from_cache() {
        ctx.metrics.add_footer_cache_hit();
    } else {
        ctx.metrics.add_scan(reader.open_bytes(), 0);
        ctx.metrics.add_open(reader.open_bytes());
    }
    Ok(reader)
}

/// Execute a Pixels table scan over `paths`.
///
/// Each surviving `(file, row group)` pair is one morsel; up to
/// `ctx.parallelism` workers decode morsels concurrently and the batches are
/// emitted in morsel order, so results are identical at every parallelism
/// level. Bytes are metered from the reader's own accounting (footer bytes
/// on open, projected chunk lengths per row group), making `bytes_scanned`
/// exact and independent of thread interleaving.
pub fn execute_scan(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    filters: &[BoundExpr],
    output_schema: &SchemaRef,
    out: &mut Vec<RecordBatch>,
) -> Result<()> {
    if !ctx.encoded_scan {
        return execute_scan_with(
            ctx,
            paths,
            projection,
            zone_predicates,
            filters,
            output_schema,
            out,
            apply_filters,
        );
    }

    // Open and prune every file up front; morsels index into `readers`.
    let mut readers = Vec::with_capacity(paths.len());
    let mut schemas: Vec<SchemaRef> = Vec::with_capacity(paths.len());
    let mut morsels: Vec<(usize, usize)> = Vec::new();
    for (fi, path) in paths.iter().enumerate() {
        let reader = open_metered(ctx, path)?;
        let retained = reader.prune_row_groups(zone_predicates);
        ctx.metrics
            .add_row_groups(reader.num_row_groups() as u64, retained.len() as u64);
        morsels.extend(retained.into_iter().map(|rg| (fi, rg)));
        schemas.push(Arc::new(reader.schema().project(projection)));
        readers.push(reader);
    }
    let cache = ctx.chunk_cache.as_deref();

    let (batches, stats) = run_prefetched(
        morsels.len(),
        ctx.parallelism,
        ctx.prefetch_depth,
        // Fetch phase (runs on the single prefetch I/O thread, in morsel
        // order): GET or cache-serve the morsel's projected chunks. The span
        // records `prefetch_bytes`, never `bytes` — the bytes are billed by
        // the consuming morsel span, and double-counting would break
        // span-vs-bill reconciliation.
        |i| {
            let (fi, rg) = morsels[i];
            let reader = &readers[fi];
            let mut span = ctx.trace.span("prefetch");
            let mut hits = 0u64;
            let mut misses = 0u64;
            let chunks = projection
                .iter()
                .map(|&col| {
                    let (chunk, hit) = reader.read_encoded_chunk(rg, col, cache)?;
                    if hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    Ok(chunk)
                })
                .collect::<Result<Vec<EncodedChunk>>>()?;
            ctx.metrics.add_chunk_cache(hits, misses);
            if span.enabled() {
                span.record_u64("row_group", rg as u64);
                span.record_u64(
                    "prefetch_bytes",
                    reader.row_group_bytes(rg, Some(projection)),
                );
                span.record_u64("cache_hits", hits);
            }
            Ok(chunks)
        },
        // Work phase (morsel workers): filter on the encoded chunks, then
        // materialize only the selected rows.
        |i, chunks: Vec<EncodedChunk>| {
            let (fi, rg) = morsels[i];
            let reader = &readers[fi];
            let mut span = ctx.trace.span("morsel");
            let num_rows = reader.footer().row_groups[rg].num_rows as usize;
            let lazy = LazyRowGroup::new(schemas[fi].clone(), chunks, num_rows);
            let batch = if filters.is_empty() {
                lazy.materialize_all()?
            } else {
                let stats: Vec<&ColumnStats> = projection
                    .iter()
                    .map(|&c| &reader.footer().row_groups[rg].columns[c].stats)
                    .collect();
                let mask = encoded_filter_mask(filters, &lazy, &stats)?;
                lazy.materialize(&mask)?
            };
            let bytes = reader.row_group_bytes(rg, Some(projection));
            if span.enabled() {
                span.record_u64("row_group", rg as u64);
                span.record_u64("rows", num_rows as u64);
                span.record_u64("bytes", bytes);
            }
            ctx.metrics.add_scan(bytes, num_rows as u64);
            ctx.metrics.add_produced(batch.num_rows() as u64);
            Ok(batch)
        },
    );
    ctx.metrics
        .add_prefetch(stats.issued, stats.hits, stats.wasted);
    let batches = batches?;

    out.extend(batches.into_iter().filter(|b| b.num_rows() > 0));
    // Preserve the schema even when nothing matched, so downstream operators
    // never see a schema-less empty result.
    if out.is_empty() {
        out.push(RecordBatch::empty(output_schema.clone()));
    }
    Ok(())
}

/// Scan with an explicit residual-filter implementation, so the retained
/// scalar reference path (`scalar::execute`) shares the exact same morsel
/// fan-out and byte metering while filtering row-at-a-time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_scan_with(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    filters: &[BoundExpr],
    output_schema: &SchemaRef,
    out: &mut Vec<RecordBatch>,
    apply: fn(&[BoundExpr], RecordBatch) -> Result<RecordBatch>,
) -> Result<()> {
    // Open and prune every file up front; morsels index into `readers`.
    let mut readers = Vec::with_capacity(paths.len());
    let mut morsels: Vec<(usize, usize)> = Vec::new();
    for (fi, path) in paths.iter().enumerate() {
        let reader = open_metered(ctx, path)?;
        let retained = reader.prune_row_groups(zone_predicates);
        ctx.metrics
            .add_row_groups(reader.num_row_groups() as u64, retained.len() as u64);
        morsels.extend(retained.into_iter().map(|rg| (fi, rg)));
        readers.push(reader);
    }

    let batches = parallel::run_indexed(morsels.len(), ctx.parallelism, |i| {
        let (fi, rg) = morsels[i];
        let reader = &readers[fi];
        // One `morsel` span per (file, row group) unit of work; workers on
        // any thread attach to the enclosing scan span. The `bytes`
        // attribute carries the morsel's projected chunk bytes — the
        // billed quantity.
        let mut span = ctx.trace.span("morsel");
        let batch = reader.read_row_group(rg, Some(projection))?;
        let rows = batch.num_rows() as u64;
        let batch = apply(filters, batch)?;
        let bytes = reader.row_group_bytes(rg, Some(projection));
        if span.enabled() {
            span.record_u64("row_group", rg as u64);
            span.record_u64("rows", rows);
            span.record_u64("bytes", bytes);
        }
        ctx.metrics.add_scan(bytes, rows);
        ctx.metrics.add_produced(batch.num_rows() as u64);
        Ok(batch)
    })?;

    out.extend(batches.into_iter().filter(|b| b.num_rows() > 0));
    // Preserve the schema even when nothing matched, so downstream operators
    // never see a schema-less empty result.
    if out.is_empty() {
        out.push(RecordBatch::empty(output_schema.clone()));
    }
    Ok(())
}

/// Apply residual row-level filters (a conjunction) to one batch: one fused
/// selection mask over the original batch, one `filter` materialization —
/// no intermediate filtered batches between conjuncts.
pub fn apply_filters(filters: &[BoundExpr], batch: RecordBatch) -> Result<RecordBatch> {
    if filters.is_empty() || batch.num_rows() == 0 {
        return Ok(batch);
    }
    let mask = fused_filter_mask(filters, &batch)?;
    batch.filter(&mask)
}
