//! Table scans with projection pushdown, zone-map pruning, residual
//! filtering, and morsel-driven parallelism.

use crate::context::ExecContext;
use crate::evaluate::fused_filter_mask;
use crate::parallel;
use pixels_common::{RecordBatch, Result, SchemaRef};
use pixels_planner::BoundExpr;
use pixels_storage::{ColumnPredicate, PixelsReader};

/// Open `path` through the context's shared footer cache and meter the open:
/// a miss bills the bytes actually fetched, a hit bills nothing and bumps
/// the hit counter instead. When tracing, the open is a `storage_open` span
/// whose `bytes` attribute is exactly what the open billed (zero on a hit),
/// so span byte sums stay consistent with `bytes_scanned`.
pub(crate) fn open_metered<'a>(ctx: &'a ExecContext, path: &str) -> Result<PixelsReader<'a>> {
    let mut span = ctx.trace.span("storage_open");
    let reader = PixelsReader::open_with_cache(ctx.store.as_ref(), path, &ctx.footer_cache)?;
    if span.enabled() {
        span.record_str("path", path);
        span.record_u64("cache_hit", reader.from_cache() as u64);
        span.record_u64(
            "bytes",
            if reader.from_cache() {
                0
            } else {
                reader.open_bytes()
            },
        );
    }
    if reader.from_cache() {
        ctx.metrics.add_footer_cache_hit();
    } else {
        ctx.metrics.add_scan(reader.open_bytes(), 0);
    }
    Ok(reader)
}

/// Execute a Pixels table scan over `paths`.
///
/// Each surviving `(file, row group)` pair is one morsel; up to
/// `ctx.parallelism` workers decode morsels concurrently and the batches are
/// emitted in morsel order, so results are identical at every parallelism
/// level. Bytes are metered from the reader's own accounting (footer bytes
/// on open, projected chunk lengths per row group), making `bytes_scanned`
/// exact and independent of thread interleaving.
pub fn execute_scan(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    filters: &[BoundExpr],
    output_schema: &SchemaRef,
    out: &mut Vec<RecordBatch>,
) -> Result<()> {
    execute_scan_with(
        ctx,
        paths,
        projection,
        zone_predicates,
        filters,
        output_schema,
        out,
        apply_filters,
    )
}

/// Scan with an explicit residual-filter implementation, so the retained
/// scalar reference path (`scalar::execute`) shares the exact same morsel
/// fan-out and byte metering while filtering row-at-a-time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_scan_with(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    filters: &[BoundExpr],
    output_schema: &SchemaRef,
    out: &mut Vec<RecordBatch>,
    apply: fn(&[BoundExpr], RecordBatch) -> Result<RecordBatch>,
) -> Result<()> {
    // Open and prune every file up front; morsels index into `readers`.
    let mut readers = Vec::with_capacity(paths.len());
    let mut morsels: Vec<(usize, usize)> = Vec::new();
    for (fi, path) in paths.iter().enumerate() {
        let reader = open_metered(ctx, path)?;
        let retained = reader.prune_row_groups(zone_predicates);
        ctx.metrics
            .add_row_groups(reader.num_row_groups() as u64, retained.len() as u64);
        morsels.extend(retained.into_iter().map(|rg| (fi, rg)));
        readers.push(reader);
    }

    let batches = parallel::run_indexed(morsels.len(), ctx.parallelism, |i| {
        let (fi, rg) = morsels[i];
        let reader = &readers[fi];
        // One `morsel` span per (file, row group) unit of work; workers on
        // any thread attach to the enclosing scan span. The `bytes`
        // attribute carries the morsel's projected chunk bytes — the
        // billed quantity.
        let mut span = ctx.trace.span("morsel");
        let batch = reader.read_row_group(rg, Some(projection))?;
        let rows = batch.num_rows() as u64;
        let batch = apply(filters, batch)?;
        let bytes = reader.row_group_bytes(rg, Some(projection));
        if span.enabled() {
            span.record_u64("row_group", rg as u64);
            span.record_u64("rows", rows);
            span.record_u64("bytes", bytes);
        }
        ctx.metrics.add_scan(bytes, rows);
        ctx.metrics.add_produced(batch.num_rows() as u64);
        Ok(batch)
    })?;

    out.extend(batches.into_iter().filter(|b| b.num_rows() > 0));
    // Preserve the schema even when nothing matched, so downstream operators
    // never see a schema-less empty result.
    if out.is_empty() {
        out.push(RecordBatch::empty(output_schema.clone()));
    }
    Ok(())
}

/// Apply residual row-level filters (a conjunction) to one batch: one fused
/// selection mask over the original batch, one `filter` materialization —
/// no intermediate filtered batches between conjuncts.
pub fn apply_filters(filters: &[BoundExpr], batch: RecordBatch) -> Result<RecordBatch> {
    if filters.is_empty() || batch.num_rows() == 0 {
        return Ok(batch);
    }
    let mask = fused_filter_mask(filters, &batch)?;
    batch.filter(&mask)
}
