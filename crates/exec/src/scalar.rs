//! Row-at-a-time reference implementations of the post-scan operators.
//!
//! This is the pre-vectorization execution path, retained verbatim as a
//! differential oracle: `scalar::execute` runs a physical plan through
//! `Vec<Value>`-keyed hash tables, per-row builder pushes, and per-filter
//! mask/filter passes, with identical scan metering to the vectorized
//! engine. `tests/vectorized_differential.rs` asserts the two paths produce
//! bit-identical rows, row order, and billed bytes on every TPC-H template.
//! It is not wired into any production code path.

use crate::aggregate::{partition_batches, GroupState};
use crate::context::ExecContext;
use crate::evaluate::{eval_row, evaluate, BatchRow};
use crate::join::RowSink;
use crate::parallel;
use crate::scan::{execute_scan_with, open_metered};
use crate::sort::execute_limit;
use pixels_common::{ColumnBuilder, RecordBatch, Result, SchemaRef, Value};
use pixels_planner::eval::{eval_expr, NoRow};
use pixels_planner::{AggExpr, BoundExpr, PhysicalPlan};
use pixels_sql::ast::JoinType;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Execute a plan entirely on the scalar operator implementations. Scans
/// share the vectorized engine's morsel fan-out and byte metering (the
/// billed quantity is identical by construction); every post-scan operator
/// is the row-at-a-time original.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<RecordBatch>> {
    match plan {
        PhysicalPlan::Scan {
            paths,
            projection,
            zone_predicates,
            filters,
            output_schema,
            ..
        } => {
            let mut out = Vec::new();
            execute_scan_with(
                ctx,
                paths,
                projection,
                zone_predicates,
                filters,
                output_schema,
                &mut out,
                apply_filters,
            )?;
            Ok(out)
        }
        PhysicalPlan::MaterializedScan { path, .. } => {
            let reader = open_metered(ctx, path)?;
            let batches = reader.read_all(None, &[])?;
            let rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
            let bytes: u64 = (0..reader.num_row_groups())
                .map(|rg| reader.row_group_bytes(rg, None))
                .sum();
            ctx.metrics.add_scan(bytes, rows);
            Ok(batches)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batches = execute(input, ctx)?;
            let filtered = parallel::run_indexed(batches.len(), ctx.parallelism, |i| {
                let b = &batches[i];
                let mask = predicate_mask(predicate, b)?;
                b.filter(&mask)
            })?;
            let mut out: Vec<RecordBatch> =
                filtered.into_iter().filter(|f| f.num_rows() > 0).collect();
            if out.is_empty() {
                out.push(RecordBatch::empty(input.schema()));
            }
            Ok(out)
        }
        PhysicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let batches = execute(input, ctx)?;
            let mut out = parallel::run_indexed(batches.len(), ctx.parallelism, |i| {
                let columns = exprs
                    .iter()
                    .map(|e| evaluate(e, &batches[i]))
                    .collect::<Result<Vec<_>>>()?;
                RecordBatch::try_new(output_schema.clone(), columns)
            })?;
            if out.is_empty() {
                out.push(RecordBatch::empty(output_schema.clone()));
            }
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            output_schema,
        } => {
            let lb = execute(left, ctx)?;
            let rb = execute(right, ctx)?;
            let left_width = left.schema().len();
            execute_join(
                &lb,
                &rb,
                *join_type,
                left_keys,
                right_keys,
                residual.as_ref(),
                output_schema,
                left_width,
                ctx.batch_size,
            )
        }
        PhysicalPlan::HashAggregate {
            input,
            group_exprs,
            aggs,
            output_schema,
        } => {
            let batches = execute(input, ctx)?;
            execute_aggregate(&batches, group_exprs, aggs, output_schema, ctx.parallelism)
        }
        PhysicalPlan::Distinct { input } => {
            let batches = execute(input, ctx)?;
            execute_distinct(&batches)
        }
        PhysicalPlan::Sort { input, keys } => {
            let batches = execute(input, ctx)?;
            execute_sort(&batches, keys, ctx.batch_size)
        }
        PhysicalPlan::TopK { input, keys, fetch } => {
            let batches = execute(input, ctx)?;
            execute_topk(&batches, keys, *fetch, ctx.batch_size)
        }
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let batches = execute(input, ctx)?;
            execute_limit(batches, *limit, *offset)
        }
        PhysicalPlan::Values { schema, rows } => {
            let mut sink = RowSink::new(schema.clone(), ctx.batch_size);
            for row in rows {
                let values: Vec<Value> = row
                    .iter()
                    .map(|e| eval_expr(e, &NoRow))
                    .collect::<Result<_>>()?;
                let adapted: Vec<Value> = values
                    .iter()
                    .zip(schema.fields())
                    .map(|(v, f)| {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            v.cast_to(f.data_type)
                        }
                    })
                    .collect::<Result<_>>()?;
                sink.push(adapted)?;
            }
            let mut batches = sink.finish()?;
            if batches.is_empty() {
                batches.push(RecordBatch::empty(schema.clone()));
            }
            Ok(batches)
        }
    }
}

/// Pure per-row predicate evaluation — no vectorized fast paths at all.
pub fn predicate_mask(expr: &BoundExpr, batch: &RecordBatch) -> Result<Vec<bool>> {
    let mut mask = Vec::with_capacity(batch.num_rows());
    for row in 0..batch.num_rows() {
        let v = eval_expr(expr, &BatchRow { batch, row })?;
        mask.push(matches!(v, Value::Boolean(true)));
    }
    Ok(mask)
}

/// Sequential filter chain: one mask + one materialized batch per filter.
pub fn apply_filters(filters: &[BoundExpr], batch: RecordBatch) -> Result<RecordBatch> {
    let mut batch = batch;
    for f in filters {
        if batch.num_rows() == 0 {
            break;
        }
        let mask = predicate_mask(f, &batch)?;
        batch = batch.filter(&mask)?;
    }
    Ok(batch)
}

/// Row-at-a-time hash join keyed on `Vec<Value>`, output assembled through
/// per-row builder pushes.
#[allow(clippy::too_many_arguments)]
pub fn execute_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_width: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if join_type == JoinType::Cross || left_keys.is_empty() {
        return cross_join(
            left_batches,
            right_batches,
            join_type,
            residual,
            output_schema,
            batch_size,
        );
    }

    // Build phase: hash the right input on its key values.
    let mut build_rows: Vec<Vec<Value>> = Vec::new();
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for batch in right_batches {
        let key_cols: Vec<_> = right_keys
            .iter()
            .map(|k| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            let idx = build_rows.len();
            build_rows.push(batch.row(row));
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never participate in matches
            }
            table.entry(key).or_default().push(idx);
        }
    }
    let mut build_matched = vec![false; build_rows.len()];
    let right_w = output_schema.len() - left_width;

    let mut sink = RowSink::new(output_schema.clone(), batch_size);

    // Probe phase.
    for batch in left_batches {
        let key_cols: Vec<_> = left_keys
            .iter()
            .map(|k| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            let probe_row = batch.row(row);
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &b in candidates {
                        let mut combined = probe_row.clone();
                        combined.extend(build_rows[b].iter().cloned());
                        if let Some(res) = residual {
                            if !matches!(eval_row(res, &combined)?, Value::Boolean(true)) {
                                continue;
                            }
                        }
                        matched = true;
                        build_matched[b] = true;
                        sink.push(combined)?;
                    }
                }
            }
            if !matched && join_type == JoinType::Left {
                let mut combined = probe_row;
                combined.extend(std::iter::repeat_n(Value::Null, right_w));
                sink.push(combined)?;
            }
        }
    }

    // Right outer: emit unmatched build rows null-extended on the left.
    if join_type == JoinType::Right {
        for (b, matched) in build_matched.iter().enumerate() {
            if !matched {
                let mut combined: Vec<Value> =
                    std::iter::repeat_n(Value::Null, left_width).collect();
                combined.extend(build_rows[b].iter().cloned());
                sink.push(combined)?;
            }
        }
    }
    sink.finish()
}

fn cross_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if !matches!(join_type, JoinType::Cross | JoinType::Inner) {
        return Err(pixels_common::Error::Exec(
            "outer join without equi-keys is not supported".into(),
        ));
    }
    let mut sink = RowSink::new(output_schema.clone(), batch_size);
    for lb in left_batches {
        for lrow in 0..lb.num_rows() {
            let l = lb.row(lrow);
            for rb in right_batches {
                for rrow in 0..rb.num_rows() {
                    let mut combined = l.clone();
                    combined.extend(rb.row(rrow));
                    if let Some(res) = residual {
                        if !matches!(eval_row(res, &combined)?, Value::Boolean(true)) {
                            continue;
                        }
                    }
                    sink.push(combined)?;
                }
            }
        }
    }
    sink.finish()
}

/// One worker's aggregation state, keyed the original way.
struct Partial {
    index: HashMap<Vec<Value>, usize>,
    keys: Vec<Vec<Value>>,
    states: Vec<GroupState>,
}

fn build_partial(
    input: &[&RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
) -> Result<Partial> {
    let mut partial = Partial {
        index: HashMap::new(),
        keys: Vec::new(),
        states: Vec::new(),
    };
    for &batch in input {
        let group_cols: Vec<_> = group_exprs
            .iter()
            .map(|g| evaluate(g, batch))
            .collect::<Result<_>>()?;
        let agg_cols: Vec<Option<pixels_common::Column>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|arg| evaluate(arg, batch)).transpose())
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = group_cols.iter().map(|c| c.value(row)).collect();
            let gi = match partial.index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = partial.states.len();
                    partial.index.insert(key.clone(), i);
                    partial.keys.push(key);
                    partial.states.push(GroupState::new(aggs));
                    i
                }
            };
            partial.states[gi].consume_row(&agg_cols, row)?;
        }
    }
    Ok(partial)
}

fn merge_partial(acc: &mut Partial, part: Partial) -> Result<()> {
    for (key, gstate) in part.keys.into_iter().zip(part.states) {
        match acc.index.get(&key) {
            Some(&gi) => {
                let target = &mut acc.states[gi];
                for (ai, incoming) in gstate.states.iter().enumerate() {
                    match (gstate.distinct[ai].as_ref(), &mut target.distinct[ai]) {
                        (Some(ds), Some(tds)) => {
                            for v in &ds.order {
                                if tds.insert(v) {
                                    target.states[ai].update(v)?;
                                }
                            }
                        }
                        _ => target.states[ai].merge(incoming)?,
                    }
                }
            }
            None => {
                acc.index.insert(key.clone(), acc.states.len());
                acc.keys.push(key);
                acc.states.push(gstate);
            }
        }
    }
    Ok(())
}

/// Row-at-a-time hash aggregate with the same chunked-partial structure as
/// the vectorized path (so float partial sums reassociate identically at
/// equal parallelism).
pub fn execute_aggregate(
    input: &[RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
    parallelism: usize,
) -> Result<Vec<RecordBatch>> {
    let chunks = partition_batches(input, parallelism);
    let partials = parallel::run_indexed(chunks.len(), parallelism, |i| {
        build_partial(&chunks[i], group_exprs, aggs)
    })?;
    let mut acc = Partial {
        index: HashMap::new(),
        keys: Vec::new(),
        states: Vec::new(),
    };
    let mut partials = partials.into_iter();
    if let Some(first) = partials.next() {
        acc = first;
    }
    for part in partials {
        merge_partial(&mut acc, part)?;
    }

    // Global aggregate over zero rows still yields one output row.
    if group_exprs.is_empty() && acc.states.is_empty() {
        acc.keys.push(Vec::new());
        acc.states.push(GroupState::new(aggs));
    }

    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for (key, state) in acc.keys.iter().zip(&acc.states) {
        for (b, v) in builders.iter_mut().zip(key.iter()) {
            b.push(v)?;
        }
        for (ai, s) in state.states.iter().enumerate() {
            let v = s.finish();
            let b = &mut builders[group_exprs.len() + ai];
            if v.is_null() {
                b.push_null();
            } else {
                b.push(&v)?;
            }
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::try_new(output_schema.clone(), columns)?])
}

/// Hash-based DISTINCT preserving first-appearance order, keyed on whole
/// `Vec<Value>` rows.
pub fn execute_distinct(input: &[RecordBatch]) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let schema = first.schema().clone();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut sink = RowSink::new(schema, 8192);
    for batch in input {
        for row in 0..batch.num_rows() {
            let r = batch.row(row);
            if seen.insert(r.clone()) {
                sink.push(r)?;
            }
        }
    }
    sink.finish()
}

/// Compare two key tuples under the given ascending flags. NULLs order
/// first ascending (so last descending), matching `Value::total_cmp`.
fn compare_keys(a: &[Value], b: &[Value], dirs: &[bool]) -> Ordering {
    for ((x, y), &asc) in a.iter().zip(b).zip(dirs) {
        let ord = x.total_cmp(y);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn materialize_keys(
    batches: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
    let mut rows = Vec::new();
    for batch in batches {
        let key_cols: Vec<_> = keys
            .iter()
            .map(|(k, _)| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            rows.push((key, batch.row(row)));
        }
    }
    Ok(rows)
}

/// Full sort over materialized `(key, row)` tuples.
pub fn execute_sort(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let dirs: Vec<bool> = keys.iter().map(|&(_, asc)| asc).collect();
    let mut rows = materialize_keys(input, keys)?;
    rows.sort_by(|a, b| compare_keys(&a.0, &b.0, &dirs));
    let mut sink = RowSink::new(first.schema().clone(), batch_size);
    for (_, row) in rows {
        sink.push(row)?;
    }
    sink.finish()
}

struct HeapRow {
    key: Vec<Value>,
    row: Vec<Value>,
    seq: usize,
}

/// Top-k selection over materialized row tuples with a bounded max-heap.
pub fn execute_topk(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    fetch: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    if fetch == 0 {
        return Ok(vec![RecordBatch::empty(first.schema().clone())]);
    }
    let dirs: Vec<bool> = keys.iter().map(|&(_, asc)| asc).collect();

    // Wrap rows so BinaryHeap's max == worst row in the retained set; ties
    // break by arrival order to keep the sort stable.
    let mut heap: BinaryHeap<Wrapped> = BinaryHeap::with_capacity(fetch + 1);
    struct Wrapped {
        item: HeapRow,
        dirs: std::rc::Rc<Vec<bool>>,
    }
    impl PartialEq for Wrapped {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Wrapped {}
    impl Ord for Wrapped {
        fn cmp(&self, other: &Self) -> Ordering {
            compare_keys(&self.item.key, &other.item.key, &self.dirs)
                .then(self.item.seq.cmp(&other.item.seq))
        }
    }
    impl PartialOrd for Wrapped {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let dirs = std::rc::Rc::new(dirs);
    let mut seq = 0usize;
    for batch in input {
        let key_cols: Vec<_> = keys
            .iter()
            .map(|(k, _)| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            heap.push(Wrapped {
                item: HeapRow {
                    key,
                    row: batch.row(row),
                    seq,
                },
                dirs: dirs.clone(),
            });
            seq += 1;
            if heap.len() > fetch {
                heap.pop(); // evict the worst retained row
            }
        }
    }
    let mut rows: Vec<HeapRow> = heap.into_iter().map(|w| w.item).collect();
    rows.sort_by(|a, b| compare_keys(&a.key, &b.key, &dirs).then(a.seq.cmp(&b.seq)));
    let mut sink = RowSink::new(first.schema().clone(), batch_size);
    for r in rows {
        sink.push(r.row)?;
    }
    sink.finish()
}
