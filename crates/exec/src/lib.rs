//! `pixels-exec` — the query execution engine of PixelsDB.
//!
//! Executes [`pixels_planner::PhysicalPlan`]s over Pixels tables in object
//! storage: scans with projection/zone-map pushdown, hash joins, hash
//! aggregation (with DISTINCT), sorting, top-k, and limits. Scans, filters,
//! projections, and partial aggregation are morsel-driven parallel (see
//! [`parallel`]), controlled by [`ExecContext::parallelism`]. Expression
//! semantics are shared with the planner's constant folder through
//! `pixels_planner::eval`, so plans always agree with runtime behaviour.
//!
//! The engine also provides [`materialize`], used by the CF acceleration
//! path to write a sub-plan's result back to object storage as a
//! materialized view.

pub mod aggregate;
pub mod batch;
pub mod context;
pub mod encoded;
pub mod engine;
pub mod evaluate;
pub mod exchange;
pub mod join;
pub mod keys;
pub mod parallel;
pub mod prefetch;
pub mod scalar;
pub mod scan;
pub mod sort;

pub use context::{
    default_parallelism, ExecContext, ExecMetrics, ExecMetricsSnapshot, ScanPipelineSnapshot,
};
pub use engine::{execute, execute_collect, operator_name};
pub use evaluate::{evaluate, fused_filter_mask, predicate_mask};
pub use exchange::{ExchangeStats, JoinSide};
pub use prefetch::PrefetchStats;

use pixels_common::{RecordBatch, Result, SchemaRef};
use pixels_storage::{ObjectStore, PixelsWriter};

/// Write batches to `path` in Pixels format (used for CF-produced
/// intermediate results). Returns the object's size in bytes.
pub fn materialize(
    store: &dyn ObjectStore,
    path: &str,
    schema: SchemaRef,
    batches: &[RecordBatch],
) -> Result<u64> {
    let mut w = PixelsWriter::new(store, path, schema);
    for b in batches {
        w.write_batch(b)?;
    }
    w.finish()
}

/// Convenience for tests and clients: run SQL end-to-end against a catalog
/// and store, returning a single result batch.
pub fn run_query(
    catalog: &pixels_catalog::Catalog,
    store: pixels_storage::ObjectStoreRef,
    default_db: &str,
    sql: &str,
) -> Result<RecordBatch> {
    let plan = pixels_planner::plan_query(catalog, default_db, sql)?;
    let ctx = ExecContext::new(store);
    execute_collect(&plan, &ctx)
}
