//! Hash join: builds a hash table on the right input, probes with the left.
//!
//! Supports inner, left-outer, right-outer, and cross joins with optional
//! residual (non-equi) predicates. SQL semantics: NULL keys never match.
//!
//! The equi-join path is vectorized: key columns are normalized into the
//! compact byte-row encoding from [`crate::keys`] (hashed with FNV-1a,
//! compared by memcmp — no per-row `Vec<Value>` allocation or SipHash), and
//! output is late-materialized — the probe phase only records
//! `(left_row, right_row)` match index vectors, and batches are assembled
//! with one gather per column instead of per-row builder pushes. Row order
//! is identical to the row-at-a-time implementation: probe rows in input
//! order, each with its matches in build-insertion order, unmatched
//! left-outer rows inline, unmatched right-outer rows as a tail.

use crate::evaluate::{eval_row, evaluate_ref, predicate_mask};
use crate::keys::{KeyEncoder, KeyTable};
use pixels_common::{Column, ColumnBuilder, DataType, RecordBatch, Result, SchemaRef, Value};
use pixels_planner::BoundExpr;
use pixels_sql::ast::JoinType;
use std::borrow::Cow;

/// Sentinel for "end of duplicate chain" in the build table.
const NONE: u32 = u32::MAX;

/// Execute a hash join between materialized inputs.
#[allow(clippy::too_many_arguments)]
pub fn execute_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_width: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if join_type == JoinType::Cross || left_keys.is_empty() {
        return cross_join(
            left_batches,
            right_batches,
            join_type,
            residual,
            output_schema,
            batch_size,
        );
    }

    // Coalesce each side once so match indices are global row numbers and
    // output columns come from a single gather source.
    let left_all = coalesce(left_batches)?;
    let right_all = coalesce(right_batches)?;
    let (fl, fr) = join_match_indices(
        left_all.as_deref(),
        right_all.as_deref(),
        join_type,
        left_keys,
        right_keys,
        residual,
        output_schema,
        left_width,
    )?;

    // Materialize in batch_size chunks, one gather per column per chunk.
    let mut out = Vec::with_capacity(fl.len().div_ceil(batch_size.max(1)));
    let chunk = batch_size.max(1);
    for (cl, cr) in fl.chunks(chunk).zip(fr.chunks(chunk)) {
        out.push(assemble(
            output_schema,
            left_width,
            left_all.as_deref(),
            cl,
            right_all.as_deref(),
            cr,
        )?);
    }
    Ok(out)
}

/// The equi-join index core: given coalesced sides, produce the
/// `(left_row, right_row)` gather-index vectors (−1 ⇒ null-extended slot) in
/// exactly the order the row-at-a-time join emitted rows: probe rows in
/// input order, matches in build-insertion order, unmatched left-outer rows
/// inline, unmatched right-outer rows as a tail in build order. Shared with
/// the exchange partitioned-join path, which runs it per partition and maps
/// the local indices back through per-partition row-origin vectors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_match_indices(
    left_all: Option<&RecordBatch>,
    right_all: Option<&RecordBatch>,
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_width: usize,
) -> Result<(Vec<i64>, Vec<i64>)> {
    let build_rows = right_all.map_or(0, |b| b.num_rows());

    // Build phase: intern the encoded right-side keys; duplicate rows for a
    // key form a chain in build-insertion order (head/tail/next), which is
    // the candidate order the row-at-a-time join produced.
    let mut table = KeyTable::new();
    let mut heads: Vec<u32> = Vec::new();
    let mut tails: Vec<u32> = Vec::new();
    let mut next = vec![NONE; build_rows];
    let mut buf = Vec::new();
    if let Some(rb) = right_all {
        let key_cols: Vec<Cow<Column>> = right_keys
            .iter()
            .map(|k| evaluate_ref(k, rb))
            .collect::<Result<_>>()?;
        let enc = KeyEncoder::new(&key_types(right_keys));
        for row in 0..rb.num_rows() {
            if enc.encode_row(&key_cols, row, &mut buf) {
                continue; // NULL keys never participate in matches
            }
            let (entry, is_new) = table.intern(&buf);
            if is_new {
                heads.push(row as u32);
                tails.push(row as u32);
            } else {
                next[tails[entry] as usize] = row as u32;
                tails[entry] = row as u32;
            }
        }
    }

    let mut build_matched = vec![false; build_rows];
    // Late-materialized output: gather indices per side; -1 marks a
    // null-extended slot (outer-join padding).
    let mut fl: Vec<i64> = Vec::new();
    let mut fr: Vec<i64> = Vec::new();

    // Probe phase.
    if let Some(lb) = left_all {
        let key_cols: Vec<Cow<Column>> = left_keys
            .iter()
            .map(|k| evaluate_ref(k, lb))
            .collect::<Result<_>>()?;
        let enc = KeyEncoder::new(&key_types(left_keys));
        if let Some(res) = residual {
            // With a residual, collect all key-matched candidate pairs
            // first, evaluate the residual as one mask over an assembled
            // candidate batch, then keep the surviving pairs.
            let mut cand_l: Vec<i64> = Vec::new();
            let mut cand_r: Vec<i64> = Vec::new();
            let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(lb.num_rows());
            for row in 0..lb.num_rows() {
                let start = cand_l.len() as u32;
                if !enc.encode_row(&key_cols, row, &mut buf) {
                    if let Some(entry) = table.lookup(&buf) {
                        let mut b = heads[entry];
                        while b != NONE {
                            cand_l.push(row as i64);
                            cand_r.push(b as i64);
                            b = next[b as usize];
                        }
                    }
                }
                ranges.push((start, cand_l.len() as u32));
            }
            let keep = if cand_l.is_empty() {
                Vec::new()
            } else {
                let cand = assemble(
                    output_schema,
                    left_width,
                    left_all,
                    &cand_l,
                    right_all,
                    &cand_r,
                )?;
                predicate_mask(res, &cand)?
            };
            for (row, &(start, end)) in ranges.iter().enumerate() {
                let mut matched = false;
                for ci in start as usize..end as usize {
                    if keep[ci] {
                        matched = true;
                        build_matched[cand_r[ci] as usize] = true;
                        fl.push(row as i64);
                        fr.push(cand_r[ci]);
                    }
                }
                if !matched && join_type == JoinType::Left {
                    fl.push(row as i64);
                    fr.push(-1);
                }
            }
        } else {
            for row in 0..lb.num_rows() {
                let mut matched = false;
                if !enc.encode_row(&key_cols, row, &mut buf) {
                    if let Some(entry) = table.lookup(&buf) {
                        let mut b = heads[entry];
                        while b != NONE {
                            matched = true;
                            build_matched[b as usize] = true;
                            fl.push(row as i64);
                            fr.push(b as i64);
                            b = next[b as usize];
                        }
                    }
                }
                if !matched && join_type == JoinType::Left {
                    fl.push(row as i64);
                    fr.push(-1);
                }
            }
        }
    }

    // Right outer: emit unmatched build rows null-extended on the left.
    if join_type == JoinType::Right {
        for (b, matched) in build_matched.iter().enumerate() {
            if !matched {
                fl.push(-1);
                fr.push(b as i64);
            }
        }
    }
    Ok((fl, fr))
}

fn key_types(keys: &[BoundExpr]) -> Vec<DataType> {
    keys.iter().map(|k| k.data_type()).collect()
}

/// Concatenate a side's batches into one gather source. `None` when the
/// side has no batches at all; a borrowed single batch avoids the copy in
/// the common one-batch case.
pub(crate) fn coalesce(batches: &[RecordBatch]) -> Result<Option<Cow<'_, RecordBatch>>> {
    match batches {
        [] => Ok(None),
        [single] => Ok(Some(Cow::Borrowed(single))),
        many => Ok(Some(Cow::Owned(RecordBatch::concat(many)?))),
    }
}

/// Build an output batch by gathering `li`/`ri` (−1 ⇒ NULL) from the two
/// sides. Gathered columns are width-adapted to the output field types the
/// same way the row-at-a-time sink's `ColumnBuilder::push` widened values.
pub(crate) fn assemble(
    output_schema: &SchemaRef,
    left_width: usize,
    left: Option<&RecordBatch>,
    li: &[i64],
    right: Option<&RecordBatch>,
    ri: &[i64],
) -> Result<RecordBatch> {
    let mut columns = Vec::with_capacity(output_schema.len());
    for (c, field) in output_schema.fields().iter().enumerate() {
        let (side, indices, idx) = if c < left_width {
            (left, li, c)
        } else {
            (right, ri, c - left_width)
        };
        let col = match side {
            Some(b) => b.column(idx).gather_or_null(indices)?,
            // A side with no batches can only be referenced by -1 slots.
            None => Column::nulls(field.data_type, indices.len()),
        };
        columns.push(adapt_to(col, field.data_type)?);
    }
    RecordBatch::try_new(output_schema.clone(), columns)
}

/// Widen a gathered column to the declared output type when the source
/// column was narrower (e.g. Int32 input under an Int64 output field) —
/// mirroring the implicit widening `ColumnBuilder::push` performed in the
/// row-at-a-time path. No-op in the common equal-type case.
fn adapt_to(col: Column, ty: DataType) -> Result<Column> {
    if col.data_type() == ty {
        return Ok(col);
    }
    let mut b = ColumnBuilder::with_capacity(ty, col.len());
    for i in 0..col.len() {
        let v = col.value(i);
        if v.is_null() {
            b.push_null();
        } else {
            b.push(&v)?;
        }
    }
    Ok(b.finish())
}

fn cross_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if !matches!(join_type, JoinType::Cross | JoinType::Inner) {
        return Err(pixels_common::Error::Exec(
            "outer join without equi-keys is not supported".into(),
        ));
    }
    let mut sink = RowSink::new(output_schema.clone(), batch_size);
    for lb in left_batches {
        for lrow in 0..lb.num_rows() {
            let l = lb.row(lrow);
            for rb in right_batches {
                for rrow in 0..rb.num_rows() {
                    let mut combined = l.clone();
                    combined.extend(rb.row(rrow));
                    if let Some(res) = residual {
                        if !matches!(eval_row(res, &combined)?, Value::Boolean(true)) {
                            continue;
                        }
                    }
                    sink.push(combined)?;
                }
            }
        }
    }
    sink.finish()
}

/// Accumulates rows into fixed-size record batches (used by the cross-join
/// and `VALUES` paths, and by the scalar reference operators).
pub struct RowSink {
    schema: SchemaRef,
    builders: Vec<ColumnBuilder>,
    batch_size: usize,
    rows_in_batch: usize,
    batches: Vec<RecordBatch>,
}

impl RowSink {
    pub fn new(schema: SchemaRef, batch_size: usize) -> Self {
        let batch_size = batch_size.max(1);
        let builders = Self::fresh_builders(&schema, batch_size);
        RowSink {
            schema,
            builders,
            batch_size,
            rows_in_batch: 0,
            batches: Vec::new(),
        }
    }

    /// Builders pre-reserved for a full batch (capped so tiny `VALUES`
    /// results don't allocate 8k slots per column).
    fn fresh_builders(schema: &SchemaRef, batch_size: usize) -> Vec<ColumnBuilder> {
        let cap = batch_size.min(1024);
        schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.data_type, cap))
            .collect()
    }

    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        debug_assert_eq!(row.len(), self.builders.len());
        for (b, v) in self.builders.iter_mut().zip(&row) {
            b.push(v)?;
        }
        self.rows_in_batch += 1;
        if self.rows_in_batch >= self.batch_size {
            self.cut()?;
        }
        Ok(())
    }

    fn cut(&mut self) -> Result<()> {
        if self.rows_in_batch == 0 {
            return Ok(());
        }
        let builders = std::mem::replace(
            &mut self.builders,
            Self::fresh_builders(&self.schema, self.batch_size),
        );
        let columns = builders.into_iter().map(|b| b.finish()).collect();
        self.batches
            .push(RecordBatch::try_new(self.schema.clone(), columns)?);
        self.rows_in_batch = 0;
        Ok(())
    }

    pub fn finish(mut self) -> Result<Vec<RecordBatch>> {
        self.cut()?;
        Ok(self.batches)
    }
}
