//! Hash join: builds a hash table on the right input, probes with the left.
//!
//! Supports inner, left-outer, right-outer, and cross joins with optional
//! residual (non-equi) predicates. SQL semantics: NULL keys never match.

use crate::evaluate::{eval_row, evaluate};
use pixels_common::{ColumnBuilder, RecordBatch, Result, SchemaRef, Value};
use pixels_planner::BoundExpr;
use pixels_sql::ast::JoinType;
use std::collections::HashMap;

/// Execute a hash join between materialized inputs.
#[allow(clippy::too_many_arguments)]
pub fn execute_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_width: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if join_type == JoinType::Cross || left_keys.is_empty() {
        return cross_join(
            left_batches,
            right_batches,
            join_type,
            residual,
            output_schema,
            batch_size,
        );
    }

    // Build phase: hash the right input on its key values.
    let mut build_rows: Vec<Vec<Value>> = Vec::new();
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for batch in right_batches {
        let key_cols: Vec<_> = right_keys
            .iter()
            .map(|k| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            let idx = build_rows.len();
            build_rows.push(batch.row(row));
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never participate in matches
            }
            table.entry(key).or_default().push(idx);
        }
    }
    let mut build_matched = vec![false; build_rows.len()];
    let right_w = output_schema.len() - left_width;

    let mut sink = RowSink::new(output_schema.clone(), batch_size);

    // Probe phase.
    for batch in left_batches {
        let key_cols: Vec<_> = left_keys
            .iter()
            .map(|k| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            let probe_row = batch.row(row);
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &b in candidates {
                        let mut combined = probe_row.clone();
                        combined.extend(build_rows[b].iter().cloned());
                        if let Some(res) = residual {
                            if !matches!(eval_row(res, &combined)?, Value::Boolean(true)) {
                                continue;
                            }
                        }
                        matched = true;
                        build_matched[b] = true;
                        sink.push(combined)?;
                    }
                }
            }
            if !matched && join_type == JoinType::Left {
                let mut combined = probe_row;
                combined.extend(std::iter::repeat_n(Value::Null, right_w));
                sink.push(combined)?;
            }
        }
    }

    // Right outer: emit unmatched build rows null-extended on the left.
    if join_type == JoinType::Right {
        for (b, matched) in build_matched.iter().enumerate() {
            if !matched {
                let mut combined: Vec<Value> =
                    std::iter::repeat_n(Value::Null, left_width).collect();
                combined.extend(build_rows[b].iter().cloned());
                sink.push(combined)?;
            }
        }
    }
    sink.finish()
}

fn cross_join(
    left_batches: &[RecordBatch],
    right_batches: &[RecordBatch],
    join_type: JoinType,
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if !matches!(join_type, JoinType::Cross | JoinType::Inner) {
        return Err(pixels_common::Error::Exec(
            "outer join without equi-keys is not supported".into(),
        ));
    }
    let mut sink = RowSink::new(output_schema.clone(), batch_size);
    for lb in left_batches {
        for lrow in 0..lb.num_rows() {
            let l = lb.row(lrow);
            for rb in right_batches {
                for rrow in 0..rb.num_rows() {
                    let mut combined = l.clone();
                    combined.extend(rb.row(rrow));
                    if let Some(res) = residual {
                        if !matches!(eval_row(res, &combined)?, Value::Boolean(true)) {
                            continue;
                        }
                    }
                    sink.push(combined)?;
                }
            }
        }
    }
    sink.finish()
}

/// Accumulates rows into fixed-size record batches.
pub struct RowSink {
    schema: SchemaRef,
    builders: Vec<ColumnBuilder>,
    batch_size: usize,
    rows_in_batch: usize,
    batches: Vec<RecordBatch>,
}

impl RowSink {
    pub fn new(schema: SchemaRef, batch_size: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        RowSink {
            schema,
            builders,
            batch_size: batch_size.max(1),
            rows_in_batch: 0,
            batches: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        debug_assert_eq!(row.len(), self.builders.len());
        for (b, v) in self.builders.iter_mut().zip(&row) {
            b.push(v)?;
        }
        self.rows_in_batch += 1;
        if self.rows_in_batch >= self.batch_size {
            self.cut()?;
        }
        Ok(())
    }

    fn cut(&mut self) -> Result<()> {
        if self.rows_in_batch == 0 {
            return Ok(());
        }
        let builders = std::mem::replace(
            &mut self.builders,
            self.schema
                .fields()
                .iter()
                .map(|f| ColumnBuilder::new(f.data_type))
                .collect(),
        );
        let columns = builders.into_iter().map(|b| b.finish()).collect();
        self.batches
            .push(RecordBatch::try_new(self.schema.clone(), columns)?);
        self.rows_in_batch = 0;
        Ok(())
    }

    pub fn finish(mut self) -> Result<Vec<RecordBatch>> {
        self.cut()?;
        Ok(self.batches)
    }
}
