//! Execution context and per-query metrics.

use pixels_storage::ObjectStoreRef;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared state an executing plan needs: the object store plus a metrics
/// sink. Cheap to clone.
#[derive(Clone)]
pub struct ExecContext {
    pub store: ObjectStoreRef,
    pub metrics: Arc<ExecMetrics>,
    /// Maximum rows per output batch produced by operators.
    pub batch_size: usize,
}

impl ExecContext {
    pub fn new(store: ObjectStoreRef) -> Self {
        ExecContext {
            store,
            metrics: Arc::new(ExecMetrics::default()),
            batch_size: 8192,
        }
    }
}

/// Counters describing what a query actually did. `bytes_scanned` is the
/// exact number of column-chunk and footer bytes fetched from object storage
/// — the quantity the query server bills at $/TB.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    pub bytes_scanned: AtomicU64,
    pub rows_scanned: AtomicU64,
    pub rows_produced: AtomicU64,
    pub row_groups_total: AtomicU64,
    pub row_groups_read: AtomicU64,
}

/// Point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecMetricsSnapshot {
    pub bytes_scanned: u64,
    pub rows_scanned: u64,
    pub rows_produced: u64,
    pub row_groups_total: u64,
    pub row_groups_read: u64,
}

impl ExecMetrics {
    pub fn add_scan(&self, bytes: u64, rows: u64) {
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_row_groups(&self, total: u64, read: u64) {
        self.row_groups_total.fetch_add(total, Ordering::Relaxed);
        self.row_groups_read.fetch_add(read, Ordering::Relaxed);
    }

    pub fn add_produced(&self, rows: u64) {
        self.rows_produced.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ExecMetricsSnapshot {
        ExecMetricsSnapshot {
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_produced: self.rows_produced.load(Ordering::Relaxed),
            row_groups_total: self.row_groups_total.load(Ordering::Relaxed),
            row_groups_read: self.row_groups_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_storage::InMemoryObjectStore;

    #[test]
    fn metrics_accumulate() {
        let ctx = ExecContext::new(InMemoryObjectStore::shared());
        ctx.metrics.add_scan(100, 10);
        ctx.metrics.add_scan(50, 5);
        ctx.metrics.add_row_groups(4, 2);
        ctx.metrics.add_produced(7);
        let s = ctx.metrics.snapshot();
        assert_eq!(s.bytes_scanned, 150);
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.row_groups_total, 4);
        assert_eq!(s.row_groups_read, 2);
        assert_eq!(s.rows_produced, 7);
    }

    #[test]
    fn context_clone_shares_metrics() {
        let ctx = ExecContext::new(InMemoryObjectStore::shared());
        let ctx2 = ctx.clone();
        ctx2.metrics.add_produced(3);
        assert_eq!(ctx.metrics.snapshot().rows_produced, 3);
    }
}
