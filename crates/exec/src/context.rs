//! Execution context and per-query metrics.

use pixels_obs::{Span, TraceCtx};
use pixels_storage::{ChunkCache, FooterCache, ObjectStoreRef};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Worker threads to use when the caller does not say: every available core.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Shared state an executing plan needs: the object store, a metrics sink,
/// and the parallelism/caching knobs. Cheap to clone.
#[derive(Clone)]
pub struct ExecContext {
    pub store: ObjectStoreRef,
    pub metrics: Arc<ExecMetrics>,
    /// Maximum rows per output batch produced by operators.
    pub batch_size: usize,
    /// Worker threads for morsel-driven operators (scan, filter, project,
    /// partial aggregation). `1` forces the serial path, which reproduces
    /// single-threaded execution exactly; the default is every core.
    pub parallelism: usize,
    /// Footer/schema cache shared by every reader this context opens (and,
    /// when the caller shares one context-to-context, across queries).
    pub footer_cache: Arc<FooterCache>,
    /// Optional bounded cache of raw chunk bytes. Cache hits skip the store
    /// GET (and its latency) but bill exactly like a fetch — `bytes_scanned`
    /// is metered from chunk metadata, never from store counters.
    pub chunk_cache: Option<Arc<ChunkCache>>,
    /// How many fetched-but-unconsumed morsels the scan prefetcher may hold
    /// (double buffering = 2, the default). `0` disables prefetching.
    pub prefetch_depth: usize,
    /// Execute scans on encoded chunks (dictionary/RLE short cuts, chunk
    /// zone-map checks, late materialization). `false` restores the
    /// decode-everything path — kept as the benchmark baseline.
    pub encoded_scan: bool,
    /// Where in the query's trace this context executes: operators open
    /// child spans under it. Disabled by default — a disabled context makes
    /// every span operation a no-op.
    pub trace: TraceCtx,
}

impl ExecContext {
    pub fn new(store: ObjectStoreRef) -> Self {
        ExecContext {
            store,
            metrics: Arc::new(ExecMetrics::default()),
            batch_size: 8192,
            parallelism: default_parallelism(),
            footer_cache: FooterCache::shared(),
            chunk_cache: None,
            prefetch_depth: 2,
            encoded_scan: true,
            trace: TraceCtx::disabled(),
        }
    }

    /// Same context with a different worker count (`1` = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Same context sharing `cache` instead of a private footer cache.
    pub fn with_footer_cache(mut self, cache: Arc<FooterCache>) -> Self {
        self.footer_cache = cache;
        self
    }

    /// Same context sharing a chunk-data cache.
    pub fn with_chunk_cache(mut self, cache: Arc<ChunkCache>) -> Self {
        self.chunk_cache = Some(cache);
        self
    }

    /// Same context with a different prefetch depth (`0` = no prefetch).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Same context with encoded execution toggled. `false` is the
    /// decode-everything baseline.
    pub fn with_encoded_scan(mut self, enabled: bool) -> Self {
        self.encoded_scan = enabled;
        self
    }

    /// Same context opening spans under `trace`.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// Same context with spans parented under `span` — how the engine nests
    /// an operator's children beneath the operator's own span.
    pub fn under(&self, span: &Span) -> Self {
        let mut ctx = self.clone();
        ctx.trace = span.ctx();
        ctx
    }
}

/// Counters describing what a query actually did. `bytes_scanned` is the
/// exact number of footer and column-chunk bytes fetched from object storage
/// — the quantity the query server bills at $/TB. Footer-cache hits fetch
/// nothing and therefore bill nothing; they are counted separately.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    pub bytes_scanned: AtomicU64,
    /// The subset of `bytes_scanned` fetched at file open (footer/metadata
    /// bytes). On a warm reopen the footer cache absorbs these bytes — so
    /// `bytes_scanned - open_bytes` is exactly what a repeat of this query
    /// against warm caches would bill. The shared-work result cache bills
    /// repeats that amount.
    pub open_bytes: AtomicU64,
    pub rows_scanned: AtomicU64,
    pub rows_produced: AtomicU64,
    pub row_groups_total: AtomicU64,
    pub row_groups_read: AtomicU64,
    pub footer_cache_hits: AtomicU64,
    // Scan-pipeline counters. Kept out of [`ExecMetricsSnapshot`] on
    // purpose: that snapshot participates in engine-vs-simulator and
    // fault-vs-fault-free equality comparisons, and pipeline behaviour
    // (prefetch overlap, cache residency) legitimately varies without the
    // query's answer or bill changing. See [`ScanPipelineSnapshot`].
    pub prefetch_issued: AtomicU64,
    pub prefetch_hits: AtomicU64,
    pub prefetch_wasted: AtomicU64,
    pub chunk_cache_hits: AtomicU64,
    pub chunk_cache_misses: AtomicU64,
}

/// Point-in-time copy of the scan-pipeline counters (prefetcher + chunk
/// cache). Telemetry only: none of these affect results or billing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanPipelineSnapshot {
    /// Morsel fetches started by the prefetcher.
    pub prefetch_issued: u64,
    /// Morsels whose data was already resident when a worker asked.
    pub prefetch_hits: u64,
    /// Prefetched morsels never consumed (abort after an error).
    pub prefetch_wasted: u64,
    pub chunk_cache_hits: u64,
    pub chunk_cache_misses: u64,
}

/// Point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecMetricsSnapshot {
    pub bytes_scanned: u64,
    /// Footer/open bytes included in `bytes_scanned` (zero on warm reopens).
    pub open_bytes: u64,
    pub rows_scanned: u64,
    pub rows_produced: u64,
    pub row_groups_total: u64,
    pub row_groups_read: u64,
    pub footer_cache_hits: u64,
}

impl ExecMetricsSnapshot {
    /// Field-wise sum — used to combine the CF sub-plan's metrics with the
    /// top-level plan's into one per-query snapshot.
    pub fn merged(&self, other: &ExecMetricsSnapshot) -> ExecMetricsSnapshot {
        ExecMetricsSnapshot {
            bytes_scanned: self.bytes_scanned + other.bytes_scanned,
            open_bytes: self.open_bytes + other.open_bytes,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            rows_produced: self.rows_produced + other.rows_produced,
            row_groups_total: self.row_groups_total + other.row_groups_total,
            row_groups_read: self.row_groups_read + other.row_groups_read,
            footer_cache_hits: self.footer_cache_hits + other.footer_cache_hits,
        }
    }

    /// Structured JSON form, served per query by the server API.
    pub fn to_json(&self) -> pixels_common::Json {
        use pixels_common::Json;
        Json::object([
            ("bytes_scanned", Json::number(self.bytes_scanned as f64)),
            ("open_bytes", Json::number(self.open_bytes as f64)),
            ("rows_scanned", Json::number(self.rows_scanned as f64)),
            ("rows_produced", Json::number(self.rows_produced as f64)),
            (
                "row_groups_total",
                Json::number(self.row_groups_total as f64),
            ),
            ("row_groups_read", Json::number(self.row_groups_read as f64)),
            (
                "footer_cache_hits",
                Json::number(self.footer_cache_hits as f64),
            ),
        ])
    }
}

impl ExecMetrics {
    pub fn add_scan(&self, bytes: u64, rows: u64) {
        self.bytes_scanned.fetch_add(bytes, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_row_groups(&self, total: u64, read: u64) {
        self.row_groups_total.fetch_add(total, Ordering::Relaxed);
        self.row_groups_read.fetch_add(read, Ordering::Relaxed);
    }

    pub fn add_produced(&self, rows: u64) {
        self.rows_produced.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_footer_cache_hit(&self) {
        self.footer_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record footer/open bytes (already included in `bytes_scanned` by the
    /// accompanying [`ExecMetrics::add_scan`] call).
    pub fn add_open(&self, bytes: u64) {
        self.open_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn add_prefetch(&self, issued: u64, hits: u64, wasted: u64) {
        self.prefetch_issued.fetch_add(issued, Ordering::Relaxed);
        self.prefetch_hits.fetch_add(hits, Ordering::Relaxed);
        self.prefetch_wasted.fetch_add(wasted, Ordering::Relaxed);
    }

    pub fn add_chunk_cache(&self, hits: u64, misses: u64) {
        self.chunk_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.chunk_cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Snapshot of the scan-pipeline counters (separate from
    /// [`ExecMetrics::snapshot`], which feeds billing-equality checks).
    pub fn pipeline_snapshot(&self) -> ScanPipelineSnapshot {
        ScanPipelineSnapshot {
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
            chunk_cache_hits: self.chunk_cache_hits.load(Ordering::Relaxed),
            chunk_cache_misses: self.chunk_cache_misses.load(Ordering::Relaxed),
        }
    }

    pub fn snapshot(&self) -> ExecMetricsSnapshot {
        ExecMetricsSnapshot {
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            open_bytes: self.open_bytes.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_produced: self.rows_produced.load(Ordering::Relaxed),
            row_groups_total: self.row_groups_total.load(Ordering::Relaxed),
            row_groups_read: self.row_groups_read.load(Ordering::Relaxed),
            footer_cache_hits: self.footer_cache_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_storage::InMemoryObjectStore;

    #[test]
    fn metrics_accumulate() {
        let ctx = ExecContext::new(InMemoryObjectStore::shared());
        ctx.metrics.add_scan(100, 10);
        ctx.metrics.add_scan(50, 5);
        ctx.metrics.add_row_groups(4, 2);
        ctx.metrics.add_produced(7);
        ctx.metrics.add_footer_cache_hit();
        let s = ctx.metrics.snapshot();
        assert_eq!(s.bytes_scanned, 150);
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.row_groups_total, 4);
        assert_eq!(s.row_groups_read, 2);
        assert_eq!(s.rows_produced, 7);
        assert_eq!(s.footer_cache_hits, 1);
    }

    #[test]
    fn context_clone_shares_metrics() {
        let ctx = ExecContext::new(InMemoryObjectStore::shared());
        let ctx2 = ctx.clone();
        ctx2.metrics.add_produced(3);
        assert_eq!(ctx.metrics.snapshot().rows_produced, 3);
    }

    #[test]
    fn parallelism_defaults_and_clamps() {
        let ctx = ExecContext::new(InMemoryObjectStore::shared());
        assert!(ctx.parallelism >= 1);
        let ctx = ctx.with_parallelism(0);
        assert_eq!(ctx.parallelism, 1);
        let ctx = ctx.with_parallelism(4);
        assert_eq!(ctx.parallelism, 4);
    }
}
