//! Sorting and top-k selection.

use crate::evaluate::evaluate;
use crate::join::RowSink;
use pixels_common::{RecordBatch, Result, Value};
use pixels_planner::BoundExpr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Compare two key tuples under the given ascending flags. NULLs order
/// first ascending (so last descending), matching `Value::total_cmp`.
fn compare_keys(a: &[Value], b: &[Value], dirs: &[bool]) -> Ordering {
    for ((x, y), &asc) in a.iter().zip(b).zip(dirs) {
        let ord = x.total_cmp(y);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn materialize_keys(
    batches: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
    let mut rows = Vec::new();
    for batch in batches {
        let key_cols: Vec<_> = keys
            .iter()
            .map(|(k, _)| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            rows.push((key, batch.row(row)));
        }
    }
    Ok(rows)
}

/// Full sort of materialized input.
pub fn execute_sort(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    let dirs: Vec<bool> = keys.iter().map(|&(_, asc)| asc).collect();
    let mut rows = materialize_keys(input, keys)?;
    rows.sort_by(|a, b| compare_keys(&a.0, &b.0, &dirs));
    let mut sink = RowSink::new(first.schema().clone(), batch_size);
    for (_, row) in rows {
        sink.push(row)?;
    }
    sink.finish()
}

/// Heap entry for top-k: ordered so the heap root is the *worst* retained
/// row, which gets evicted when a better row arrives.
struct HeapRow {
    key: Vec<Value>,
    row: Vec<Value>,
    seq: usize,
}

/// Top-k selection: the first `fetch` rows of the sorted order, without
/// sorting the full input. Uses a bounded max-heap.
pub fn execute_topk(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    fetch: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    if fetch == 0 {
        return Ok(vec![RecordBatch::empty(first.schema().clone())]);
    }
    let dirs: Vec<bool> = keys.iter().map(|&(_, asc)| asc).collect();

    // Wrap rows so BinaryHeap's max == worst row in the retained set; ties
    // break by arrival order to keep the sort stable.
    let mut heap: BinaryHeap<Wrapped> = BinaryHeap::with_capacity(fetch + 1);
    struct Wrapped {
        item: HeapRow,
        dirs: std::rc::Rc<Vec<bool>>,
    }
    impl PartialEq for Wrapped {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Wrapped {}
    impl Ord for Wrapped {
        fn cmp(&self, other: &Self) -> Ordering {
            compare_keys(&self.item.key, &other.item.key, &self.dirs)
                .then(self.item.seq.cmp(&other.item.seq))
        }
    }
    impl PartialOrd for Wrapped {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let dirs = std::rc::Rc::new(dirs);
    let mut seq = 0usize;
    for batch in input {
        let key_cols: Vec<_> = keys
            .iter()
            .map(|(k, _)| evaluate(k, batch))
            .collect::<Result<_>>()?;
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value(row)).collect();
            heap.push(Wrapped {
                item: HeapRow {
                    key,
                    row: batch.row(row),
                    seq,
                },
                dirs: dirs.clone(),
            });
            seq += 1;
            if heap.len() > fetch {
                heap.pop(); // evict the worst retained row
            }
        }
    }
    let mut rows: Vec<HeapRow> = heap.into_iter().map(|w| w.item).collect();
    rows.sort_by(|a, b| compare_keys(&a.key, &b.key, &dirs).then(a.seq.cmp(&b.seq)));
    let mut sink = RowSink::new(first.schema().clone(), batch_size);
    for r in rows {
        sink.push(r.row)?;
    }
    sink.finish()
}

/// LIMIT/OFFSET over materialized batches.
pub fn execute_limit(
    input: Vec<RecordBatch>,
    limit: Option<u64>,
    offset: u64,
) -> Result<Vec<RecordBatch>> {
    let mut out = Vec::new();
    let mut to_skip = offset as usize;
    let mut remaining = limit.map(|l| l as usize);
    for batch in input {
        if remaining == Some(0) {
            break;
        }
        let mut b = batch;
        if to_skip > 0 {
            if to_skip >= b.num_rows() {
                to_skip -= b.num_rows();
                continue;
            }
            b = b.slice(to_skip, b.num_rows() - to_skip)?;
            to_skip = 0;
        }
        if let Some(rem) = remaining {
            if b.num_rows() > rem {
                b = b.slice(0, rem)?;
            }
            remaining = Some(rem - b.num_rows());
        }
        if b.num_rows() > 0 {
            out.push(b);
        }
    }
    Ok(out)
}
