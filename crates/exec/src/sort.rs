//! Sorting and top-k selection.
//!
//! Both operators are late-materialized: sort keys are evaluated once into
//! columns, a *permutation* of row indices is sorted (or heap-selected)
//! against typed column views, and output batches are assembled with one
//! gather per column — no per-row `Vec<Value>` key tuples or builder
//! pushes. The comparator reproduces `Value::total_cmp` exactly: NULLs
//! first (then direction reversal), numerics — including Int64 — widened
//! through `f64::total_cmp`, everything else by its natural ordering.

use crate::evaluate::{evaluate_ref, NumSlice};
use pixels_common::{Column, ColumnData, RecordBatch, Result};
use pixels_planner::BoundExpr;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Typed view of one evaluated sort-key column plus its direction.
struct SortKey<'a> {
    col: &'a Column,
    asc: bool,
    view: View<'a>,
}

enum View<'a> {
    Num(NumSlice<'a>),
    Bool(&'a [bool]),
    Str(&'a [String]),
    Date(&'a [i32]),
    Ts(&'a [i64]),
}

impl<'a> SortKey<'a> {
    fn new(col: &'a Column, asc: bool) -> SortKey<'a> {
        let view = match col.data() {
            ColumnData::Boolean(v) => View::Bool(v),
            ColumnData::Utf8(v) => View::Str(v),
            ColumnData::Date(v) => View::Date(v),
            ColumnData::Timestamp(v) => View::Ts(v),
            data => View::Num(NumSlice::of(data).expect("numeric column data")),
        };
        SortKey { col, asc, view }
    }

    /// `Value::total_cmp` of rows `a` and `b` of this key column, with the
    /// direction reversal applied *after* NULL ordering — exactly how the
    /// row-at-a-time comparator behaved (NULLs first ascending, last
    /// descending).
    fn compare(&self, a: usize, b: usize) -> Ordering {
        let ord = match (self.col.is_null(a), self.col.is_null(b)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match &self.view {
                // Int64 deliberately goes through f64 like sql_cmp does
                // (identical ordering quirks past 2^53).
                View::Num(ns) => ns.get(a).total_cmp(&ns.get(b)),
                View::Bool(v) => v[a].cmp(&v[b]),
                View::Str(v) => v[a].cmp(&v[b]),
                View::Date(v) => v[a].cmp(&v[b]),
                View::Ts(v) => v[a].cmp(&v[b]),
            },
        };
        if self.asc {
            ord
        } else {
            ord.reverse()
        }
    }
}

fn compare_rows(keys: &[SortKey<'_>], a: usize, b: usize) -> Ordering {
    for k in keys {
        let ord = k.compare(a, b);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Coalesce the input into one gather source (borrowing the common
/// single-batch case).
fn coalesce(input: &[RecordBatch]) -> Result<std::borrow::Cow<'_, RecordBatch>> {
    Ok(match input {
        [single] => std::borrow::Cow::Borrowed(single),
        many => std::borrow::Cow::Owned(RecordBatch::concat(many)?),
    })
}

/// Emit `rows` of `source` in `batch_size` chunks, one gather per column.
fn gather_chunks(
    source: &RecordBatch,
    rows: &[usize],
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let chunk = batch_size.max(1);
    let mut out = Vec::with_capacity(rows.len().div_ceil(chunk));
    for c in rows.chunks(chunk) {
        out.push(source.gather(c)?);
    }
    Ok(out)
}

/// Full sort of materialized input: stable permutation sort over the
/// evaluated key columns, then a columnar gather of the permutation.
pub fn execute_sort(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    if input.is_empty() {
        return Ok(Vec::new());
    }
    let source = coalesce(input)?;
    let key_cols: Vec<Cow<Column>> = keys
        .iter()
        .map(|(k, _)| evaluate_ref(k, &source))
        .collect::<Result<_>>()?;
    let sort_keys: Vec<SortKey> = key_cols
        .iter()
        .zip(keys)
        .map(|(c, &(_, asc))| SortKey::new(c, asc))
        .collect();
    let mut perm: Vec<usize> = (0..source.num_rows()).collect();
    perm.sort_by(|&a, &b| compare_rows(&sort_keys, a, b));
    gather_chunks(&source, &perm, batch_size)
}

/// Top-k selection: the first `fetch` rows of the sorted order, without
/// sorting the full input. Uses a bounded max-heap of row indices; ties
/// break by row position to keep the selection stable.
pub fn execute_topk(
    input: &[RecordBatch],
    keys: &[(BoundExpr, bool)],
    fetch: usize,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let Some(first) = input.first() else {
        return Ok(Vec::new());
    };
    if fetch == 0 {
        return Ok(vec![RecordBatch::empty(first.schema().clone())]);
    }
    let source = coalesce(input)?;
    let key_cols: Vec<Cow<Column>> = keys
        .iter()
        .map(|(k, _)| evaluate_ref(k, &source))
        .collect::<Result<_>>()?;
    let sort_keys: Vec<SortKey> = key_cols
        .iter()
        .zip(keys)
        .map(|(c, &(_, asc))| SortKey::new(c, asc))
        .collect();

    // Wrap row indices so BinaryHeap's max == worst retained row.
    struct Entry<'k, 'c> {
        row: usize,
        keys: &'k [SortKey<'c>],
    }
    impl Ord for Entry<'_, '_> {
        fn cmp(&self, other: &Self) -> Ordering {
            compare_rows(self.keys, self.row, other.row).then(self.row.cmp(&other.row))
        }
    }
    impl PartialOrd for Entry<'_, '_> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Entry<'_, '_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Entry<'_, '_> {}

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(fetch + 1);
    for row in 0..source.num_rows() {
        heap.push(Entry {
            row,
            keys: &sort_keys,
        });
        if heap.len() > fetch {
            heap.pop(); // evict the worst retained row
        }
    }
    let mut rows: Vec<usize> = heap.into_iter().map(|e| e.row).collect();
    rows.sort_by(|&a, &b| compare_rows(&sort_keys, a, b).then(a.cmp(&b)));
    gather_chunks(&source, &rows, batch_size)
}

/// LIMIT/OFFSET over materialized batches.
pub fn execute_limit(
    input: Vec<RecordBatch>,
    limit: Option<u64>,
    offset: u64,
) -> Result<Vec<RecordBatch>> {
    let mut out = Vec::new();
    let mut to_skip = offset as usize;
    let mut remaining = limit.map(|l| l as usize);
    for batch in input {
        if remaining == Some(0) {
            break;
        }
        let mut b = batch;
        if to_skip > 0 {
            if to_skip >= b.num_rows() {
                to_skip -= b.num_rows();
                continue;
            }
            b = b.slice(to_skip, b.num_rows() - to_skip)?;
            to_skip = 0;
        }
        if let Some(rem) = remaining {
            if b.num_rows() > rem {
                b = b.slice(0, rem)?;
            }
            remaining = Some(rem - b.num_rows());
        }
        if b.num_rows() > 0 {
            out.push(b);
        }
    }
    Ok(out)
}
