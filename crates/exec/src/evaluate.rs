//! Vectorized-interface expression evaluation over record batches.
//!
//! Semantics live in `pixels_planner::eval`; this module adapts them to
//! columns, with fast paths for the comparison shapes that dominate scan
//! filters (column <op> literal on fixed-width types).

use pixels_common::{Column, ColumnBuilder, ColumnData, RecordBatch, Result, Value};
use pixels_planner::eval::{eval_binary, eval_expr, RowAccess};
use pixels_planner::BoundExpr;
use pixels_sql::ast::BinaryOp;

/// One row of a batch, viewed through [`RowAccess`].
pub struct BatchRow<'a> {
    pub batch: &'a RecordBatch,
    pub row: usize,
}

impl RowAccess for BatchRow<'_> {
    fn column_value(&self, index: usize) -> Value {
        self.batch.column(index).value(self.row)
    }
}

/// Evaluate `expr` for every row of `batch`, producing a column of the
/// expression's output type.
pub fn evaluate(expr: &BoundExpr, batch: &RecordBatch) -> Result<Column> {
    // Fast path: bare column reference.
    if let BoundExpr::ColumnRef { index, .. } = expr {
        return Ok(batch.column(*index).clone());
    }
    let mut builder = ColumnBuilder::new(expr.data_type());
    for row in 0..batch.num_rows() {
        let v = eval_expr(expr, &BatchRow { batch, row })?;
        if v.is_null() {
            builder.push_null();
        } else {
            // Cast adapts mildly mismatched numeric widths (e.g. an Int32
            // literal flowing into an Int64 expression type).
            match builder.push(&v) {
                Ok(()) => {}
                Err(_) => builder.push(&v.cast_to(expr.data_type())?)?,
            }
        }
    }
    Ok(builder.finish())
}

/// Evaluate a boolean predicate into a selection mask. SQL semantics: NULL
/// counts as not-selected.
pub fn predicate_mask(expr: &BoundExpr, batch: &RecordBatch) -> Result<Vec<bool>> {
    // Fast path: `column <op> literal` on fixed-width data.
    if let Some(mask) = compare_fast_path(expr, batch)? {
        return Ok(mask);
    }
    let mut mask = Vec::with_capacity(batch.num_rows());
    for row in 0..batch.num_rows() {
        let v = eval_expr(expr, &BatchRow { batch, row })?;
        mask.push(matches!(v, Value::Boolean(true)));
    }
    Ok(mask)
}

/// Vectorized evaluation of `col <op> literal` over i64-representable and
/// f64 columns; returns `None` when the shape doesn't match.
fn compare_fast_path(expr: &BoundExpr, batch: &RecordBatch) -> Result<Option<Vec<bool>>> {
    let BoundExpr::BinaryOp {
        left, op, right, ..
    } = expr
    else {
        return Ok(None);
    };
    if !op.is_comparison() {
        return Ok(None);
    }
    let (col_idx, lit, flipped) = match (left.as_ref(), right.as_ref()) {
        (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v)) => (*index, v, false),
        (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) => (*index, v, true),
        _ => return Ok(None),
    };
    if lit.is_null() {
        return Ok(Some(vec![false; batch.num_rows()]));
    }
    let col = batch.column(col_idx);
    let cmp_i64 = |target: i64, data: &[i64], small: Option<&[i32]>| -> Vec<bool> {
        let check = |x: i64| ord_matches(x.cmp(&target), *op, flipped);
        match small {
            Some(s) => s.iter().map(|&x| check(x as i64)).collect(),
            None => data.iter().map(|&x| check(x)).collect(),
        }
    };
    let mut mask = match (col.data(), lit) {
        (ColumnData::Int64(v), _) if lit.as_i64().is_some() => {
            cmp_i64(lit.as_i64().unwrap(), v, None)
        }
        (ColumnData::Timestamp(v), Value::Timestamp(t)) => cmp_i64(*t, v, None),
        (ColumnData::Int32(v), _) if lit.as_i64().is_some() => {
            cmp_i64(lit.as_i64().unwrap(), &[], Some(v))
        }
        (ColumnData::Date(v), Value::Date(d)) => cmp_i64(*d as i64, &[], Some(v)),
        (ColumnData::Float64(v), _) if lit.as_f64().is_some() => {
            let target = lit.as_f64().unwrap();
            v.iter()
                .map(|x| ord_matches(x.total_cmp(&target), *op, flipped))
                .collect()
        }
        (ColumnData::Utf8(v), Value::Utf8(s)) => v
            .iter()
            .map(|x| ord_matches(x.as_str().cmp(s.as_str()), *op, flipped))
            .collect(),
        // Mixed-type comparisons (e.g. Int32 column vs Float64 literal) fall
        // back to the scalar path for exact widening semantics.
        _ => return Ok(None),
    };
    if let Some(validity) = col.validity() {
        for (m, &valid) in mask.iter_mut().zip(validity) {
            *m &= valid;
        }
    }
    Ok(Some(mask))
}

fn ord_matches(ord: std::cmp::Ordering, op: BinaryOp, flipped: bool) -> bool {
    let ord = if flipped { ord.reverse() } else { ord };
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!(),
    }
}

/// Evaluate an expression against a single materialized row (used by join
/// residuals). Exposed for operator implementations.
pub fn eval_row(expr: &BoundExpr, row: &[Value]) -> Result<Value> {
    eval_expr(expr, &row.to_vec())
}

/// Re-export used by aggregation for constant expressions.
pub fn eval_const_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    eval_binary(op, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_common::{DataType, Field, Schema};
    use std::sync::Arc;

    fn batch() -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::required("a", DataType::Int64),
            Field::nullable("b", DataType::Int64),
            Field::required("s", DataType::Utf8),
        ]));
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int64(1), Value::Int64(10), Value::Utf8("x".into())],
                vec![Value::Int64(2), Value::Null, Value::Utf8("y".into())],
                vec![Value::Int64(3), Value::Int64(30), Value::Utf8("z".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn evaluate_arithmetic() {
        let b = batch();
        let expr = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(0, DataType::Int64, "a")),
            op: BinaryOp::Multiply,
            right: Box::new(BoundExpr::literal(Value::Int64(2))),
            data_type: DataType::Int64,
        };
        let col = evaluate(&expr, &b).unwrap();
        assert_eq!(col.value(0), Value::Int64(2));
        assert_eq!(col.value(2), Value::Int64(6));
    }

    #[test]
    fn evaluate_with_nulls() {
        let b = batch();
        let expr = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(1, DataType::Int64, "b")),
            op: BinaryOp::Plus,
            right: Box::new(BoundExpr::literal(Value::Int64(1))),
            data_type: DataType::Int64,
        };
        let col = evaluate(&expr, &b).unwrap();
        assert_eq!(col.value(0), Value::Int64(11));
        assert_eq!(col.value(1), Value::Null);
    }

    #[test]
    fn fast_path_mask_matches_scalar_path() {
        let b = batch();
        // a >= 2 via the fast path...
        let fast = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(0, DataType::Int64, "a")),
            op: BinaryOp::GtEq,
            right: Box::new(BoundExpr::literal(Value::Int64(2))),
            data_type: DataType::Boolean,
        };
        assert_eq!(predicate_mask(&fast, &b).unwrap(), vec![false, true, true]);
        // ... flipped literal side: 2 >= a  <=>  a <= 2.
        let flipped = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::literal(Value::Int64(2))),
            op: BinaryOp::GtEq,
            right: Box::new(BoundExpr::column(0, DataType::Int64, "a")),
            data_type: DataType::Boolean,
        };
        assert_eq!(
            predicate_mask(&flipped, &b).unwrap(),
            vec![true, true, false]
        );
    }

    #[test]
    fn null_column_rows_not_selected() {
        let b = batch();
        let pred = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(1, DataType::Int64, "b")),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::literal(Value::Int64(5))),
            data_type: DataType::Boolean,
        };
        assert_eq!(predicate_mask(&pred, &b).unwrap(), vec![true, false, true]);
    }

    #[test]
    fn string_comparison_fast_path() {
        let b = batch();
        let pred = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(2, DataType::Utf8, "s")),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::literal(Value::Utf8("x".into()))),
            data_type: DataType::Boolean,
        };
        assert_eq!(predicate_mask(&pred, &b).unwrap(), vec![false, true, true]);
    }
}
