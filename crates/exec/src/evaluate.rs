//! Vectorized-interface expression evaluation over record batches.
//!
//! Semantics live in `pixels_planner::eval`; this module adapts them to
//! columns, with fast paths for the comparison shapes that dominate scan
//! filters and join residuals (`column <op> literal`, `column <op> column`,
//! `IS [NOT] NULL`) and a fused-conjunction mask that evaluates an AND
//! chain into a single selection vector without materializing intermediate
//! filtered batches.

use pixels_common::{Column, ColumnBuilder, ColumnData, DataType, RecordBatch, Result, Value};
use pixels_planner::eval::{eval_binary, eval_expr, RowAccess};
use pixels_planner::BoundExpr;
use pixels_sql::ast::BinaryOp;

/// One row of a batch, viewed through [`RowAccess`].
pub struct BatchRow<'a> {
    pub batch: &'a RecordBatch,
    pub row: usize,
}

impl RowAccess for BatchRow<'_> {
    fn column_value(&self, index: usize) -> Value {
        self.batch.column(index).value(self.row)
    }
}

/// True when `v` can be appended to a builder of type `target` without a
/// cast — exactly the combinations [`ColumnBuilder::push`] accepts. Checked
/// before pushing so the mismatch case never pays `push`'s formatted-error
/// allocation (it used to be paid once per mismatched row).
fn value_fits(target: DataType, v: &Value) -> bool {
    matches!(
        (target, v),
        (DataType::Boolean, Value::Boolean(_))
            | (DataType::Int32, Value::Int32(_))
            | (DataType::Int64, Value::Int64(_) | Value::Int32(_))
            | (
                DataType::Float64,
                Value::Float64(_) | Value::Int32(_) | Value::Int64(_)
            )
            | (DataType::Utf8, Value::Utf8(_))
            | (DataType::Date, Value::Date(_))
            | (DataType::Timestamp, Value::Timestamp(_))
    )
}

/// Like [`evaluate`], but borrows the batch's column when the expression is
/// a bare column reference instead of cloning its payload — the common case
/// for join/group/sort keys and aggregate arguments.
pub fn evaluate_ref<'a>(
    expr: &BoundExpr,
    batch: &'a RecordBatch,
) -> Result<std::borrow::Cow<'a, Column>> {
    if let BoundExpr::ColumnRef { index, .. } = expr {
        return Ok(std::borrow::Cow::Borrowed(batch.column(*index)));
    }
    evaluate(expr, batch).map(std::borrow::Cow::Owned)
}

/// Evaluate `expr` for every row of `batch`, producing a column of the
/// expression's output type.
pub fn evaluate(expr: &BoundExpr, batch: &RecordBatch) -> Result<Column> {
    // Fast path: bare column reference.
    if let BoundExpr::ColumnRef { index, .. } = expr {
        return Ok(batch.column(*index).clone());
    }
    // The cast decision is resolved per value-type up front (`value_fits`):
    // rows whose runtime type mismatches the expression type (e.g. an Int32
    // literal flowing into an Int64 expression) cast directly instead of
    // attempting a push that fails with a freshly formatted error.
    let out_ty = expr.data_type();
    let mut builder = ColumnBuilder::with_capacity(out_ty, batch.num_rows());
    for row in 0..batch.num_rows() {
        let v = eval_expr(expr, &BatchRow { batch, row })?;
        if v.is_null() {
            builder.push_null();
        } else if value_fits(out_ty, &v) {
            builder.push(&v)?;
        } else {
            builder.push(&v.cast_to(out_ty)?)?;
        }
    }
    Ok(builder.finish())
}

/// Evaluate a boolean predicate into a selection mask. SQL semantics: NULL
/// counts as not-selected.
pub fn predicate_mask(expr: &BoundExpr, batch: &RecordBatch) -> Result<Vec<bool>> {
    if let Some(mask) = vector_mask(expr, batch)? {
        return Ok(mask);
    }
    let mut mask = Vec::with_capacity(batch.num_rows());
    for row in 0..batch.num_rows() {
        let v = eval_expr(expr, &BatchRow { batch, row })?;
        mask.push(matches!(v, Value::Boolean(true)));
    }
    Ok(mask)
}

/// Evaluate a conjunction of predicates into one selection mask without
/// materializing intermediate filtered batches.
///
/// Top-level `AND` chains inside each predicate are flattened and each
/// conjunct is evaluated against the *original* batch: vectorizable
/// conjuncts (comparisons, `IS NULL`) produce whole masks that are ANDed
/// in, and scalar-fallback conjuncts are only evaluated on rows still
/// selected — preserving the short-circuit evaluation order the sequential
/// filter chain had (a row rejected by an earlier conjunct never reaches a
/// later, possibly erroring, expression).
pub fn fused_filter_mask(filters: &[BoundExpr], batch: &RecordBatch) -> Result<Vec<bool>> {
    let n = batch.num_rows();
    let mut mask = vec![true; n];
    let mut conjuncts = Vec::new();
    for f in filters {
        collect_conjuncts(f, &mut conjuncts);
    }
    for conj in conjuncts {
        if let Some(m) = vector_mask(conj, batch)? {
            for (acc, v) in mask.iter_mut().zip(m) {
                *acc &= v;
            }
        } else {
            for (row, acc) in mask.iter_mut().enumerate() {
                if *acc {
                    let v = eval_expr(conj, &BatchRow { batch, row })?;
                    *acc = matches!(v, Value::Boolean(true));
                }
            }
        }
    }
    Ok(mask)
}

/// Flatten nested `a AND b AND c` into its conjuncts, in evaluation order.
pub(crate) fn collect_conjuncts<'a>(expr: &'a BoundExpr, out: &mut Vec<&'a BoundExpr>) {
    if let BoundExpr::BinaryOp {
        left,
        op: BinaryOp::And,
        right,
        ..
    } = expr
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

/// Fully vectorized mask evaluation for the supported predicate shapes;
/// `None` when the shape has no fast path. Every path here is infallible
/// per-row (no casts, no incomparable types), so evaluating rows that a
/// fused conjunction already rejected is safe.
pub(crate) fn vector_mask(expr: &BoundExpr, batch: &RecordBatch) -> Result<Option<Vec<bool>>> {
    if let Some(mask) = is_null_fast_path(expr, batch) {
        return Ok(Some(mask));
    }
    if let Some(mask) = compare_fast_path(expr, batch)? {
        return Ok(Some(mask));
    }
    Ok(Some(match compare_columns_fast_path(expr, batch) {
        Some(mask) => mask,
        None => return Ok(None),
    }))
}

/// `col IS [NOT] NULL` straight off the validity vector.
fn is_null_fast_path(expr: &BoundExpr, batch: &RecordBatch) -> Option<Vec<bool>> {
    let BoundExpr::IsNull {
        expr: inner,
        negated,
    } = expr
    else {
        return None;
    };
    let BoundExpr::ColumnRef { index, .. } = inner.as_ref() else {
        return None;
    };
    let col = batch.column(*index);
    Some(match col.validity() {
        Some(bits) => bits.iter().map(|&valid| valid == *negated).collect(),
        None => vec![*negated; batch.num_rows()],
    })
}

/// Numeric column payload viewed as f64, the widening `Value::sql_cmp`
/// applies before comparing mixed numeric types. Shared with the sort
/// kernel so permutation sorts reproduce `Value::total_cmp` exactly.
#[derive(Clone, Copy)]
pub(crate) enum NumSlice<'a> {
    I32(&'a [i32]),
    I64(&'a [i64]),
    F64(&'a [f64]),
}

impl<'a> NumSlice<'a> {
    pub(crate) fn of(data: &'a ColumnData) -> Option<NumSlice<'a>> {
        match data {
            ColumnData::Int32(v) => Some(NumSlice::I32(v)),
            ColumnData::Int64(v) => Some(NumSlice::I64(v)),
            ColumnData::Float64(v) => Some(NumSlice::F64(v)),
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> f64 {
        match self {
            NumSlice::I32(v) => v[i] as f64,
            NumSlice::I64(v) => v[i] as f64,
            NumSlice::F64(v) => v[i],
        }
    }
}

/// Vectorized `left_col <op> right_col` for same-class column pairs
/// (numeric×numeric via f64 widening, and Utf8/Date/Timestamp/Boolean
/// against themselves) — the shape join residuals and self-filters take.
/// Mismatched classes fall back to the scalar path so its per-row
/// "cannot compare" error semantics are preserved.
fn compare_columns_fast_path(expr: &BoundExpr, batch: &RecordBatch) -> Option<Vec<bool>> {
    let BoundExpr::BinaryOp {
        left, op, right, ..
    } = expr
    else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    let (BoundExpr::ColumnRef { index: li, .. }, BoundExpr::ColumnRef { index: ri, .. }) =
        (left.as_ref(), right.as_ref())
    else {
        return None;
    };
    let (lc, rc) = (batch.column(*li), batch.column(*ri));
    let n = batch.num_rows();
    let mut mask: Vec<bool> = match (lc.data(), rc.data()) {
        (ColumnData::Utf8(a), ColumnData::Utf8(b)) => (0..n)
            .map(|i| ord_matches(a[i].as_str().cmp(b[i].as_str()), *op, false))
            .collect(),
        (ColumnData::Date(a), ColumnData::Date(b)) => (0..n)
            .map(|i| ord_matches(a[i].cmp(&b[i]), *op, false))
            .collect(),
        (ColumnData::Timestamp(a), ColumnData::Timestamp(b)) => (0..n)
            .map(|i| ord_matches(a[i].cmp(&b[i]), *op, false))
            .collect(),
        (ColumnData::Boolean(a), ColumnData::Boolean(b)) => (0..n)
            .map(|i| ord_matches(a[i].cmp(&b[i]), *op, false))
            .collect(),
        (a, b) => {
            let (na, nb) = (NumSlice::of(a)?, NumSlice::of(b)?);
            (0..n)
                .map(|i| ord_matches(na.get(i).total_cmp(&nb.get(i)), *op, false))
                .collect()
        }
    };
    // NULL on either side compares to NULL, which a mask renders as false.
    for col in [lc, rc] {
        if let Some(validity) = col.validity() {
            for (m, &valid) in mask.iter_mut().zip(validity) {
                *m &= valid;
            }
        }
    }
    Some(mask)
}

/// Vectorized evaluation of `col <op> literal` over i64-representable and
/// f64 columns; returns `None` when the shape doesn't match.
fn compare_fast_path(expr: &BoundExpr, batch: &RecordBatch) -> Result<Option<Vec<bool>>> {
    let BoundExpr::BinaryOp {
        left, op, right, ..
    } = expr
    else {
        return Ok(None);
    };
    if !op.is_comparison() {
        return Ok(None);
    }
    let (col_idx, lit, flipped) = match (left.as_ref(), right.as_ref()) {
        (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v)) => (*index, v, false),
        (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) => (*index, v, true),
        _ => return Ok(None),
    };
    Ok(compare_literal_mask(
        batch.column(col_idx),
        *op,
        lit,
        flipped,
    ))
}

/// The kernel behind [`compare_fast_path`], shared with the encoded scan
/// path so dictionary/RLE shortcut masks reproduce these exact semantics.
/// `None` when the column-type/literal combination has no fast path (mixed
/// numeric widths fall back to the scalar path for exact widening).
pub(crate) fn compare_literal_mask(
    col: &Column,
    op: BinaryOp,
    lit: &Value,
    flipped: bool,
) -> Option<Vec<bool>> {
    if lit.is_null() {
        return Some(vec![false; col.len()]);
    }
    let cmp_i64 = |target: i64, data: &[i64], small: Option<&[i32]>| -> Vec<bool> {
        let check = |x: i64| ord_matches(x.cmp(&target), op, flipped);
        match small {
            Some(s) => s.iter().map(|&x| check(x as i64)).collect(),
            None => data.iter().map(|&x| check(x)).collect(),
        }
    };
    let mut mask = match (col.data(), lit) {
        (ColumnData::Int64(v), _) if lit.as_i64().is_some() => {
            cmp_i64(lit.as_i64().unwrap(), v, None)
        }
        (ColumnData::Timestamp(v), Value::Timestamp(t)) => cmp_i64(*t, v, None),
        (ColumnData::Int32(v), _) if lit.as_i64().is_some() => {
            cmp_i64(lit.as_i64().unwrap(), &[], Some(v))
        }
        (ColumnData::Date(v), Value::Date(d)) => cmp_i64(*d as i64, &[], Some(v)),
        (ColumnData::Float64(v), _) if lit.as_f64().is_some() => {
            let target = lit.as_f64().unwrap();
            v.iter()
                .map(|x| ord_matches(x.total_cmp(&target), op, flipped))
                .collect()
        }
        (ColumnData::Utf8(v), Value::Utf8(s)) => v
            .iter()
            .map(|x| ord_matches(x.as_str().cmp(s.as_str()), op, flipped))
            .collect(),
        // Mixed-type comparisons (e.g. Int32 column vs Float64 literal) fall
        // back to the scalar path for exact widening semantics.
        _ => return None,
    };
    if let Some(validity) = col.validity() {
        for (m, &valid) in mask.iter_mut().zip(validity) {
            *m &= valid;
        }
    }
    Some(mask)
}

/// Whether [`compare_literal_mask`] has a fast path for this column type and
/// (non-null) literal — i.e. whether the comparison is infallible per row.
pub(crate) fn literal_comparable(ty: DataType, lit: &Value) -> bool {
    matches!(
        (ty, lit),
        (DataType::Int64, _) if lit.as_i64().is_some()
    ) || matches!(
        (ty, lit),
        (DataType::Int32, _) if lit.as_i64().is_some()
    ) || matches!(
        (ty, lit),
        (DataType::Float64, _) if lit.as_f64().is_some()
    ) || matches!(
        (ty, lit),
        (DataType::Timestamp, Value::Timestamp(_))
            | (DataType::Date, Value::Date(_))
            | (DataType::Utf8, Value::Utf8(_))
    )
}

pub(crate) fn ord_matches(ord: std::cmp::Ordering, op: BinaryOp, flipped: bool) -> bool {
    let ord = if flipped { ord.reverse() } else { ord };
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!(),
    }
}

/// Evaluate an expression against a single materialized row (used by join
/// residuals). Exposed for operator implementations.
pub fn eval_row(expr: &BoundExpr, row: &[Value]) -> Result<Value> {
    eval_expr(expr, &row.to_vec())
}

/// Re-export used by aggregation for constant expressions.
pub fn eval_const_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    eval_binary(op, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_common::{DataType, Field, Schema};
    use std::sync::Arc;

    fn batch() -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::required("a", DataType::Int64),
            Field::nullable("b", DataType::Int64),
            Field::required("s", DataType::Utf8),
        ]));
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int64(1), Value::Int64(10), Value::Utf8("x".into())],
                vec![Value::Int64(2), Value::Null, Value::Utf8("y".into())],
                vec![Value::Int64(3), Value::Int64(30), Value::Utf8("z".into())],
            ],
        )
        .unwrap()
    }

    fn col_ref(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::column(i, ty, format!("c{i}"))
    }

    fn cmp(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::BinaryOp {
            left: Box::new(l),
            op,
            right: Box::new(r),
            data_type: DataType::Boolean,
        }
    }

    #[test]
    fn evaluate_arithmetic() {
        let b = batch();
        let expr = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(0, DataType::Int64, "a")),
            op: BinaryOp::Multiply,
            right: Box::new(BoundExpr::literal(Value::Int64(2))),
            data_type: DataType::Int64,
        };
        let col = evaluate(&expr, &b).unwrap();
        assert_eq!(col.value(0), Value::Int64(2));
        assert_eq!(col.value(2), Value::Int64(6));
    }

    #[test]
    fn evaluate_with_nulls() {
        let b = batch();
        let expr = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::column(1, DataType::Int64, "b")),
            op: BinaryOp::Plus,
            right: Box::new(BoundExpr::literal(Value::Int64(1))),
            data_type: DataType::Int64,
        };
        let col = evaluate(&expr, &b).unwrap();
        assert_eq!(col.value(0), Value::Int64(11));
        assert_eq!(col.value(1), Value::Null);
    }

    #[test]
    fn evaluate_casts_mismatched_widths_once_per_row_type() {
        // An Int32 literal under an Int64-typed expression exercises the
        // resolved-cast path (value_fits short-circuits the old
        // push-Err-cast retry).
        let b = batch();
        let expr = BoundExpr::BinaryOp {
            left: Box::new(BoundExpr::literal(Value::Int32(5))),
            op: BinaryOp::Plus,
            right: Box::new(BoundExpr::literal(Value::Int32(1))),
            data_type: DataType::Int64,
        };
        let col = evaluate(&expr, &b).unwrap();
        assert_eq!(col.data_type(), DataType::Int64);
        assert_eq!(col.value(0), Value::Int64(6));
    }

    #[test]
    fn fast_path_mask_matches_scalar_path() {
        let b = batch();
        // a >= 2 via the fast path...
        let fast = cmp(
            BoundExpr::column(0, DataType::Int64, "a"),
            BinaryOp::GtEq,
            BoundExpr::literal(Value::Int64(2)),
        );
        assert_eq!(predicate_mask(&fast, &b).unwrap(), vec![false, true, true]);
        // ... flipped literal side: 2 >= a  <=>  a <= 2.
        let flipped = cmp(
            BoundExpr::literal(Value::Int64(2)),
            BinaryOp::GtEq,
            BoundExpr::column(0, DataType::Int64, "a"),
        );
        assert_eq!(
            predicate_mask(&flipped, &b).unwrap(),
            vec![true, true, false]
        );
    }

    #[test]
    fn null_column_rows_not_selected() {
        let b = batch();
        let pred = cmp(
            BoundExpr::column(1, DataType::Int64, "b"),
            BinaryOp::Gt,
            BoundExpr::literal(Value::Int64(5)),
        );
        assert_eq!(predicate_mask(&pred, &b).unwrap(), vec![true, false, true]);
    }

    #[test]
    fn string_comparison_fast_path() {
        let b = batch();
        let pred = cmp(
            BoundExpr::column(2, DataType::Utf8, "s"),
            BinaryOp::Gt,
            BoundExpr::literal(Value::Utf8("x".into())),
        );
        assert_eq!(predicate_mask(&pred, &b).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn column_column_fast_path_matches_scalar() {
        let b = batch();
        // a < b (b nullable): fast path and scalar loop must agree row by
        // row, including the NULL row.
        let pred = cmp(
            col_ref(0, DataType::Int64),
            BinaryOp::Lt,
            col_ref(1, DataType::Int64),
        );
        let fast = predicate_mask(&pred, &b).unwrap();
        let scalar: Vec<bool> = (0..b.num_rows())
            .map(|row| {
                matches!(
                    eval_expr(&pred, &BatchRow { batch: &b, row }).unwrap(),
                    Value::Boolean(true)
                )
            })
            .collect();
        assert_eq!(fast, scalar);
        assert_eq!(fast, vec![true, false, true]);
    }

    #[test]
    fn is_null_fast_path_matches_scalar() {
        let b = batch();
        for negated in [false, true] {
            let pred = BoundExpr::IsNull {
                expr: Box::new(col_ref(1, DataType::Int64)),
                negated,
            };
            let fast = predicate_mask(&pred, &b).unwrap();
            let scalar: Vec<bool> = (0..b.num_rows())
                .map(|row| {
                    matches!(
                        eval_expr(&pred, &BatchRow { batch: &b, row }).unwrap(),
                        Value::Boolean(true)
                    )
                })
                .collect();
            assert_eq!(fast, scalar, "negated={negated}");
            // A column with no validity vector: IS NULL is all-false.
            let pred0 = BoundExpr::IsNull {
                expr: Box::new(col_ref(0, DataType::Int64)),
                negated,
            };
            assert_eq!(
                predicate_mask(&pred0, &b).unwrap(),
                vec![negated; b.num_rows()]
            );
        }
    }

    #[test]
    fn fused_mask_equals_sequential_filtering() {
        let b = batch();
        let f1 = cmp(
            col_ref(0, DataType::Int64),
            BinaryOp::GtEq,
            BoundExpr::literal(Value::Int64(2)),
        );
        let f2 = cmp(
            col_ref(2, DataType::Utf8),
            BinaryOp::NotEq,
            BoundExpr::literal(Value::Utf8("y".into())),
        );
        // Fused AND-chain in one predicate...
        let anded = BoundExpr::BinaryOp {
            left: Box::new(f1.clone()),
            op: BinaryOp::And,
            right: Box::new(f2.clone()),
            data_type: DataType::Boolean,
        };
        let fused = fused_filter_mask(std::slice::from_ref(&anded), &b).unwrap();
        // ... must equal the two-pass sequential filter chain.
        let m1 = predicate_mask(&f1, &b).unwrap();
        let filtered = b.filter(&m1).unwrap();
        let m2 = predicate_mask(&f2, &filtered).unwrap();
        let mut sequential = Vec::new();
        let mut fi = 0;
        for selected in m1 {
            if selected {
                sequential.push(m2[fi]);
                fi += 1;
            } else {
                sequential.push(false);
            }
        }
        assert_eq!(fused, sequential);
        assert_eq!(fused, vec![false, false, true]);
        // The filter-list form (two separate conjuncts) agrees too.
        assert_eq!(fused_filter_mask(&[f1, f2], &b).unwrap(), fused);
    }
}
