//! Object-store exchange: hash-partitioned spill files between CF stages.
//!
//! Cloud-function fleets cannot open sockets to each other, so multi-stage
//! plans exchange data the Starling/Lambada way: stage-0 workers write
//! hash-partitioned spill files to the object store under a per-query,
//! per-stage, per-attempt prefix, and stage-1 workers read exactly their
//! partition set back. Spills are ordinary Pixels-format objects, so spill
//! reads reuse the same encoded columnar reader as every other scan.
//!
//! Two shuffled operators are supported:
//!
//! - **Aggregate**: stage 0 runs the *same* partial-build + chunk-order
//!   merge as the in-process [`crate::aggregate`] path (bit-identical
//!   states, combining before write à la Starling), then spills each group
//!   as one row into the partition its encoded key hashes to. Stage 1
//!   unions the disjoint partitions, restores global first-appearance group
//!   order via the spilled `__ord` column, and finishes the states.
//! - **Join**: both sides are hash-partitioned on their encoded join keys
//!   (numerics widened before hashing, so `Int32` and `Int64` sides agree),
//!   each row tagged with its global row number (`__ord`). Stage 1 joins
//!   each partition pair with the shared equi-join index core and restores
//!   the exact single-stage output order by sorting on the origin indices.
//!
//! Both paths produce output bit-identical to their single-stage
//! equivalents — same rows, same order, same batch boundaries — so the
//! materialized view a shuffled plan writes is byte-identical too.
//!
//! **Billing rule**: spill PUT/GET bytes are *provider-side* exchange
//! traffic. Spill reads run in a scratch [`ExecContext`] whose metrics are
//! drained into [`ExchangeStats::get_bytes`] and never into the billed
//! `bytes_scanned`; no `bytes` span attributes are recorded for them.

use crate::aggregate::{self, AggState, GroupState, Partial};
use crate::context::ExecContext;
use crate::engine::execute;
use crate::evaluate::evaluate_ref;
use crate::join::{assemble, coalesce, join_match_indices};
use crate::keys::{hash_bytes, KeyEncoder};
use crate::materialize;
use pixels_common::{
    Column, ColumnBuilder, DataType, Error, Field, RecordBatch, Result, Schema, SchemaRef, Value,
};
use pixels_planner::{AggExpr, BoundExpr, PhysicalPlan};
use pixels_sql::ast::JoinType;
use pixels_storage::{ObjectStore, ObjectStoreRef};
use std::borrow::Cow;
use std::sync::Arc;

/// Exchange traffic of one stage attempt: spill objects written and read,
/// their byte volumes, and the rows that crossed the exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Hash-partition count of the exchange.
    pub partitions: u64,
    /// Bytes PUT as spill objects.
    pub put_bytes: u64,
    /// Bytes GET reading spill objects back.
    pub get_bytes: u64,
    /// Rows written across the exchange (post-combining for aggregates).
    pub spilled_rows: u64,
}

impl ExchangeStats {
    /// Fold another stage's traffic into this one. Byte and row totals add;
    /// the partition count is the fan-out, shared by all stages of a plan.
    pub fn merge(&mut self, other: &ExchangeStats) {
        self.partitions = self.partitions.max(other.partitions);
        self.put_bytes += other.put_bytes;
        self.get_bytes += other.get_bytes;
        self.spilled_rows += other.spilled_rows;
    }

    pub fn total_bytes(&self) -> u64 {
        self.put_bytes + self.get_bytes
    }
}

/// Spill object path for one partition of one exchange side. `side` is
/// `None` for aggregates, `Some("left"/"right")` for joins.
pub fn partition_path(prefix: &str, part: usize, side: Option<&str>) -> String {
    match side {
        Some(s) => format!("{prefix}p{part}.{s}.pxl"),
        None => format!("{prefix}p{part}.pxl"),
    }
}

/// The spill schema of an aggregate exchange: the group-key columns, then
/// per aggregate a `(primary, secondary)` state pair (see
/// [`AggState::spill_values`]), then the global group-order column `__ord`.
pub fn agg_spill_schema(group_types: &[DataType], aggs: &[AggExpr]) -> SchemaRef {
    let mut fields: Vec<Field> = group_types
        .iter()
        .enumerate()
        .map(|(i, ty)| Field::nullable(format!("__g{i}"), *ty))
        .collect();
    for (i, agg) in aggs.iter().enumerate() {
        fields.push(Field::nullable(
            format!("__s{i}a"),
            AggState::spill_type(agg),
        ));
        fields.push(Field::nullable(format!("__s{i}b"), DataType::Int64));
    }
    fields.push(Field::required("__ord", DataType::Int64));
    Arc::new(Schema::new(fields))
}

/// The spill schema of one join side: the side's own columns plus `__ord`,
/// the row's global index on that side.
pub fn join_spill_schema(side: &SchemaRef) -> SchemaRef {
    let mut fields = side.fields().to_vec();
    fields.push(Field::required("__ord", DataType::Int64));
    Arc::new(Schema::new(fields))
}

fn group_types(group_exprs: &[BoundExpr]) -> Vec<DataType> {
    group_exprs.iter().map(|g| g.data_type()).collect()
}

/// Stage 0 of an aggregate exchange: partially aggregate `input` exactly
/// like the in-process path, then spill every group (one combined row) into
/// the partition its encoded key hashes to. All `partitions` files are
/// always written — an empty partition is a valid zero-row Pixels object,
/// so stage 1 never distinguishes "empty" from "missing".
pub fn write_agg_partitions(
    input: &[RecordBatch],
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    parallelism: usize,
    spill_store: &dyn ObjectStore,
    prefix: &str,
    partitions: usize,
) -> Result<ExchangeStats> {
    let acc = aggregate::merged_partial(input, group_exprs, aggs, parallelism)?;
    let gt = group_types(group_exprs);
    let schema = agg_spill_schema(&gt, aggs);

    // Route each group by the hash of its interned key bytes — the same
    // bytes every stage-0 attempt interned, so routing is deterministic.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for gi in 0..acc.keys.len() {
        let part = (hash_bytes(acc.table.key_bytes(gi)) % partitions as u64) as usize;
        members[part].push(gi);
    }

    let mut stats = ExchangeStats {
        partitions: partitions as u64,
        ..ExchangeStats::default()
    };
    for (part, rows) in members.iter().enumerate() {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.data_type, rows.len()))
            .collect();
        for &gi in rows {
            for (b, v) in builders.iter_mut().zip(acc.keys[gi].iter()) {
                b.push(v)?;
            }
            for (ai, st) in acc.states[gi].states.iter().enumerate() {
                let (a, b) = st.spill_values();
                push_opt(&mut builders[gt.len() + 2 * ai], &a)?;
                push_opt(&mut builders[gt.len() + 2 * ai + 1], &b)?;
            }
            builders
                .last_mut()
                .expect("__ord builder")
                .push(&Value::Int64(gi as i64))?;
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        let batch = RecordBatch::try_new(schema.clone(), columns)?;
        let path = partition_path(prefix, part, None);
        stats.put_bytes += materialize(spill_store, &path, schema.clone(), &[batch])?;
        stats.spilled_rows += rows.len() as u64;
    }
    Ok(stats)
}

fn push_opt(b: &mut ColumnBuilder, v: &Value) -> Result<()> {
    if v.is_null() {
        b.push_null();
        Ok(())
    } else {
        b.push(v)
    }
}

/// Read one spill object through a scratch context (metrics drained into
/// `get_bytes`, never billed) and return its batches.
fn read_spill(
    spill_store: &ObjectStoreRef,
    path: &str,
    schema: &SchemaRef,
    stats: &mut ExchangeStats,
) -> Result<Vec<RecordBatch>> {
    let scratch = ExecContext::new(spill_store.clone());
    let scan = PhysicalPlan::MaterializedScan {
        path: path.to_string(),
        schema: schema.clone(),
    };
    let batches = execute(&scan, &scratch)?;
    stats.get_bytes += scratch.metrics.snapshot().bytes_scanned;
    Ok(batches)
}

/// Stage 1 of an aggregate exchange: union the disjoint partitions, restore
/// global group order via `__ord`, and finish the states. The output is
/// bit-identical to [`aggregate::execute_aggregate`] over the same input —
/// including the one default row of a global aggregate over zero rows.
pub fn read_agg_partitions(
    spill_store: &ObjectStoreRef,
    prefix: &str,
    partitions: usize,
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
) -> Result<(Vec<RecordBatch>, ExchangeStats)> {
    let gt = group_types(group_exprs);
    let schema = agg_spill_schema(&gt, aggs);
    let mut stats = ExchangeStats {
        partitions: partitions as u64,
        ..ExchangeStats::default()
    };
    let mut rows: Vec<(i64, Vec<Value>, GroupState)> = Vec::new();
    for part in 0..partitions {
        let path = partition_path(prefix, part, None);
        for batch in read_spill(spill_store, &path, &schema, &mut stats)? {
            let ord_col = batch.column(gt.len() + 2 * aggs.len());
            for row in 0..batch.num_rows() {
                let key: Vec<Value> = (0..gt.len()).map(|c| batch.column(c).value(row)).collect();
                let mut states = Vec::with_capacity(aggs.len());
                for (ai, agg) in aggs.iter().enumerate() {
                    let a = batch.column(gt.len() + 2 * ai).value(row);
                    let b = batch.column(gt.len() + 2 * ai + 1).value(row);
                    states.push(AggState::from_spill(agg, a, b)?);
                }
                let ord = ord_col
                    .value(row)
                    .as_i64()
                    .ok_or_else(|| Error::Exec("corrupt spill __ord column".into()))?;
                rows.push((
                    ord,
                    key,
                    GroupState {
                        states,
                        distinct: aggs.iter().map(|_| None).collect(),
                    },
                ));
            }
        }
    }
    // Partitions hold disjoint key sets, so ords are unique; sorting them
    // restores the exact global first-appearance order of stage 0.
    rows.sort_by_key(|(ord, _, _)| *ord);
    let mut acc = Partial::new();
    for (_, key, state) in rows {
        acc.keys.push(key);
        acc.states.push(state);
    }
    let out = aggregate::finish_partial(acc, group_exprs.len(), aggs, output_schema)?;
    Ok((out, stats))
}

/// Which side of a join exchange a spill belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    Left,
    Right,
}

impl JoinSide {
    pub fn label(self) -> &'static str {
        match self {
            JoinSide::Left => "left",
            JoinSide::Right => "right",
        }
    }
}

/// Stage 0 of one join side: hash-partition the side's rows by their
/// encoded join keys and spill each partition with a `__ord` column holding
/// the row's global index on that side. Rows with NULL keys route
/// deterministically too (the encoding carries the null bitmap); they can
/// never match, but outer joins still emit them.
pub fn write_join_partitions(
    side_batches: &[RecordBatch],
    side_schema: &SchemaRef,
    keys: &[BoundExpr],
    side: JoinSide,
    spill_store: &dyn ObjectStore,
    prefix: &str,
    partitions: usize,
) -> Result<ExchangeStats> {
    let schema = join_spill_schema(side_schema);
    let all = coalesce(side_batches)?;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    if let Some(batch) = all.as_deref() {
        let key_cols: Vec<Cow<Column>> = keys
            .iter()
            .map(|k| evaluate_ref(k, batch))
            .collect::<Result<_>>()?;
        let enc = KeyEncoder::new(&group_types(keys));
        let mut buf = Vec::new();
        for row in 0..batch.num_rows() {
            enc.encode_row(&key_cols, row, &mut buf);
            let part = (hash_bytes(&buf) % partitions as u64) as usize;
            members[part].push(row);
        }
    }

    let mut stats = ExchangeStats {
        partitions: partitions as u64,
        ..ExchangeStats::default()
    };
    for (part, rows) in members.iter().enumerate() {
        let mut columns: Vec<Column> = match all.as_deref() {
            Some(batch) => batch.gather(rows)?.columns().to_vec(),
            None => side_schema
                .fields()
                .iter()
                .map(|f| Column::nulls(f.data_type, 0))
                .collect(),
        };
        let mut ord = ColumnBuilder::with_capacity(DataType::Int64, rows.len());
        for &r in rows {
            ord.push(&Value::Int64(r as i64))?;
        }
        columns.push(ord.finish());
        let batch = RecordBatch::try_new(schema.clone(), columns)?;
        let path = partition_path(prefix, part, Some(side.label()));
        stats.put_bytes += materialize(spill_store, &path, schema.clone(), &[batch])?;
        stats.spilled_rows += rows.len() as u64;
    }
    Ok(stats)
}

/// Split a spilled join-side partition back into its data batch and the
/// `__ord` origin indices.
fn strip_ord(
    batches: Vec<RecordBatch>,
    side_schema: &SchemaRef,
) -> Result<(Option<RecordBatch>, Vec<i64>)> {
    let Some(all) = coalesce(&batches)?.map(Cow::into_owned) else {
        return Ok((None, Vec::new()));
    };
    let width = side_schema.fields().len();
    let ord_col = all.column(width);
    let mut ords = Vec::with_capacity(all.num_rows());
    for row in 0..all.num_rows() {
        ords.push(
            ord_col
                .value(row)
                .as_i64()
                .ok_or_else(|| Error::Exec("corrupt spill __ord column".into()))?,
        );
    }
    let data = RecordBatch::try_new(side_schema.clone(), all.columns()[..width].to_vec())?;
    Ok((
        if data.num_rows() > 0 {
            Some(data)
        } else {
            None
        },
        ords,
    ))
}

/// Stage 1 of a join exchange: join each partition pair with the shared
/// equi-join index core, then restore the exact single-stage output order.
///
/// Per partition the local match indices map back through `__ord` to global
/// `(left_row, right_row)` origins. The single-stage order is: probe rows
/// in input order with matches in build order, then unmatched right-outer
/// rows as a tail in build order — which is exactly the sort by
/// `(is_right_tail, left_ord, right_ord)` over the union of partitions
/// (matches for one probe row never span partitions).
#[allow(clippy::too_many_arguments)]
pub fn read_join_partitions(
    spill_store: &ObjectStoreRef,
    prefix: &str,
    partitions: usize,
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_schema: &SchemaRef,
    right_schema: &SchemaRef,
    batch_size: usize,
) -> Result<(Vec<RecordBatch>, ExchangeStats)> {
    let left_spill = join_spill_schema(left_schema);
    let right_spill = join_spill_schema(right_schema);
    let left_width = left_schema.fields().len();
    let mut stats = ExchangeStats {
        partitions: partitions as u64,
        ..ExchangeStats::default()
    };

    let mut parts: Vec<RecordBatch> = Vec::with_capacity(partitions);
    // (is_right_tail, left_ord, right_ord) per output row, across partitions.
    let mut order: Vec<(bool, i64, i64)> = Vec::new();
    for part in 0..partitions {
        let lb = read_spill(
            spill_store,
            &partition_path(prefix, part, Some("left")),
            &left_spill,
            &mut stats,
        )?;
        let rb = read_spill(
            spill_store,
            &partition_path(prefix, part, Some("right")),
            &right_spill,
            &mut stats,
        )?;
        let (left, lord) = strip_ord(lb, left_schema)?;
        let (right, rord) = strip_ord(rb, right_schema)?;
        let (fl, fr) = join_match_indices(
            left.as_ref(),
            right.as_ref(),
            join_type,
            left_keys,
            right_keys,
            residual,
            output_schema,
            left_width,
        )?;
        for (&l, &r) in fl.iter().zip(&fr) {
            let gl = if l < 0 { -1 } else { lord[l as usize] };
            let gr = if r < 0 { -1 } else { rord[r as usize] };
            order.push((l < 0, gl, gr));
        }
        parts.push(assemble(
            output_schema,
            left_width,
            left.as_ref(),
            &fl,
            right.as_ref(),
            &fr,
        )?);
    }

    let all = RecordBatch::concat(&parts)?;
    let mut perm: Vec<usize> = (0..order.len()).collect();
    perm.sort_unstable_by_key(|&i| order[i]);
    let chunk = batch_size.max(1);
    let mut out = Vec::with_capacity(perm.len().div_ceil(chunk));
    for idx in perm.chunks(chunk) {
        out.push(all.gather(idx)?);
    }
    Ok((out, stats))
}

/// Stage 1 of a *broadcast* join: the probe (left) side never crossed the
/// exchange — this worker executed it directly and holds `probe_batches` in
/// memory — while the small build (right) side was spilled whole as a single
/// partition by stage 0. Reads the build spill back, joins, and restores the
/// exact single-stage output order (probe rows in input order with matches
/// in build order, then any right-outer tail in build order).
///
/// Output is bit-identical to the single-stage join over the same inputs,
/// same batch boundaries included.
#[allow(clippy::too_many_arguments)]
pub fn read_broadcast_join(
    spill_store: &ObjectStoreRef,
    prefix: &str,
    probe_batches: &[RecordBatch],
    join_type: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    output_schema: &SchemaRef,
    left_schema: &SchemaRef,
    right_schema: &SchemaRef,
    batch_size: usize,
) -> Result<(Vec<RecordBatch>, ExchangeStats)> {
    let right_spill = join_spill_schema(right_schema);
    let left_width = left_schema.fields().len();
    let mut stats = ExchangeStats {
        partitions: 1,
        ..ExchangeStats::default()
    };
    let rb = read_spill(
        spill_store,
        &partition_path(prefix, 0, Some("right")),
        &right_spill,
        &mut stats,
    )?;
    let (right, rord) = strip_ord(rb, right_schema)?;
    let left = coalesce(probe_batches)?.map(Cow::into_owned);
    let (fl, fr) = join_match_indices(
        left.as_ref(),
        right.as_ref(),
        join_type,
        left_keys,
        right_keys,
        residual,
        output_schema,
        left_width,
    )?;
    // A single-partition spill preserves build-row order (`rord` is the
    // identity), but sort through `__ord` anyway so the order contract never
    // depends on that detail.
    let mut order: Vec<(bool, i64, i64)> = Vec::with_capacity(fl.len());
    for (&l, &r) in fl.iter().zip(&fr) {
        let gr = if r < 0 { -1 } else { rord[r as usize] };
        order.push((l < 0, l.max(-1), gr));
    }
    let all = assemble(
        output_schema,
        left_width,
        left.as_ref(),
        &fl,
        right.as_ref(),
        &fr,
    )?;
    let mut perm: Vec<usize> = (0..order.len()).collect();
    perm.sort_unstable_by_key(|&i| order[i]);
    let chunk = batch_size.max(1);
    let mut out = Vec::with_capacity(perm.len().div_ceil(chunk));
    for idx in perm.chunks(chunk) {
        out.push(all.gather(idx)?);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::execute_aggregate;
    use crate::join::execute_join;
    use pixels_storage::InMemoryObjectStore;

    fn batch(ids: &[i64], tags: &[&str]) -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::required("tag", DataType::Utf8),
        ]));
        let mut idb = ColumnBuilder::with_capacity(DataType::Int64, ids.len());
        let mut tagb = ColumnBuilder::with_capacity(DataType::Utf8, tags.len());
        for &i in ids {
            idb.push(&Value::Int64(i)).unwrap();
        }
        for &t in tags {
            tagb.push(&Value::Utf8(t.to_string())).unwrap();
        }
        RecordBatch::try_new(schema, vec![idb.finish(), tagb.finish()]).unwrap()
    }

    fn col_expr(index: usize, name: &str, ty: DataType) -> BoundExpr {
        BoundExpr::ColumnRef {
            index,
            data_type: ty,
            name: name.to_string(),
        }
    }

    fn count_agg() -> AggExpr {
        AggExpr {
            func: pixels_planner::AggFunc::Count,
            arg: None,
            distinct: false,
            output_type: DataType::Int64,
        }
    }

    fn agg_roundtrip(partitions: usize, input: &[RecordBatch]) {
        let group = vec![col_expr(1, "tag", DataType::Utf8)];
        let aggs = vec![count_agg()];
        let out_schema = Arc::new(Schema::new(vec![
            Field::nullable("tag", DataType::Utf8),
            Field::required("n", DataType::Int64),
        ]));
        let direct = execute_aggregate(input, &group, &aggs, &out_schema, 2).unwrap();

        let store = InMemoryObjectStore::shared();
        let stats = write_agg_partitions(input, &group, &aggs, 2, store.as_ref(), "x/", partitions)
            .unwrap();
        assert_eq!(stats.partitions, partitions as u64);
        let (shuffled, read_stats) =
            read_agg_partitions(&store, "x/", partitions, &group, &aggs, &out_schema).unwrap();
        assert_eq!(direct, shuffled, "partitioned aggregate must be identical");
        assert!(read_stats.get_bytes > 0);
        assert!(stats.put_bytes > 0);
    }

    #[test]
    fn partitioned_aggregate_matches_direct_execution() {
        let input = vec![
            batch(&[1, 2, 3, 4], &["a", "b", "a", "c"]),
            batch(&[5, 6], &["b", "d"]),
        ];
        for partitions in [1, 2, 3, 8] {
            agg_roundtrip(partitions, &input);
        }
    }

    #[test]
    fn empty_input_and_skewed_partitions_roundtrip() {
        // Zero input rows: every partition file is a valid empty object.
        agg_roundtrip(4, &[batch(&[], &[])]);
        // One group (all rows hash to one partition): the rest stay empty.
        agg_roundtrip(8, &[batch(&[1, 2, 3], &["only", "only", "only"])]);
    }

    #[test]
    fn partitioned_join_matches_direct_execution() {
        let left = vec![batch(&[1, 2, 3, 4, 7], &["a", "b", "a", "c", "x"])];
        let right = vec![batch(&[10, 20, 30], &["a", "b", "e"])];
        let lkey = vec![col_expr(1, "tag", DataType::Utf8)];
        let rkey = vec![col_expr(1, "tag", DataType::Utf8)];
        let lschema = left[0].schema().clone();
        let rschema = right[0].schema().clone();
        let out_schema = Arc::new(Schema::new(vec![
            Field::nullable("l_id", DataType::Int64),
            Field::nullable("l_tag", DataType::Utf8),
            Field::nullable("r_id", DataType::Int64),
            Field::nullable("r_tag", DataType::Utf8),
        ]));
        for join_type in [JoinType::Inner, JoinType::Left, JoinType::Right] {
            let direct = execute_join(
                &left,
                &right,
                join_type,
                &lkey,
                &rkey,
                None,
                &out_schema,
                2,
                3,
            )
            .unwrap();
            for partitions in [1, 2, 5] {
                let store = InMemoryObjectStore::shared();
                let ls = write_join_partitions(
                    &left,
                    &lschema,
                    &lkey,
                    JoinSide::Left,
                    store.as_ref(),
                    "j/",
                    partitions,
                )
                .unwrap();
                let rs = write_join_partitions(
                    &right,
                    &rschema,
                    &rkey,
                    JoinSide::Right,
                    store.as_ref(),
                    "j/",
                    partitions,
                )
                .unwrap();
                assert_eq!(ls.spilled_rows, 5);
                assert_eq!(rs.spilled_rows, 3);
                let (shuffled, _) = read_join_partitions(
                    &store,
                    "j/",
                    partitions,
                    join_type,
                    &lkey,
                    &rkey,
                    None,
                    &out_schema,
                    &lschema,
                    &rschema,
                    3,
                )
                .unwrap();
                assert_eq!(
                    direct, shuffled,
                    "{join_type:?} with {partitions} partitions must be identical"
                );
            }
        }
    }

    #[test]
    fn broadcast_join_matches_direct_execution() {
        let left = vec![batch(&[1, 2, 3, 4, 7], &["a", "b", "a", "c", "x"])];
        let right = vec![batch(&[10, 20, 30], &["a", "b", "e"])];
        let lkey = vec![col_expr(1, "tag", DataType::Utf8)];
        let rkey = vec![col_expr(1, "tag", DataType::Utf8)];
        let lschema = left[0].schema().clone();
        let rschema = right[0].schema().clone();
        let out_schema = Arc::new(Schema::new(vec![
            Field::nullable("l_id", DataType::Int64),
            Field::nullable("l_tag", DataType::Utf8),
            Field::nullable("r_id", DataType::Int64),
            Field::nullable("r_tag", DataType::Utf8),
        ]));
        for join_type in [JoinType::Inner, JoinType::Left, JoinType::Right] {
            let direct = execute_join(
                &left,
                &right,
                join_type,
                &lkey,
                &rkey,
                None,
                &out_schema,
                2,
                3,
            )
            .unwrap();
            let store = InMemoryObjectStore::shared();
            let rs = write_join_partitions(
                &right,
                &rschema,
                &rkey,
                JoinSide::Right,
                store.as_ref(),
                "b/",
                1,
            )
            .unwrap();
            assert_eq!(rs.partitions, 1);
            assert_eq!(rs.spilled_rows, 3);
            let (joined, stats) = read_broadcast_join(
                &store,
                "b/",
                &left,
                join_type,
                &lkey,
                &rkey,
                None,
                &out_schema,
                &lschema,
                &rschema,
                3,
            )
            .unwrap();
            assert_eq!(direct, joined, "{join_type:?} broadcast must be identical");
            assert!(stats.get_bytes > 0, "build spill read is exchange traffic");
        }
    }
}
