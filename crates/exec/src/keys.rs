//! Compact key encoding and a raw-index hash table for join/aggregate keys.
//!
//! The row-at-a-time kernels used to key their hash tables on
//! `Vec<Value>`, paying one heap allocation (plus a string clone per text
//! column) and a SipHash pass per input row. This module replaces that with
//! a contiguous byte-row encoding hashed by FNV-1a and compared by memcmp:
//!
//! ```text
//! [null bitmap: ceil(ncols/8) bytes][col 0][col 1]...
//! col (non-null) = class tag (1 byte) ++ payload
//!   NUMERIC   tag 1, f64 bit pattern LE   (Int32/Int64/Float64 widened)
//!   BOOLEAN   tag 2, 1 byte
//!   UTF8      tag 3, u32 LE length ++ bytes
//!   DATE      tag 4, i32 LE
//!   TIMESTAMP tag 5, i64 LE
//! NULL columns contribute only their bitmap bit (no tag, no payload).
//! ```
//!
//! Byte equality of two encodings is exactly [`Value`] tuple equality:
//!
//! - `Value::eq` widens `Int32`/`Int64`/`Float64` through `f64::total_cmp`,
//!   and `total_cmp` equality is bit equality of the `f64` — so writing the
//!   raw widened bit pattern makes memcmp agree with `eq` (including the
//!   `-0.0 != 0.0` and `NaN == NaN`-same-payload corners).
//! - Every per-column encoding is uniquely decodable (fixed width or
//!   length-prefixed, discriminated by the class tag), so concatenations
//!   are injective and cross-class tuples can never collide byte-wise —
//!   e.g. a `Date` key never aliases a `Timestamp` key even when string
//!   columns shift the layout.
//! - Tuples with different null patterns differ in the bitmap prefix, and
//!   `Null == Null` tuples encode identically (group keys treat NULLs as
//!   equal; joins skip NULL keys before the table is consulted).

use pixels_common::{Column, ColumnData, DataType};

/// FNV-1a 64-bit: deterministic, allocation-free, and fast on the short
/// keys produced by [`KeyEncoder`]. Not cryptographic — it only has to
/// spread TPC-H-shaped keys across buckets.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Equality class of a key column; values from different classes are never
/// equal under `Value::eq`, and all numeric types share one class because
/// they widen before comparing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    Numeric,
    Boolean,
    Utf8,
    Date,
    Timestamp,
}

impl KeyClass {
    fn of(ty: DataType) -> KeyClass {
        match ty {
            DataType::Int32 | DataType::Int64 | DataType::Float64 => KeyClass::Numeric,
            DataType::Boolean => KeyClass::Boolean,
            DataType::Utf8 => KeyClass::Utf8,
            DataType::Date => KeyClass::Date,
            DataType::Timestamp => KeyClass::Timestamp,
        }
    }

    fn tag(self) -> u8 {
        match self {
            KeyClass::Numeric => 1,
            KeyClass::Boolean => 2,
            KeyClass::Utf8 => 3,
            KeyClass::Date => 4,
            KeyClass::Timestamp => 5,
        }
    }
}

/// Encodes one row of a fixed set of key columns into the byte format
/// above. Built once per operator from the key expressions' static types;
/// the per-row cost is a bitmap write plus one branch-free append per
/// column.
#[derive(Debug)]
pub struct KeyEncoder {
    classes: Vec<KeyClass>,
    bitmap_len: usize,
}

impl KeyEncoder {
    pub fn new(types: &[DataType]) -> KeyEncoder {
        KeyEncoder {
            classes: types.iter().map(|&t| KeyClass::of(t)).collect(),
            bitmap_len: types.len().div_ceil(8),
        }
    }

    pub fn num_columns(&self) -> usize {
        self.classes.len()
    }

    /// Encode row `row` of `cols` into `buf` (cleared first). Returns true
    /// when any key column is NULL — joins use this to skip the table
    /// entirely, matching SQL's "NULL keys never match". Accepts owned,
    /// borrowed, or `Cow` columns.
    pub fn encode_row<C: std::borrow::Borrow<Column>>(
        &self,
        cols: &[C],
        row: usize,
        buf: &mut Vec<u8>,
    ) -> bool {
        debug_assert_eq!(cols.len(), self.classes.len());
        buf.clear();
        buf.resize(self.bitmap_len, 0);
        let mut any_null = false;
        for (i, (col, class)) in cols.iter().zip(&self.classes).enumerate() {
            let col = col.borrow();
            if col.is_null(row) {
                buf[i / 8] |= 1 << (i % 8);
                any_null = true;
                continue;
            }
            buf.push(class.tag());
            match col.data() {
                // Widen every numeric through its f64 bit pattern: equal
                // values (under Value::eq's total_cmp) have equal bits, and
                // integers are exact in f64 up to 2^53.
                ColumnData::Int32(v) => {
                    buf.extend_from_slice(&(v[row] as f64).to_bits().to_le_bytes())
                }
                ColumnData::Int64(v) => {
                    buf.extend_from_slice(&(v[row] as f64).to_bits().to_le_bytes())
                }
                ColumnData::Float64(v) => buf.extend_from_slice(&v[row].to_bits().to_le_bytes()),
                ColumnData::Boolean(v) => buf.push(v[row] as u8),
                ColumnData::Utf8(v) => {
                    let s = v[row].as_bytes();
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s);
                }
                ColumnData::Date(v) => buf.extend_from_slice(&v[row].to_le_bytes()),
                ColumnData::Timestamp(v) => buf.extend_from_slice(&v[row].to_le_bytes()),
            }
        }
        any_null
    }
}

const EMPTY_BUCKET: u32 = u32::MAX;

/// An open-addressing hash table over interned key byte-rows.
///
/// Keys live contiguously in one arena; entries are dense indices in
/// insertion order (which is what gives aggregation its first-appearance
/// group order). Lookup hashes with FNV-1a and compares candidates by
/// memcmp — no per-row allocation, no SipHash.
#[derive(Debug)]
pub struct KeyTable {
    /// Bucket array (power-of-two length); each slot holds an entry index
    /// or `EMPTY_BUCKET`.
    buckets: Vec<u32>,
    /// Cached hash per entry, reused on growth so keys are never rehashed.
    hashes: Vec<u64>,
    /// `(offset, len)` of each entry's key bytes in `arena`.
    spans: Vec<(usize, u32)>,
    arena: Vec<u8>,
}

impl Default for KeyTable {
    fn default() -> Self {
        KeyTable::new()
    }
}

impl KeyTable {
    pub fn new() -> KeyTable {
        KeyTable {
            buckets: vec![EMPTY_BUCKET; 16],
            hashes: Vec::new(),
            spans: Vec::new(),
            arena: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The interned bytes of entry `i` (insertion-ordered).
    pub fn key_bytes(&self, i: usize) -> &[u8] {
        let (off, len) = self.spans[i];
        &self.arena[off..off + len as usize]
    }

    /// Find `key`'s entry index, or insert it and return the new index.
    /// The `bool` is true when the key was newly inserted.
    pub fn intern(&mut self, key: &[u8]) -> (usize, bool) {
        if (self.spans.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let hash = hash_bytes(key);
        let mask = self.buckets.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let slot = self.buckets[idx];
            if slot == EMPTY_BUCKET {
                let entry = self.spans.len();
                self.buckets[idx] = entry as u32;
                self.hashes.push(hash);
                let off = self.arena.len();
                self.arena.extend_from_slice(key);
                self.spans.push((off, key.len() as u32));
                return (entry, true);
            }
            let e = slot as usize;
            if self.hashes[e] == hash && self.key_bytes(e) == key {
                return (e, false);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Find `key` without inserting.
    pub fn lookup(&self, key: &[u8]) -> Option<usize> {
        let hash = hash_bytes(key);
        let mask = self.buckets.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let slot = self.buckets[idx];
            if slot == EMPTY_BUCKET {
                return None;
            }
            let e = slot as usize;
            if self.hashes[e] == hash && self.key_bytes(e) == key {
                return Some(e);
            }
            idx = (idx + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![EMPTY_BUCKET; new_len];
        for (e, &hash) in self.hashes.iter().enumerate() {
            let mut idx = (hash as usize) & mask;
            while buckets[idx] != EMPTY_BUCKET {
                idx = (idx + 1) & mask;
            }
            buckets[idx] = e as u32;
        }
        self.buckets = buckets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_common::Value;

    fn col(ty: DataType, vals: &[Value]) -> Column {
        Column::from_values(ty, vals).unwrap()
    }

    fn encode(enc: &KeyEncoder, cols: &[Column], row: usize) -> (Vec<u8>, bool) {
        let mut buf = Vec::new();
        let null = enc.encode_row(cols, row, &mut buf);
        (buf, null)
    }

    #[test]
    fn numeric_widening_encodes_equal() {
        // Int32(7), Int64(7), Float64(7.0) are all equal under Value::eq
        // and must intern to the same entry.
        let enc32 = KeyEncoder::new(&[DataType::Int32]);
        let enc64 = KeyEncoder::new(&[DataType::Int64]);
        let encf = KeyEncoder::new(&[DataType::Float64]);
        let c32 = col(DataType::Int32, &[Value::Int32(7)]);
        let c64 = col(DataType::Int64, &[Value::Int64(7)]);
        let cf = col(DataType::Float64, &[Value::Float64(7.0)]);
        let (a, _) = encode(&enc32, std::slice::from_ref(&c32), 0);
        let (b, _) = encode(&enc64, std::slice::from_ref(&c64), 0);
        let (c, _) = encode(&encf, std::slice::from_ref(&cf), 0);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn zero_signs_and_nan_follow_total_cmp() {
        // Value::eq compares floats with total_cmp: -0.0 != 0.0, and NaN
        // equals NaN only with an identical bit pattern. The encoding must
        // preserve exactly that.
        let enc = KeyEncoder::new(&[DataType::Float64]);
        let c = col(
            DataType::Float64,
            &[
                Value::Float64(0.0),
                Value::Float64(-0.0),
                Value::Float64(f64::NAN),
                Value::Float64(f64::NAN),
            ],
        );
        let cols = std::slice::from_ref(&c);
        let (p0, _) = encode(&enc, cols, 0);
        let (m0, _) = encode(&enc, cols, 1);
        let (n1, _) = encode(&enc, cols, 2);
        let (n2, _) = encode(&enc, cols, 3);
        assert_ne!(p0, m0, "-0.0 and 0.0 are distinct keys (total_cmp)");
        assert_eq!(n1, n2, "same-payload NaNs are equal keys");
    }

    #[test]
    fn date_never_aliases_numeric_or_timestamp() {
        let d = col(DataType::Date, &[Value::Date(42)]);
        let t = col(DataType::Timestamp, &[Value::Timestamp(42)]);
        let i = col(DataType::Int32, &[Value::Int32(42)]);
        let (ed, _) = encode(
            &KeyEncoder::new(&[DataType::Date]),
            std::slice::from_ref(&d),
            0,
        );
        let (et, _) = encode(
            &KeyEncoder::new(&[DataType::Timestamp]),
            std::slice::from_ref(&t),
            0,
        );
        let (ei, _) = encode(
            &KeyEncoder::new(&[DataType::Int32]),
            std::slice::from_ref(&i),
            0,
        );
        assert_ne!(ed, et);
        assert_ne!(ed, ei);
        assert_ne!(et, ei);
    }

    #[test]
    fn empty_string_and_null_are_distinct() {
        let enc = KeyEncoder::new(&[DataType::Utf8]);
        let c = col(DataType::Utf8, &[Value::Utf8(String::new()), Value::Null]);
        let cols = std::slice::from_ref(&c);
        let (empty, empty_null) = encode(&enc, cols, 0);
        let (null, null_null) = encode(&enc, cols, 1);
        assert!(!empty_null);
        assert!(null_null);
        assert_ne!(empty, null);
    }

    #[test]
    fn string_boundaries_are_unambiguous() {
        // ("ab", "c") must not collide with ("a", "bc").
        let enc = KeyEncoder::new(&[DataType::Utf8, DataType::Utf8]);
        let a1 = col(DataType::Utf8, &[Value::Utf8("ab".into())]);
        let a2 = col(DataType::Utf8, &[Value::Utf8("c".into())]);
        let b1 = col(DataType::Utf8, &[Value::Utf8("a".into())]);
        let b2 = col(DataType::Utf8, &[Value::Utf8("bc".into())]);
        let (ea, _) = encode(&enc, &[a1, a2], 0);
        let (eb, _) = encode(&enc, &[b1, b2], 0);
        assert_ne!(ea, eb);
    }

    #[test]
    fn null_bitmap_distinguishes_patterns() {
        let enc = KeyEncoder::new(&[DataType::Int64, DataType::Int64]);
        let a = col(DataType::Int64, &[Value::Null, Value::Int64(5)]);
        let b = col(DataType::Int64, &[Value::Int64(5), Value::Null]);
        let cols = [a, b];
        let (e0, n0) = encode(&enc, &cols, 0); // (NULL, 5)
        let (e1, n1) = encode(&enc, &cols, 1); // (5, NULL)
        assert!(n0 && n1);
        assert_ne!(e0, e1);
    }

    #[test]
    fn table_interns_and_grows() {
        let mut t = KeyTable::new();
        let mut entries = Vec::new();
        for i in 0..1000u64 {
            let key = i.to_le_bytes();
            let (e, new) = t.intern(&key);
            assert!(new, "key {i} should be new");
            assert_eq!(e, i as usize, "entries are dense in insertion order");
            entries.push(key);
        }
        assert_eq!(t.len(), 1000);
        for (i, key) in entries.iter().enumerate() {
            let (e, new) = t.intern(key);
            assert!(!new);
            assert_eq!(e, i);
            assert_eq!(t.lookup(key), Some(i));
            assert_eq!(t.key_bytes(i), key);
        }
        assert_eq!(t.lookup(&5000u64.to_le_bytes()), None);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_bytes(b"lineitem"), hash_bytes(b"lineitem"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        // FNV-1a reference vector.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }
}
