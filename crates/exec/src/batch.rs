//! Shared-scan batch optimization — the library form of the seed
//! `x1_batch_optimization` experiment.
//!
//! The paper closes with: the service levels "also provide opportunities
//! for batch query optimization." When several parked queries read the same
//! table, the server merges them into one execution that shares a single
//! scan. This module is the one implementation of the batch cost/billing
//! arithmetic, called by the simulator's best-of-effort batcher, the live
//! shared-work layer, the admission soak harness, and the
//! `x1_batch_optimization` bench bin — so they can never drift apart.
//!
//! **Billing invariant.** Sharing never changes what a member is billed:
//! every member of an `n`-way batch is attributed exactly `1/n` of the
//! merged scan's bytes — the same bytes it would have scanned alone, since
//! members share the table scan — and `1/n` of the provider cost. The sum
//! over members always reproduces the merged totals (the remainder of the
//! integer division is assigned to the first member).

/// Incremental CPU a merged execution pays per additional batch member,
/// as a fraction of one member's solo CPU. Scanning is shared; only the
/// per-member operator work (filter/aggregate/project) repeats, measured
/// at ~55% of a solo run.
pub const SHARED_MEMBER_CPU_FRACTION: f64 = 0.55;

/// CPU-seconds of one merged execution carrying `members` same-class
/// queries: one full scan plus the incremental per-member work.
pub fn merged_cpu_seconds(single_cpu_seconds: f64, members: usize) -> f64 {
    single_cpu_seconds * (1.0 + SHARED_MEMBER_CPU_FRACTION * (members.saturating_sub(1)) as f64)
}

/// Scan bytes attributed to member `index` of an `n`-way batch: `total / n`,
/// with the integer-division remainder assigned to member 0 so that the
/// per-member shares always sum back to `total` exactly.
pub fn member_share(total_bytes: u64, members: usize, index: usize) -> u64 {
    if members == 0 {
        return 0;
    }
    let n = members as u64;
    let base = total_bytes / n;
    if index == 0 {
        base + total_bytes % n
    } else {
        base
    }
}

/// Provider-cost share of one member of an `n`-way batch.
pub fn member_cost_share(total_cost: f64, members: usize) -> f64 {
    if members == 0 {
        0.0
    } else {
        total_cost / members as f64
    }
}

/// Normalize a SQL text for shared-work keying: collapse runs of whitespace
/// to single spaces, trim, and drop a trailing semicolon. Two submissions
/// with the same normalized text are "identical" for single-flight and
/// result-cache purposes. Quote-aware: text inside `'...'` string literals
/// and `"..."` quoted identifiers is preserved verbatim (whitespace
/// included), so `WHERE c = 'a  b'` and `WHERE c = 'a b'` — semantically
/// different queries — never collapse onto one key. Deliberately
/// conservative otherwise — no case folding, since identifiers and string
/// literals are case-sensitive.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut last_space = true;
    // The open quote character while inside a literal/quoted identifier.
    // SQL's doubled-quote escape ('' / "") needs no special case: the first
    // quote closes and the second immediately reopens, and both paths copy
    // the characters verbatim.
    let mut quote: Option<char> = None;
    for ch in sql.chars() {
        if let Some(q) = quote {
            out.push(ch);
            if ch == q {
                quote = None;
            }
            last_space = false;
        } else if ch == '\'' || ch == '"' {
            quote = Some(ch);
            out.push(ch);
            last_space = false;
        } else if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(ch);
            last_space = false;
        }
    }
    // Only trim when the text ends outside a quote — a malformed query that
    // ends inside an unterminated literal keeps its tail verbatim.
    if quote.is_none() {
        while out.ends_with(' ') || out.ends_with(';') {
            out.pop();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_cpu_grows_sublinearly() {
        let solo = 10.0;
        assert_eq!(merged_cpu_seconds(solo, 1), solo);
        let four = merged_cpu_seconds(solo, 4);
        assert!((four - 10.0 * (1.0 + 0.55 * 3.0)).abs() < 1e-12);
        // A 4-way batch is much cheaper than 4 solo runs.
        assert!(four < 4.0 * solo);
        // ...but still monotone in members.
        assert!(merged_cpu_seconds(solo, 5) > four);
        // Degenerate sizes don't underflow.
        assert_eq!(merged_cpu_seconds(solo, 0), solo);
    }

    #[test]
    fn member_shares_sum_back_exactly() {
        for total in [0u64, 1, 7, 1_000_003, u64::MAX / 7] {
            for n in 1usize..=9 {
                let sum: u64 = (0..n).map(|i| member_share(total, n, i)).sum();
                assert_eq!(sum, total, "total={total} n={n}");
            }
        }
        assert_eq!(member_share(100, 0, 0), 0);
    }

    #[test]
    fn cost_shares_split_evenly() {
        let per = member_cost_share(1.0, 4);
        assert!((per - 0.25).abs() < 1e-12);
        assert_eq!(member_cost_share(1.0, 0), 0.0);
    }

    #[test]
    fn normalize_sql_collapses_whitespace_and_semicolon() {
        assert_eq!(normalize_sql("SELECT  *\n FROM   t ;"), "SELECT * FROM t");
        assert_eq!(normalize_sql("SELECT 1"), normalize_sql(" SELECT 1;\n"));
        // Case is preserved: 'T' and 't' may be different tables.
        assert_ne!(
            normalize_sql("SELECT * FROM T"),
            normalize_sql("SELECT * FROM t")
        );
    }

    #[test]
    fn normalize_sql_preserves_quoted_content() {
        // Whitespace inside a string literal is semantic: these are
        // different queries and must key differently.
        assert_ne!(
            normalize_sql("SELECT * FROM t WHERE c = 'a  b'"),
            normalize_sql("SELECT * FROM t WHERE c = 'a b'")
        );
        // Outside quotes still collapses; inside stays verbatim.
        assert_eq!(
            normalize_sql("SELECT   'a  b'  FROM   t ;"),
            "SELECT 'a  b' FROM t"
        );
        // Quoted identifiers and doubled-quote escapes survive too.
        assert_eq!(
            normalize_sql("SELECT 'it''s  ok' ,  \"my  col\"  FROM t;"),
            "SELECT 'it''s  ok' , \"my  col\" FROM t"
        );
        // A quote character closing one literal doesn't leak quote state.
        assert_eq!(
            normalize_sql("SELECT 'x'  ,  'y'   FROM  t"),
            "SELECT 'x' , 'y' FROM t"
        );
        // Unterminated literal: the tail (trailing space and semicolon
        // included) belongs to the literal and is kept.
        assert_eq!(normalize_sql("SELECT 'a ;"), "SELECT 'a ;");
    }
}
