//! The execution engine: recursively evaluates physical plans.

use crate::aggregate::{execute_aggregate, execute_distinct};
use crate::context::ExecContext;
use crate::encoded::execute_encoded_aggregate;
use crate::evaluate::{evaluate, fused_filter_mask};
use crate::join::{execute_join, RowSink};
use crate::parallel;
use crate::scan::{execute_scan, open_metered};
use crate::sort::{execute_limit, execute_sort, execute_topk};
use pixels_common::{RecordBatch, Result, Value};
use pixels_planner::eval::{eval_expr, NoRow};
use pixels_planner::{BoundExpr, PhysicalPlan};

/// Stable span name for each operator, used in query profiles.
pub fn operator_name(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::Scan { .. } => "scan",
        PhysicalPlan::MaterializedScan { .. } => "materialized_scan",
        PhysicalPlan::Filter { .. } => "filter",
        PhysicalPlan::Project { .. } => "project",
        PhysicalPlan::HashJoin { .. } => "hash_join",
        PhysicalPlan::HashAggregate { .. } => "hash_aggregate",
        PhysicalPlan::Distinct { .. } => "distinct",
        PhysicalPlan::Sort { .. } => "sort",
        PhysicalPlan::TopK { .. } => "topk",
        PhysicalPlan::Limit { .. } => "limit",
        PhysicalPlan::Values { .. } => "values",
    }
}

/// Execute a physical plan to completion, returning all result batches.
///
/// Execution is fully materialized operator-by-operator; scans, filters,
/// projections, and partial aggregation fan out over `ctx.parallelism`
/// morsel-driven workers (`parallelism == 1` reproduces serial execution
/// exactly). Batches respect `ctx.batch_size`.
///
/// When the context carries an enabled trace, every operator runs inside its
/// own span (children nested under it) recording output rows and duration;
/// with tracing disabled this wrapper adds nothing to the hot path.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<RecordBatch>> {
    if !ctx.trace.enabled() {
        return execute_inner(plan, ctx);
    }
    let mut span = ctx.trace.span(operator_name(plan));
    let child_ctx = ctx.under(&span);
    let out = execute_inner(plan, &child_ctx)?;
    let rows: usize = out.iter().map(|b| b.num_rows()).sum();
    span.record_u64("rows_out", rows as u64);
    Ok(out)
}

fn execute_inner(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<RecordBatch>> {
    match plan {
        PhysicalPlan::Scan {
            paths,
            projection,
            zone_predicates,
            filters,
            output_schema,
            ..
        } => {
            let mut out = Vec::new();
            execute_scan(
                ctx,
                paths,
                projection,
                zone_predicates,
                filters,
                output_schema,
                &mut out,
            )?;
            Ok(out)
        }
        PhysicalPlan::MaterializedScan { path, .. } => {
            let reader = open_metered(ctx, path)?;
            let mut span = ctx.trace.span("read");
            let batches = reader.read_all(None, &[])?;
            let rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
            let bytes: u64 = (0..reader.num_row_groups())
                .map(|rg| reader.row_group_bytes(rg, None))
                .sum();
            span.record_u64("bytes", bytes);
            span.record_u64("rows", rows);
            span.finish();
            ctx.metrics.add_scan(bytes, rows);
            Ok(batches)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batches = execute(input, ctx)?;
            let filtered = parallel::run_indexed(batches.len(), ctx.parallelism, |i| {
                let b = &batches[i];
                let mask = fused_filter_mask(std::slice::from_ref(predicate), b)?;
                b.filter(&mask)
            })?;
            let mut out: Vec<RecordBatch> =
                filtered.into_iter().filter(|f| f.num_rows() > 0).collect();
            // Preserve schema even when every row is filtered out.
            if out.is_empty() {
                out.push(RecordBatch::empty(input.schema()));
            }
            Ok(out)
        }
        PhysicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let batches = execute(input, ctx)?;
            let mut out = parallel::run_indexed(batches.len(), ctx.parallelism, |i| {
                let columns = exprs
                    .iter()
                    .map(|e| evaluate(e, &batches[i]))
                    .collect::<Result<Vec<_>>>()?;
                RecordBatch::try_new(output_schema.clone(), columns)
            })?;
            // Preserve schema even for empty input.
            if out.is_empty() {
                out.push(RecordBatch::empty(output_schema.clone()));
            }
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            output_schema,
        } => {
            let lb = execute(left, ctx)?;
            let rb = execute(right, ctx)?;
            let left_width = left.schema().len();
            execute_join(
                &lb,
                &rb,
                *join_type,
                left_keys,
                right_keys,
                residual.as_ref(),
                output_schema,
                left_width,
                ctx.batch_size,
            )
        }
        PhysicalPlan::HashAggregate {
            input,
            group_exprs,
            aggs,
            output_schema,
        } => {
            // Grand totals over a bare scan fold encoded chunks directly —
            // COUNT from validity headers, SUM/MIN/MAX over RLE runs and
            // dictionary entries — skipping row materialization entirely.
            // Gated on exactly the shapes whose per-row semantics the
            // encoded path reproduces bit-identically.
            if ctx.encoded_scan && group_exprs.is_empty() {
                if let PhysicalPlan::Scan {
                    paths,
                    projection,
                    zone_predicates,
                    filters,
                    ..
                } = input.as_ref()
                {
                    let simple_args = aggs.iter().all(|a| {
                        !a.distinct
                            && matches!(a.arg.as_ref(), None | Some(BoundExpr::ColumnRef { .. }))
                    });
                    if filters.is_empty() && simple_args {
                        return execute_encoded_aggregate(
                            ctx,
                            paths,
                            projection,
                            zone_predicates,
                            aggs,
                            output_schema,
                        );
                    }
                }
            }
            let batches = execute(input, ctx)?;
            execute_aggregate(&batches, group_exprs, aggs, output_schema, ctx.parallelism)
        }
        PhysicalPlan::Distinct { input } => {
            let batches = execute(input, ctx)?;
            execute_distinct(&batches)
        }
        PhysicalPlan::Sort { input, keys } => {
            let batches = execute(input, ctx)?;
            execute_sort(&batches, keys, ctx.batch_size)
        }
        PhysicalPlan::TopK { input, keys, fetch } => {
            let batches = execute(input, ctx)?;
            execute_topk(&batches, keys, *fetch, ctx.batch_size)
        }
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let batches = execute(input, ctx)?;
            execute_limit(batches, *limit, *offset)
        }
        PhysicalPlan::Values { schema, rows } => {
            let mut sink = RowSink::new(schema.clone(), ctx.batch_size);
            for row in rows {
                let values: Vec<Value> = row
                    .iter()
                    .map(|e| eval_expr(e, &NoRow))
                    .collect::<Result<_>>()?;
                // Adapt literal widths to the declared schema.
                let adapted: Vec<Value> = values
                    .iter()
                    .zip(schema.fields())
                    .map(|(v, f)| {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            v.cast_to(f.data_type)
                        }
                    })
                    .collect::<Result<_>>()?;
                sink.push(adapted)?;
            }
            let mut batches = sink.finish()?;
            if batches.is_empty() {
                batches.push(RecordBatch::empty(schema.clone()));
            }
            Ok(batches)
        }
    }
}

/// Execute and concatenate into a single batch (empty-schema-preserving).
pub fn execute_collect(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<RecordBatch> {
    let batches = execute(plan, ctx)?;
    if batches.is_empty() {
        return Ok(RecordBatch::empty(plan.schema()));
    }
    RecordBatch::concat(&batches)
}
