//! Morsel prefetching: overlap the next morsel's object-store GET with the
//! current morsel's decode.
//!
//! [`run_prefetched`] splits each morsel into a *fetch* (I/O) and a *work*
//! (decode/filter) phase. A single I/O thread runs fetches strictly in
//! morsel order, keeping at most `depth` fetched-but-unconsumed morsels
//! resident (`depth = 2` is classic double buffering); workers claim morsel
//! indices exactly like [`crate::parallel::run_indexed`] and block only when
//! their morsel's fetch has not completed yet.
//!
//! Two properties matter beyond the overlap itself:
//!
//! - **Deterministic GET order.** All store GETs are issued by the one I/O
//!   thread in morsel order — the same order the non-prefetching serial path
//!   uses. Seeded fault injection therefore sees the identical per-site call
//!   sequence with prefetch on or off, which is what keeps the chaos
//!   differential gates meaningful.
//! - **Error semantics.** A fetch error surfaces at its morsel index when a
//!   worker consumes the slot, so the lowest-index error still wins, exactly
//!   as on the synchronous path. Morsels fetched but never consumed after an
//!   abort are counted as `wasted`.

use parking_lot::{Condvar, Mutex};
use pixels_common::Result;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::parallel::run_indexed;

/// What the prefetcher did during one [`run_prefetched`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Fetches started by the I/O thread.
    pub issued: u64,
    /// Morsels already resident when their worker asked for them.
    pub hits: u64,
    /// Fetched morsels never consumed (only possible after an abort).
    pub wasted: u64,
}

enum Slot<T> {
    Pending,
    Ready(Result<T>),
    Taken,
}

struct State<T> {
    slots: Vec<Slot<T>>,
    /// Ready-but-not-taken slots; the I/O thread stalls at `depth`.
    resident: usize,
    stop: bool,
}

/// Run `work(i, fetch(i)?)` for every `i in 0..n` with results in index
/// order, prefetching up to `depth` morsels ahead of the workers. With
/// `depth == 0` (or nothing to pipeline) the phases run fused on the worker
/// threads — the synchronous path.
pub fn run_prefetched<T, R, Fetch, Work>(
    n: usize,
    parallelism: usize,
    depth: usize,
    fetch: Fetch,
    work: Work,
) -> (Result<Vec<R>>, PrefetchStats)
where
    T: Send,
    R: Send,
    Fetch: Fn(usize) -> Result<T> + Sync,
    Work: Fn(usize, T) -> Result<R> + Sync,
{
    if depth == 0 || n <= 1 {
        let result = run_indexed(n, parallelism, |i| work(i, fetch(i)?));
        return (result, PrefetchStats::default());
    }

    let state = Mutex::new(State {
        slots: (0..n).map(|_| Slot::Pending).collect(),
        resident: 0,
        stop: false,
    });
    let cv = Condvar::new();
    let issued = AtomicU64::new(0);
    let hits = AtomicU64::new(0);

    let result = std::thread::scope(|s| {
        let io = s.spawn(|| {
            for i in 0..n {
                {
                    let mut st = state.lock();
                    while st.resident >= depth && !st.stop {
                        cv.wait(&mut st);
                    }
                    if st.stop {
                        return;
                    }
                }
                let fetched = fetch(i);
                issued.fetch_add(1, Ordering::Relaxed);
                let mut st = state.lock();
                st.slots[i] = Slot::Ready(fetched);
                st.resident += 1;
                cv.notify_all();
                if st.stop {
                    return;
                }
            }
        });

        let result = run_indexed(n, parallelism, |i| {
            let fetched = {
                let mut st = state.lock();
                let mut first_check = true;
                loop {
                    match std::mem::replace(&mut st.slots[i], Slot::Taken) {
                        Slot::Ready(r) => {
                            if first_check {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            st.resident -= 1;
                            cv.notify_all();
                            break r;
                        }
                        Slot::Pending => {
                            st.slots[i] = Slot::Pending;
                            first_check = false;
                            cv.wait(&mut st);
                        }
                        Slot::Taken => unreachable!("morsel {i} consumed twice"),
                    }
                }
            }?;
            work(i, fetched)
        });

        {
            let mut st = state.lock();
            st.stop = true;
            cv.notify_all();
        }
        io.join().expect("prefetch I/O thread panicked");
        result
    });

    let wasted = state
        .into_inner()
        .slots
        .iter()
        .filter(|s| matches!(s, Slot::Ready(_)))
        .count() as u64;
    let stats = PrefetchStats {
        issued: issued.into_inner(),
        hits: hits.into_inner(),
        wasted,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_common::Error;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_and_results() {
        for p in [1, 2, 4] {
            for depth in [0, 1, 2, 8] {
                let (result, _) = run_prefetched(25, p, depth, Ok, |i, v: usize| Ok(i * 100 + v));
                let out = result.unwrap();
                assert_eq!(out, (0..25).map(|i| i * 101).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn fetches_happen_in_morsel_order() {
        // The I/O thread must issue fetches 0..n in order no matter how
        // workers race — this is what keeps seeded fault injection stable.
        for p in [1, 4] {
            let order = Mutex::new(Vec::new());
            let (result, stats) = run_prefetched(
                20,
                p,
                2,
                |i| {
                    order.lock().push(i);
                    Ok(i)
                },
                |_, v: usize| Ok(v),
            );
            result.unwrap();
            assert_eq!(order.into_inner(), (0..20).collect::<Vec<_>>());
            assert_eq!(stats.issued, 20);
            assert_eq!(stats.wasted, 0);
        }
    }

    #[test]
    fn depth_bounds_readahead() {
        // With slow consumers the I/O thread may never run more than
        // `depth` fetches ahead of what has been consumed.
        let depth = 2;
        let consumed = AtomicUsize::new(0);
        let (result, _) = run_prefetched(
            30,
            1,
            depth,
            |i| {
                let c = consumed.load(Ordering::SeqCst);
                assert!(
                    i <= c + depth,
                    "fetch {i} ran more than {depth} ahead of consumption {c}"
                );
                Ok(i)
            },
            |i, v: usize| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                consumed.store(i + 1, Ordering::SeqCst);
                Ok(v)
            },
        );
        result.unwrap();
    }

    #[test]
    fn fetch_error_surfaces_at_its_index() {
        for depth in [0, 2] {
            let (result, _) = run_prefetched(
                10,
                2,
                depth,
                |i| {
                    if i == 3 {
                        Err(Error::Exec("fetch boom".into()))
                    } else {
                        Ok(i)
                    }
                },
                |_, v: usize| Ok(v),
            );
            let err = result.unwrap_err();
            assert!(err.to_string().contains("fetch boom"), "{err}");
        }
    }

    #[test]
    fn work_error_aborts_and_counts_waste() {
        let (result, stats) = run_prefetched(50, 1, 4, Ok, |i, v: usize| {
            if i == 0 {
                Err(Error::Exec("work boom".into()))
            } else {
                Ok(v)
            }
        });
        assert!(result.is_err());
        // Anything fetched beyond morsel 0 was never consumed.
        assert_eq!(stats.issued - stats.wasted, 1);
    }

    #[test]
    fn hits_count_overlap() {
        // Slow workers + eager fetches: every morsel after the first should
        // already be resident when asked for.
        let (result, stats) = run_prefetched(10, 1, 2, Ok, |_, v: usize| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            Ok(v)
        });
        result.unwrap();
        assert!(stats.hits >= 5, "expected mostly hits, got {stats:?}");
        assert_eq!(stats.issued, 10);
    }

    #[test]
    fn empty_and_single() {
        let (result, stats) = run_prefetched(0, 4, 2, Ok, |_, v: usize| Ok(v));
        assert!(result.unwrap().is_empty());
        assert_eq!(stats, PrefetchStats::default());
        let (result, _) = run_prefetched(1, 4, 2, Ok, |_, v: usize| Ok(v * 7));
        assert_eq!(result.unwrap(), vec![0]);
    }
}
