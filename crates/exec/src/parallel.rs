//! Morsel-driven parallel execution.
//!
//! A *morsel* is one unit of independent work: a row group of one file for
//! scans, or a single batch for per-batch operators. Workers are scoped
//! threads that claim morsel indices from a shared atomic counter — cheap
//! dynamic load balancing without a task queue — and results are reassembled
//! in morsel order, so output is identical regardless of how the OS
//! schedules the threads.
//!
//! With `parallelism <= 1` (or a single morsel) the work runs inline on the
//! caller's thread: exactly the serial path, with no threads spawned. That
//! is the determinism knob — `ExecContext { parallelism: 1, .. }` reproduces
//! the engine's historical single-threaded behaviour bit for bit.

use pixels_common::Result;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Run `f(0..n)` on up to `parallelism` worker threads, returning results in
/// index order. The first error (by morsel index) aborts outstanding work
/// and is returned. Panics in workers propagate to the caller.
pub fn run_indexed<T, F>(n: usize, parallelism: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let workers = parallelism.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let mut indexed: Vec<(usize, Result<T>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i);
                        if r.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    // Morsel order, with the lowest-index error (deterministic) winning.
    indexed.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(n);
    for (_, r) in indexed {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_common::Error;

    #[test]
    fn preserves_order_at_any_parallelism() {
        for p in [1, 2, 4, 8, 32] {
            let out = run_indexed(100, p, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(run_indexed(0, 4, |_| Ok(0)).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn lowest_index_error_wins() {
        for p in [1, 4] {
            let err = run_indexed(50, p, |i| {
                if i >= 10 {
                    Err::<usize, _>(Error::Exec(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            // Workers past index 10 may or may not have run, but the error
            // reported is the earliest one that did — and index 10 always
            // runs before the abort flag can stop it on the serial path.
            let Error::Exec(msg) = err else {
                panic!("wrong error kind")
            };
            assert!(msg.starts_with("boom "), "{msg}");
        }
    }

    #[test]
    fn worker_count_never_exceeds_items() {
        // 2 items with parallelism 16 must still complete and stay ordered.
        let out = run_indexed(2, 16, Ok).unwrap();
        assert_eq!(out, vec![0, 1]);
    }
}
