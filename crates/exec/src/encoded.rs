//! Encoded execution: evaluate scan filters and grand-total aggregates
//! directly on encoded chunks, decoding as little as possible.
//!
//! Three decode-avoidance techniques, all proven bit-identical to the
//! decode-everything path by the differential suite:
//!
//! - **Dictionary shortcut** — a `col <op> literal` predicate over a
//!   dictionary chunk is evaluated once per *distinct* value, then mapped
//!   over the per-row codes.
//! - **RLE shortcut** — the same predicate over an RLE chunk is evaluated
//!   once per *run*; COUNT/SUM/MIN/MAX fold runs without expanding them
//!   (float sums still perform one add per row so accumulation order — and
//!   therefore every last bit — matches the row-at-a-time loop).
//! - **Chunk zone check** — per-chunk zone maps can prove a conjunct
//!   all-false ([`pixels_storage::ColumnPredicate::may_match`]) or all-true
//!   ([`pixels_storage::ColumnPredicate::must_match`]) before any decode.
//!   Floats are excluded: zone maps compare with SQL semantics
//!   (`-0.0 == 0.0`) while row masks use `total_cmp`.
//!
//! Conjuncts whose shape has no infallible encoded kernel fall back to the
//! decoded batch with exactly the semantics of
//! [`crate::evaluate::fused_filter_mask`] — including only evaluating
//! scalar-fallback conjuncts on still-selected rows, so a row rejected
//! early never reaches a later, possibly erroring, expression.

use crate::aggregate::{int_view, AggState};
use crate::context::ExecContext;
use crate::evaluate::{
    collect_conjuncts, compare_literal_mask, literal_comparable, ord_matches, vector_mask,
    BatchRow, NumSlice,
};
use crate::parallel;
use crate::scan::open_metered;
use pixels_common::{
    Column, ColumnBuilder, ColumnData, DataType, Error, RecordBatch, Result, SchemaRef, Value,
};
use pixels_planner::eval::eval_expr;
use pixels_planner::{AggExpr, AggFunc, BoundExpr};
use pixels_sql::ast::BinaryOp;
use pixels_storage::{ColumnPredicate, ColumnStats, EncodedChunk, Encoding, PredicateOp};
use std::cell::OnceCell;
use std::sync::Arc;

/// One row group's projected chunks, decoded lazily and at most once per
/// column. Lives on a single worker thread for the duration of one morsel.
pub struct LazyRowGroup {
    schema: SchemaRef,
    chunks: Vec<EncodedChunk>,
    num_rows: usize,
    decoded: Vec<OnceCell<Column>>,
    full: OnceCell<RecordBatch>,
}

impl LazyRowGroup {
    pub fn new(schema: SchemaRef, chunks: Vec<EncodedChunk>, num_rows: usize) -> Self {
        let decoded = (0..chunks.len()).map(|_| OnceCell::new()).collect();
        LazyRowGroup {
            schema,
            chunks,
            num_rows,
            decoded,
            full: OnceCell::new(),
        }
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn chunk(&self, i: usize) -> &EncodedChunk {
        &self.chunks[i]
    }

    /// The column at `i`, decoded on first use and memoized.
    pub fn column(&self, i: usize) -> Result<&Column> {
        if self.decoded[i].get().is_none() {
            let col = self.chunks[i].decode()?;
            let _ = self.decoded[i].set(col);
        }
        Ok(self.decoded[i].get().expect("column just decoded"))
    }

    /// The fully decoded batch, built on first use and memoized. Only the
    /// scalar/vector fallback paths need it.
    pub fn full_batch(&self) -> Result<&RecordBatch> {
        if self.full.get().is_none() {
            let cols: Vec<Column> = (0..self.chunks.len())
                .map(|i| self.column(i).cloned())
                .collect::<Result<_>>()?;
            let batch = RecordBatch::try_new(self.schema.clone(), cols)?;
            let _ = self.full.set(batch);
        }
        Ok(self.full.get().expect("batch just built"))
    }

    /// Materialize only the rows selected by `mask` (late materialization):
    /// chunks never decoded for filtering are decoded filtered, skipping
    /// value copies for rejected rows.
    pub fn materialize(&self, mask: &[bool]) -> Result<RecordBatch> {
        if mask.iter().all(|&m| m) {
            return self.materialize_all();
        }
        let cols = self
            .chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| match self.decoded[i].get() {
                Some(col) => col.filter(mask),
                None => chunk.decode_filtered(mask),
            })
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::try_new(self.schema.clone(), cols)
    }

    pub fn materialize_all(&self) -> Result<RecordBatch> {
        if let Some(b) = self.full.get() {
            return Ok(b.clone());
        }
        let cols: Vec<Column> = (0..self.chunks.len())
            .map(|i| self.column(i).cloned())
            .collect::<Result<_>>()?;
        RecordBatch::try_new(self.schema.clone(), cols)
    }
}

fn and_into(mask: &mut [bool], m: &[bool]) {
    for (acc, &v) in mask.iter_mut().zip(m) {
        *acc &= v;
    }
}

/// Evaluate the residual filter conjunction against encoded chunks,
/// producing the same mask [`crate::evaluate::fused_filter_mask`] would
/// produce over the decoded batch. `stats` holds the per-chunk zone maps,
/// one per projected column.
pub fn encoded_filter_mask(
    filters: &[BoundExpr],
    lazy: &LazyRowGroup,
    stats: &[&ColumnStats],
) -> Result<Vec<bool>> {
    let n = lazy.num_rows();
    let mut mask = vec![true; n];
    let mut conjuncts = Vec::new();
    for f in filters {
        collect_conjuncts(f, &mut conjuncts);
    }
    for conj in conjuncts {
        // All-false masks can stop early: remaining vectorized conjuncts are
        // infallible and scalar conjuncts only run on selected rows (none).
        if !mask.contains(&true) {
            break;
        }
        if let Some(m) = encoded_conjunct_mask(conj, lazy, stats)? {
            and_into(&mut mask, &m);
        } else if let Some(m) = vector_mask(conj, lazy.full_batch()?)? {
            and_into(&mut mask, &m);
        } else {
            let batch = lazy.full_batch()?;
            for (row, acc) in mask.iter_mut().enumerate() {
                if *acc {
                    let v = eval_expr(conj, &BatchRow { batch, row })?;
                    *acc = matches!(v, Value::Boolean(true));
                }
            }
        }
    }
    Ok(mask)
}

/// Translate `col <op> literal` (either orientation) into a zone-map
/// predicate op. `NotEq` has no zone form.
fn zone_op(op: BinaryOp, flipped: bool) -> Option<PredicateOp> {
    Some(match (op, flipped) {
        (BinaryOp::Eq, _) => PredicateOp::Eq,
        (BinaryOp::Lt, false) | (BinaryOp::Gt, true) => PredicateOp::Lt,
        (BinaryOp::LtEq, false) | (BinaryOp::GtEq, true) => PredicateOp::LtEq,
        (BinaryOp::Gt, false) | (BinaryOp::Lt, true) => PredicateOp::Gt,
        (BinaryOp::GtEq, false) | (BinaryOp::LtEq, true) => PredicateOp::GtEq,
        _ => return None,
    })
}

/// Evaluate one conjunct against the encoded chunks when an infallible
/// encoded kernel exists; `None` sends the conjunct to the decoded
/// vector/scalar fallback.
fn encoded_conjunct_mask(
    conj: &BoundExpr,
    lazy: &LazyRowGroup,
    stats: &[&ColumnStats],
) -> Result<Option<Vec<bool>>> {
    let n = lazy.num_rows();
    // `col IS [NOT] NULL` straight off the chunk's validity header.
    if let BoundExpr::IsNull { expr, negated } = conj {
        let BoundExpr::ColumnRef { index, .. } = expr.as_ref() else {
            return Ok(None);
        };
        let chunk = lazy.chunk(*index);
        return Ok(Some(match chunk.validity() {
            Some(bits) => bits.iter().map(|&valid| valid == *negated).collect(),
            None => vec![*negated; n],
        }));
    }
    let BoundExpr::BinaryOp {
        left, op, right, ..
    } = conj
    else {
        return Ok(None);
    };
    if !op.is_comparison() {
        return Ok(None);
    }
    let (idx, lit, flipped) = match (left.as_ref(), right.as_ref()) {
        (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v)) => (*index, v, false),
        (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) => (*index, v, true),
        _ => return Ok(None),
    };
    let chunk = lazy.chunk(idx);
    if lit.is_null() {
        // Comparing against NULL yields NULL for every row; a mask renders
        // that as false (matches `compare_literal_mask`).
        return Ok(Some(vec![false; n]));
    }
    if !literal_comparable(chunk.data_type(), lit) {
        // No infallible kernel for this combination: the fallback must see
        // the conjunct, because it may legitimately error per row.
        return Ok(None);
    }
    // Chunk-level zone check: the zone map can prove the conjunct's verdict
    // for the whole chunk without touching the payload. Floats are excluded
    // (zone maps use SQL comparison, masks use total_cmp).
    if !matches!(chunk.data_type(), DataType::Float64) && !matches!(lit, Value::Float64(_)) {
        if let Some(pred_op) = zone_op(*op, flipped) {
            let pred = ColumnPredicate {
                column: idx,
                op: pred_op,
                value: lit.clone(),
            };
            if !pred.may_match(stats[idx]) {
                return Ok(Some(vec![false; n]));
            }
            if pred.must_match(stats[idx]) {
                return Ok(Some(vec![true; n]));
            }
        }
    }
    match chunk.encoding() {
        Encoding::Dictionary => {
            let Value::Utf8(s) = lit else {
                return Ok(None);
            };
            let view = chunk.dict_view()?;
            // One comparison per distinct value, mapped over the codes.
            let verdicts: Vec<bool> = view
                .dict
                .iter()
                .map(|e| ord_matches(e.as_str().cmp(s.as_str()), *op, flipped))
                .collect();
            let mut mask: Vec<bool> = view.codes.iter().map(|&c| verdicts[c as usize]).collect();
            if let Some(validity) = chunk.validity() {
                and_into(&mut mask, validity);
            }
            Ok(Some(mask))
        }
        Encoding::Rle => {
            let runs = chunk.rle_runs()?;
            // One comparison per run, reproducing compare_literal_mask's
            // per-element semantics exactly.
            let verdicts: Option<Vec<bool>> = match (&runs.values, lit) {
                (ColumnData::Int64(v), _) if lit.as_i64().is_some() => {
                    let t = lit.as_i64().unwrap();
                    Some(
                        v.iter()
                            .map(|x| ord_matches(x.cmp(&t), *op, flipped))
                            .collect(),
                    )
                }
                (ColumnData::Timestamp(v), Value::Timestamp(t)) => Some(
                    v.iter()
                        .map(|x| ord_matches(x.cmp(t), *op, flipped))
                        .collect(),
                ),
                (ColumnData::Int32(v), _) if lit.as_i64().is_some() => {
                    let t = lit.as_i64().unwrap();
                    Some(
                        v.iter()
                            .map(|&x| ord_matches((x as i64).cmp(&t), *op, flipped))
                            .collect(),
                    )
                }
                (ColumnData::Date(v), Value::Date(d)) => {
                    let t = *d as i64;
                    Some(
                        v.iter()
                            .map(|&x| ord_matches((x as i64).cmp(&t), *op, flipped))
                            .collect(),
                    )
                }
                (ColumnData::Float64(v), _) if lit.as_f64().is_some() => {
                    let t = lit.as_f64().unwrap();
                    Some(
                        v.iter()
                            .map(|x| ord_matches(x.total_cmp(&t), *op, flipped))
                            .collect(),
                    )
                }
                _ => None,
            };
            let Some(verdicts) = verdicts else {
                return Ok(compare_literal_mask(lazy.column(idx)?, *op, lit, flipped));
            };
            let mut mask = Vec::with_capacity(n);
            for (&count, &verdict) in runs.counts.iter().zip(&verdicts) {
                mask.extend(std::iter::repeat_n(verdict, count as usize));
            }
            if let Some(validity) = chunk.validity() {
                and_into(&mut mask, validity);
            }
            Ok(Some(mask))
        }
        Encoding::Plain => Ok(compare_literal_mask(lazy.column(idx)?, *op, lit, flipped)),
    }
}

// ---------------------------------------------------------------------------
// Encoded grand-total aggregation
// ---------------------------------------------------------------------------

/// Replicate [`crate::aggregate::partition_batches`] over per-morsel row
/// counts, so the encoded path merges float partial sums in exactly the
/// partition structure the decoded path uses at equal parallelism.
fn partition_morsels(rows: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, rows.len().max(1));
    let total: usize = rows.iter().sum();
    let target = total.div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    let mut current_rows = 0;
    for (i, &r) in rows.iter().enumerate() {
        current_rows += r;
        if current_rows >= target && out.len() + 1 < parts {
            out.push(start..i + 1);
            start = i + 1;
            current_rows = 0;
        }
    }
    if start < rows.len() {
        out.push(start..rows.len());
    }
    out
}

/// Execute `SELECT agg(..), ..` (no GROUP BY, no residual filters) directly
/// over encoded chunks: COUNT from validity headers, SUM/MIN/MAX over RLE
/// runs and dictionary entries, decoding only Plain chunks. Metering, spans,
/// and results are bit-identical to scanning then aggregating.
pub fn execute_encoded_aggregate(
    ctx: &ExecContext,
    paths: &[String],
    projection: &[usize],
    zone_predicates: &[ColumnPredicate],
    aggs: &[AggExpr],
    output_schema: &SchemaRef,
) -> Result<Vec<RecordBatch>> {
    // The bypassed Scan operator still gets its span, so query profiles keep
    // the same shape and span byte sums still reconcile against the bill.
    let mut scan_span = ctx.trace.span("scan");
    let sctx = ctx.under(&scan_span);

    let mut readers = Vec::with_capacity(paths.len());
    let mut schemas: Vec<SchemaRef> = Vec::with_capacity(paths.len());
    let mut morsels: Vec<(usize, usize)> = Vec::new();
    for (fi, path) in paths.iter().enumerate() {
        let reader = open_metered(&sctx, path)?;
        let retained = reader.prune_row_groups(zone_predicates);
        sctx.metrics
            .add_row_groups(reader.num_row_groups() as u64, retained.len() as u64);
        morsels.extend(retained.into_iter().map(|rg| (fi, rg)));
        schemas.push(Arc::new(reader.schema().project(projection)));
        readers.push(reader);
    }

    let rows: Vec<usize> = morsels
        .iter()
        .map(|&(fi, rg)| readers[fi].footer().row_groups[rg].num_rows as usize)
        .collect();
    let partitions = partition_morsels(&rows, ctx.parallelism);
    let cache = ctx.chunk_cache.as_deref();

    let partials = parallel::run_indexed(partitions.len(), ctx.parallelism, |p| {
        let mut states: Vec<AggState> = aggs.iter().map(AggState::new).collect();
        let mut any_rows = false;
        for i in partitions[p].clone() {
            let (fi, rg) = morsels[i];
            let reader = &readers[fi];
            let mut span = sctx.trace.span("morsel");
            let mut hits = 0u64;
            let mut misses = 0u64;
            let chunks = projection
                .iter()
                .map(|&col| {
                    let (chunk, hit) = reader.read_encoded_chunk(rg, col, cache)?;
                    if hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    Ok(chunk)
                })
                .collect::<Result<Vec<EncodedChunk>>>()?;
            sctx.metrics.add_chunk_cache(hits, misses);
            let num_rows = rows[i];
            let lazy = LazyRowGroup::new(schemas[fi].clone(), chunks, num_rows);
            for (ai, agg) in aggs.iter().enumerate() {
                fold_agg(&mut states[ai], agg, &lazy)?;
            }
            any_rows |= num_rows > 0;
            let bytes = reader.row_group_bytes(rg, Some(projection));
            if span.enabled() {
                span.record_u64("row_group", rg as u64);
                span.record_u64("rows", num_rows as u64);
                span.record_u64("bytes", bytes);
            }
            sctx.metrics.add_scan(bytes, num_rows as u64);
            sctx.metrics.add_produced(num_rows as u64);
        }
        Ok(any_rows.then_some(states))
    })?;

    // Merge partials in partition order, mirroring merge_partial: the first
    // non-empty partial's states carry over wholesale, later ones merge.
    let mut acc: Option<Vec<AggState>> = None;
    for part in partials.into_iter().flatten() {
        if let Some(a) = acc.as_mut() {
            for (x, y) in a.iter_mut().zip(&part) {
                x.merge(y)?;
            }
        } else {
            acc = Some(part);
        }
    }
    // A grand total over zero rows still yields one output row.
    let states = acc.unwrap_or_else(|| aggs.iter().map(AggState::new).collect());

    scan_span.record_u64("rows_out", rows.iter().sum::<usize>() as u64);
    drop(scan_span);

    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type, 1))
        .collect();
    for (ai, s) in states.iter().enumerate() {
        let v = s.finish();
        let b = &mut builders[ai];
        if v.is_null() {
            b.push_null();
        } else {
            b.push(&v)?;
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok(vec![RecordBatch::try_new(output_schema.clone(), columns)?])
}

/// Fold one morsel's chunk into one aggregate state, reproducing
/// `update_agg_column`'s per-row semantics (including accumulation order for
/// floats and checked overflow for integer sums).
fn fold_agg(state: &mut AggState, agg: &AggExpr, lazy: &LazyRowGroup) -> Result<()> {
    let n = lazy.num_rows();
    let Some(arg) = &agg.arg else {
        // COUNT(*): every row counts, no chunk needed.
        if let AggState::Count(c) = state {
            *c += n as i64;
        } else {
            for _ in 0..n {
                state.update(&Value::Int64(1))?;
            }
        }
        return Ok(());
    };
    let BoundExpr::ColumnRef { index, .. } = arg else {
        return Err(Error::Exec(
            "encoded aggregate requires bare column arguments".into(),
        ));
    };
    match agg.func {
        AggFunc::Count => {
            // Valid-row count straight off the validity header — no decode.
            if let AggState::Count(c) = state {
                *c += lazy.chunk(*index).count_valid() as i64;
            }
            Ok(())
        }
        AggFunc::Sum | AggFunc::Avg => fold_numeric(state, lazy, *index),
        AggFunc::Min | AggFunc::Max => fold_minmax(state, lazy, *index),
    }
}

/// SUM/AVG over one chunk. RLE chunks fold per run; everything else decodes
/// and replicates the typed update loops exactly.
fn fold_numeric(state: &mut AggState, lazy: &LazyRowGroup, idx: usize) -> Result<()> {
    let chunk = lazy.chunk(idx);
    if chunk.encoding() == Encoding::Rle && try_fold_rle_numeric(state, chunk)? {
        return Ok(());
    }
    let col = lazy.column(idx)?;
    let validity = col.validity();
    let valid = |row: usize| validity.is_none_or(|v| v[row]);
    match state {
        AggState::SumFloat { sum, seen } => {
            if let Some(ns) = NumSlice::of(col.data()) {
                for row in 0..col.len() {
                    if valid(row) {
                        *sum += ns.get(row);
                        *seen = true;
                    }
                }
                return Ok(());
            }
        }
        AggState::SumInt { sum, seen } => {
            if let Some(xs) = int_view(col.data()) {
                for row in 0..col.len() {
                    if valid(row) {
                        *sum = sum
                            .checked_add(xs.get(row))
                            .ok_or_else(|| Error::Exec("SUM overflow".into()))?;
                        *seen = true;
                    }
                }
                return Ok(());
            }
        }
        AggState::Avg { sum, count } => {
            if let Some(ns) = NumSlice::of(col.data()) {
                for row in 0..col.len() {
                    if valid(row) {
                        *sum += ns.get(row);
                        *count += 1;
                    }
                }
                return Ok(());
            }
        }
        _ => {}
    }
    fold_general(state, col)
}

/// Fold an RLE chunk's runs into a SUM/AVG state without expanding them.
/// Returns false (untouched state) when the value type has no run kernel.
fn try_fold_rle_numeric(state: &mut AggState, chunk: &EncodedChunk) -> Result<bool> {
    let runs = chunk.rle_runs()?;
    // Compatibility is decided before any mutation so a bail-out leaves the
    // state untouched.
    match state {
        AggState::SumInt { .. } if int_view(&runs.values).is_none() => return Ok(false),
        AggState::SumFloat { .. } | AggState::Avg { .. }
            if NumSlice::of(&runs.values).is_none() =>
        {
            return Ok(false)
        }
        AggState::SumInt { .. } | AggState::SumFloat { .. } | AggState::Avg { .. } => {}
        _ => return Ok(false),
    }
    let validity = chunk.validity();
    let mut row = 0usize;
    for (ri, &count) in runs.counts.iter().enumerate() {
        let count = count as usize;
        let valid = match validity {
            Some(bits) => bits[row..row + count].iter().filter(|&&b| b).count(),
            None => count,
        };
        row += count;
        if valid == 0 {
            continue;
        }
        match state {
            AggState::SumInt { sum, seen } => {
                let v = int_view(&runs.values).expect("checked above").get(ri);
                // Within a run the partial sums are monotonic, so the
                // sequential checked adds overflow iff the endpoint does.
                let end = *sum as i128 + v as i128 * valid as i128;
                *sum = i64::try_from(end).map_err(|_| Error::Exec("SUM overflow".into()))?;
                *seen = true;
            }
            AggState::SumFloat { sum, seen } => {
                let v = NumSlice::of(&runs.values).expect("checked above").get(ri);
                // One add per valid row (not `valid * v`): float accumulation
                // order must match the decoded loop to the bit.
                for _ in 0..valid {
                    *sum += v;
                }
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                let v = NumSlice::of(&runs.values).expect("checked above").get(ri);
                for _ in 0..valid {
                    *sum += v;
                }
                *count += valid as i64;
            }
            _ => unreachable!("filtered by the compatibility check"),
        }
    }
    Ok(true)
}

/// MIN/MAX over one chunk: one strict update per RLE run / used dictionary
/// entry (order-independent under `total_cmp`), decoded loop for Plain.
fn fold_minmax(state: &mut AggState, lazy: &LazyRowGroup, idx: usize) -> Result<()> {
    let chunk = lazy.chunk(idx);
    match chunk.encoding() {
        Encoding::Rle => {
            let runs = chunk.rle_runs()?;
            let validity = chunk.validity();
            let mut row = 0usize;
            for (ri, &count) in runs.counts.iter().enumerate() {
                let count = count as usize;
                let any_valid = match validity {
                    Some(bits) => bits[row..row + count].iter().any(|&b| b),
                    None => true,
                };
                row += count;
                if any_valid {
                    state.update(&run_value(&runs.values, ri))?;
                }
            }
            Ok(())
        }
        Encoding::Dictionary => {
            let view = chunk.dict_view()?;
            let validity = chunk.validity();
            let mut used = vec![false; view.dict.len()];
            for (row, &code) in view.codes.iter().enumerate() {
                if validity.is_none_or(|v| v[row]) {
                    used[code as usize] = true;
                }
            }
            for (entry, used) in view.dict.iter().zip(used) {
                if used {
                    state.update(&Value::Utf8(entry.clone()))?;
                }
            }
            Ok(())
        }
        Encoding::Plain => fold_general(state, lazy.column(idx)?),
    }
}

/// The general per-row fold — exactly `update_agg_column`'s tail loop for a
/// single group without DISTINCT.
fn fold_general(state: &mut AggState, col: &Column) -> Result<()> {
    for row in 0..col.len() {
        let v = col.value(row);
        if v.is_null() {
            continue; // aggregates skip NULLs
        }
        state.update(&v)?;
    }
    Ok(())
}

/// One run's value as a `Value` (floats keep their exact bits).
fn run_value(values: &ColumnData, i: usize) -> Value {
    match values {
        ColumnData::Boolean(v) => Value::Boolean(v[i]),
        ColumnData::Int32(v) => Value::Int32(v[i]),
        ColumnData::Date(v) => Value::Date(v[i]),
        ColumnData::Int64(v) => Value::Int64(v[i]),
        ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
        ColumnData::Float64(v) => Value::Float64(v[i]),
        ColumnData::Utf8(v) => Value::Utf8(v[i].clone()),
    }
}
