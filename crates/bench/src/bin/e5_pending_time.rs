//! E5 — pending-time bounds per service level (paper §3.2).
//!
//! Submits the same spiky workload at each service level and measures
//! pending-time distributions. Expected shape: immediate ≈ 0 (CF guarantees
//! immediacy), relaxed bounded by the grace period at the server, and
//! best-of-effort unbounded (waits for the cluster to drain).

use pixels_bench::TextTable;
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, ResourcePricing, VmConfig};
use pixels_workload::QueryClass;

fn main() {
    println!("== E5: pending time per service level under a spike ==\n");
    let grace = SimDuration::from_secs(300);

    let mut table = TextTable::new(&[
        "service level",
        "queries",
        "pending p50",
        "pending p95",
        "pending max",
        "server wait ≤ grace",
        "CF fraction",
    ]);

    let mut level_stats = Vec::new();
    for level in ServiceLevel::ALL {
        // 20 medium queries at once on a cold 1-worker cluster, plus a light
        // trickle afterwards.
        let mut subs: Vec<Submission> = (0..20)
            .map(|_| Submission {
                at: SimTime::from_secs(5),
                class: QueryClass::Medium,
                level,
            })
            .collect();
        for i in 0..10 {
            subs.push(Submission {
                at: SimTime::from_secs(600 + i * 30),
                class: QueryClass::Light,
                level,
            });
        }
        let sim = ServerSim::new(
            VmConfig::default(),
            CfConfig::default(),
            ResourcePricing::default(),
            ServerConfig {
                grace_period: grace,
                tick: SimDuration::from_millis(100),
                ..Default::default()
            },
        );
        let report = sim.run(subs, SimDuration::from_secs(4 * 3600));
        assert_eq!(report.unfinished, 0, "{level}: all queries must finish");
        let stats = report.pending_stats(level);
        let max_server_wait = report
            .records_at(level)
            .map(|r| r.dispatched_at.since(r.submitted_at))
            .max()
            .unwrap_or(SimDuration::ZERO);
        table.row(&[
            level.name().to_string(),
            stats.count().to_string(),
            format!("{}", stats.percentile(0.5)),
            format!("{}", stats.percentile(0.95)),
            format!("{}", stats.max()),
            format!("{} ({max_server_wait})", max_server_wait <= grace),
            format!("{:.0}%", report.cf_fraction(level) * 100.0),
        ]);
        level_stats.push((level, stats, max_server_wait));
    }
    table.print();

    // Shape assertions.
    let imm = &level_stats[0].1;
    let rel = &level_stats[1];
    let be = &level_stats[2].1;
    assert_eq!(
        imm.max(),
        SimDuration::ZERO,
        "immediate queries start instantly"
    );
    assert!(
        rel.2 <= grace,
        "relaxed server-side wait bounded by the grace period"
    );
    assert!(
        be.max() >= rel.1.max(),
        "best-of-effort pending dominates relaxed"
    );
    println!(
        "\nimmediate = 0 pending; relaxed server wait ≤ {grace}; best-of-effort unbounded.\n\
         e5_pending_time: OK"
    );
}
