//! E3 — the cost crossover (paper §1): pure-CF execution is cost-efficient
//! for bursty, low-volume workloads but 1–2 orders of magnitude more
//! expensive than a provisioned VM cluster on sustained workloads.
//!
//! Sweeps a sustained Poisson arrival rate and compares provider-side cost
//! per query for (a) CF-only execution and (b) the auto-scaled VM cluster,
//! then shows the bursty case where CF-only wins.

use pixels_bench::TextTable;
use pixels_common::QueryId;
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, CfService, QueryWork, ResourcePricing, VmConfig};
use pixels_workload::{poisson, QueryClass};

/// CF-only: every query runs as its own function fleet. Returns $/query.
fn cf_only_cost(arrivals: &[SimTime], class: QueryClass) -> f64 {
    let mut cf = CfService::new(
        CfConfig::default(),
        ResourcePricing::default(),
        SimTime::ZERO,
    );
    for (i, &at) in arrivals.iter().enumerate() {
        cf.launch(QueryId(i as u64), QueryWork::from_class(class), at);
    }
    cf.total_cost / arrivals.len().max(1) as f64
}

/// VM cluster (relaxed level, CF disabled): provisioned cluster cost over
/// the run divided by queries served.
fn vm_cluster_cost(arrivals: &[SimTime], class: QueryClass) -> (f64, usize) {
    let subs: Vec<Submission> = arrivals
        .iter()
        .map(|&at| Submission {
            at,
            class,
            level: ServiceLevel::Relaxed,
        })
        .collect();
    let n = subs.len();
    let sim = ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(200),
            ..Default::default()
        },
    );
    let report = sim.run(subs, SimDuration::from_secs(4 * 3600));
    (
        report.total_resource_cost.total() / n.max(1) as f64,
        report.unfinished,
    )
}

fn main() {
    println!("== E3: CF-only vs VM-cluster cost across workload intensity ==\n");
    println!("Sustained workloads (medium queries over 2 simulated hours):");
    let duration = SimDuration::from_secs(2 * 3600);
    let mut table = TextTable::new(&[
        "rate (q/min)",
        "queries",
        "CF-only ($/q)",
        "auto-scaled VM ($/q)",
        "provisioned VM ($/q)",
        "CF/auto-VM",
        "CF/provisioned",
    ]);
    // The paper's [7] comparison point: a provisioned MPP cluster sized to
    // the workload pays only the core-seconds the queries consume.
    let work = pixels_turbo::QueryWork::from_class(QueryClass::Medium);
    let provisioned_per_q = ResourcePricing::default().vm_cost(work.cpu_seconds);
    let mut ratios = Vec::new();
    for rate_per_min in [0.5f64, 2.0, 6.0, 20.0, 60.0] {
        let arrivals = poisson(rate_per_min / 60.0, duration, 11);
        let cf = cf_only_cost(&arrivals, QueryClass::Medium);
        let (vm, unfinished) = vm_cluster_cost(&arrivals, QueryClass::Medium);
        assert_eq!(unfinished, 0, "VM cluster must finish the workload");
        let ratio_auto = cf / vm;
        let ratio_prov = cf / provisioned_per_q;
        ratios.push((rate_per_min, ratio_auto, ratio_prov));
        table.row(&[
            format!("{rate_per_min:.1}"),
            arrivals.len().to_string(),
            format!("{cf:.6}"),
            format!("{vm:.6}"),
            format!("{provisioned_per_q:.6}"),
            format!("{ratio_auto:.1}x"),
            format!("{ratio_prov:.1}x"),
        ]);
    }
    table.print();

    // Shape checks: the CF disadvantage grows with sustained load, and
    // against a well-utilized provisioned cluster it reaches the paper's
    // 1-2 orders of magnitude.
    let low = ratios.first().unwrap().1;
    let high = ratios.last().unwrap().1;
    assert!(
        high > low,
        "CF disadvantage must grow with sustained rate ({low:.2} -> {high:.2})"
    );
    let prov_ratio = ratios.last().unwrap().2;
    assert!(
        prov_ratio >= 10.0,
        "CF vs provisioned-VM ratio should reach 1-2 OOM, got {prov_ratio:.1}x"
    );

    // The bursty case: one 2-minute spike in an otherwise idle hour. The VM
    // cluster pays for provisioned capacity the whole hour; CF pays only
    // for the burst.
    println!("\nBursty workload (50 medium queries in one 2-minute spike, 1-hour window):");
    let spike: Vec<SimTime> = (0..50).map(|i| SimTime::from_secs(1800 + i * 2)).collect();
    let cf = cf_only_cost(&spike, QueryClass::Medium);
    let (vm, _) = vm_cluster_cost_padded(&spike);
    let mut t2 = TextTable::new(&["strategy", "$/query"]);
    t2.row(&["CF-only".into(), format!("{cf:.6}")]);
    t2.row(&["VM cluster (1h provisioned)".into(), format!("{vm:.6}")]);
    t2.print();
    assert!(
        cf < vm,
        "for a short burst in an idle hour, CF-only should be cheaper ({cf:.6} vs {vm:.6})"
    );
    println!("\ne3_cost_crossover: OK (CF wins on bursts, loses 1-2 OOM on sustained load)");
}

/// VM cost for a bursty trace, padding the simulation to a full hour so the
/// idle provisioned time is charged (as a real always-on cluster would be).
fn vm_cluster_cost_padded(arrivals: &[SimTime]) -> (f64, usize) {
    let mut subs: Vec<Submission> = arrivals
        .iter()
        .map(|&at| Submission {
            at,
            class: QueryClass::Medium,
            level: ServiceLevel::Relaxed,
        })
        .collect();
    // A sentinel light query at the end of the hour keeps the simulation
    // (and its cost clock) running through the idle tail.
    subs.push(Submission {
        at: SimTime::from_secs(3600),
        class: QueryClass::Light,
        level: ServiceLevel::Relaxed,
    });
    let n = arrivals.len();
    let sim = ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(200),
            ..Default::default()
        },
    );
    let report = sim.run(subs, SimDuration::from_secs(2 * 3600));
    (
        report.total_resource_cost.total() / n.max(1) as f64,
        report.unfinished,
    )
}
