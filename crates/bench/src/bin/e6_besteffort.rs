//! E6 — best-of-effort queries absorb idle capacity and avoid unnecessary
//! scale-in (paper §3.2, footnote 2).
//!
//! A foreground load with a trough between two busy phases would normally
//! let the cluster scale in, only to scale out again minutes later. Filling
//! the trough with best-of-effort queries keeps the workers usefully busy
//! at 10% of the immediate price.

use pixels_bench::TextTable;
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, ResourcePricing, VmConfig};
use pixels_workload::QueryClass;

fn foreground() -> Vec<Submission> {
    let mut subs = Vec::new();
    // Two busy phases of bursty immediate traffic (bursts of 8 push
    // concurrency past the high watermark, forcing scale-out), separated by
    // a 5-minute trough in which the autoscaler would normally start
    // releasing workers.
    for (phase_start, bursts) in [(0u64, 10u64), (900, 10)] {
        for b in 0..bursts {
            for _ in 0..8 {
                subs.push(Submission {
                    at: SimTime::from_secs(phase_start + b * 60),
                    class: QueryClass::Medium,
                    level: ServiceLevel::Immediate,
                });
            }
        }
    }
    subs
}

fn backfill() -> Vec<Submission> {
    // A batch of best-of-effort maintenance queries submitted as the trough
    // begins; the server feeds them in while the cluster is nearly idle,
    // keeping per-worker concurrency at the low watermark so the cluster
    // does not scale in before the next busy phase.
    (0..30)
        .map(|i| Submission {
            at: SimTime::from_secs(600 + i),
            class: QueryClass::Heavy,
            level: ServiceLevel::BestEffort,
        })
        .collect()
}

fn run(with_backfill: bool) -> pixels_server::SimReport {
    let mut subs = foreground();
    if with_backfill {
        subs.extend(backfill());
    }
    let sim = ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(200),
            ..Default::default()
        },
    );
    sim.run(subs, SimDuration::from_secs(4 * 3600))
}

fn main() {
    println!("== E6: best-of-effort backfill during the trough ==\n");
    let without = run(false);
    let with = run(true);

    let mut table = TextTable::new(&[
        "configuration",
        "scale-in events",
        "scale-out events",
        "VM cost ($)",
        "CF cost ($)",
        "best-effort revenue ($)",
    ]);
    for (name, r) in [
        ("foreground only", &without),
        ("with best-effort backfill", &with),
    ] {
        let be_revenue: f64 = r
            .records_at(ServiceLevel::BestEffort)
            .map(|q| q.price)
            .sum();
        table.row(&[
            name.to_string(),
            r.scale_in_events.to_string(),
            r.scale_out_events.to_string(),
            format!("{:.4}", r.total_resource_cost.vm_dollars),
            format!("{:.4}", r.total_resource_cost.cf_dollars),
            format!("{be_revenue:.6}"),
        ]);
    }
    table.print();

    assert_eq!(with.unfinished, 0);
    let be: Vec<_> = with.records_at(ServiceLevel::BestEffort).collect();
    assert_eq!(be.len(), 30, "all backfill queries completed");
    // Count scale-ins inside the trough window specifically: that is the
    // "unnecessary scaling-in right before the next spike" the paper's
    // best-of-effort level prevents.
    let trough = |times: &[SimTime]| {
        times
            .iter()
            .filter(|t| **t >= SimTime::from_secs(600) && **t < SimTime::from_secs(900))
            .count()
    };
    let without_trough = trough(&without.scale_in_times);
    let with_trough = trough(&with.scale_in_times);
    println!(
        "\nScale-ins during the trough (10-15 min): {} without backfill, {} with.",
        without_trough, with_trough
    );
    assert!(
        without_trough >= 1,
        "without backfill the trough must trigger scale-in"
    );
    assert!(
        with_trough < without_trough,
        "backfill must reduce trough scale-in ({with_trough} vs {without_trough})"
    );
    // Backfill runs only when the cluster is nearly idle, so it barely
    // displaces foreground work (a small tail may collide with the start of
    // the next busy phase).
    assert!(
        with.cf_fraction(ServiceLevel::Immediate)
            <= without.cf_fraction(ServiceLevel::Immediate) + 0.08,
        "backfill must not displace significant foreground work into CF"
    );
    // Idle capacity absorbed: backfill should keep workers busier, reducing
    // (or at least not increasing) scale-in thrash during the trough.
    assert!(
        with.scale_in_events <= without.scale_in_events,
        "backfill avoids unnecessary scale-in ({} vs {})",
        with.scale_in_events,
        without.scale_in_events
    );
    // VM cost grows little: the trough capacity was already paid for.
    let extra_cost = with.total_resource_cost.total() - without.total_resource_cost.total();
    println!(
        "\nBackfill ran {} queries for {:+.4}$ extra provider cost (paid-for idle capacity).",
        be.len(),
        extra_cost
    );
    println!("e6_besteffort: OK");
}
