//! E2 — elasticity: CF creates hundreds of workers in ~1 s; the VM cluster
//! needs 1–2 minutes to scale (paper §2/§3.1).
//!
//! Measures time-to-N-workers for both resource types on the virtual clock.

use pixels_bench::TextTable;
use pixels_common::QueryId;
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, CfService, QueryWork, ResourcePricing, VmCluster, VmConfig};

/// Time for the VM cluster to go from 1 active worker to `target` active
/// workers under sustained overload.
fn vm_time_to_capacity(target: u32) -> SimDuration {
    let cfg = VmConfig {
        max_workers: target,
        target_per_worker: 1.0,
        ..Default::default()
    };
    let mut cluster = VmCluster::new(cfg, SimTime::ZERO);
    // Sustained overload: enough long-running queries to demand `target`
    // workers.
    for i in 0..target as u64 * 2 {
        cluster.start(
            QueryId(i),
            QueryWork {
                scan_bytes: 0,
                cpu_seconds: 1e9, // effectively never finishes
                parallelism: 4,
            },
        );
    }
    let dt = SimDuration::from_millis(100);
    let mut now = SimTime::ZERO;
    while cluster.active_workers() < target {
        now += dt;
        cluster.tick(now, dt);
        if now > SimTime::from_secs(3600) {
            break;
        }
    }
    now.since(SimTime::ZERO)
}

/// Time for the CF service to reach `target` concurrent workers for one
/// query fleet.
fn cf_time_to_capacity(target: u32) -> SimDuration {
    let mut cf = CfService::new(
        CfConfig {
            max_workers_per_query: target,
            ..Default::default()
        },
        ResourcePricing::default(),
        SimTime::ZERO,
    );
    cf.launch(
        QueryId(0),
        QueryWork {
            scan_bytes: 0,
            cpu_seconds: 100.0,
            parallelism: target,
        },
        SimTime::ZERO,
    );
    assert_eq!(cf.active_workers(), target);
    cf.config().startup
}

fn main() {
    println!("== E2: elasticity of VM cluster vs cloud functions ==\n");
    let mut table = TextTable::new(&[
        "target workers",
        "VM time-to-capacity",
        "CF time-to-capacity",
        "CF advantage",
    ]);
    for target in [8u32, 32, 128, 256] {
        let vm = vm_time_to_capacity(target);
        let cf = cf_time_to_capacity(target);
        table.row(&[
            target.to_string(),
            format!("{vm}"),
            format!("{cf}"),
            format!("{:.0}x", vm.as_secs_f64() / cf.as_secs_f64()),
        ]);
        assert!(
            vm >= SimDuration::from_secs(60) && vm <= SimDuration::from_secs(900),
            "VM scale-out should take minutes (growing with fleet size), got {vm}"
        );
        assert!(cf <= SimDuration::from_secs(1), "CF should spawn in ~1s");
    }
    table.print();
    println!(
        "\nVM boot lag: {} per worker batch; CF startup: sub-second for the whole fleet.",
        VmConfig::default().boot_time
    );
    println!("e2_elasticity: OK (VM needs minutes, CF needs ~1 second)");
}
