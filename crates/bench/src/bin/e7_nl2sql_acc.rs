//! E7 — single-turn text-to-SQL accuracy (paper §3.3 / CodeS [9]).
//!
//! Runs the built-in Spider-style suite through the CodeS-substitute
//! service and reports exact-match and execution accuracy plus per-question
//! translation latency. The paper cites >80% single-turn execution accuracy
//! for CodeS; the grammar-based substitute reproduces that shape on this
//! suite.

use pixels_bench::{demo_data, TextTable};
use pixels_nl2sql::{evaluate, CodesService, TextToSqlService, CASES};
use std::time::Instant;

fn main() {
    println!("== E7: single-turn text-to-SQL accuracy ==\n");
    let (catalog, store) = demo_data(0.002);
    let service = CodesService::new(catalog.clone(), store.clone());

    // Warm the per-database translators so latency measures translation.
    let _ = service.translate("tpch", "how many orders");
    let _ = service.translate("logs", "how many requests");

    let report = evaluate(&service, &catalog, store, CASES).expect("benchmark runs");

    let mut table = TextTable::new(&["case", "exact", "exec", "note"]);
    for c in &report.cases {
        table.row(&[
            c.id.to_string(),
            if c.exact_match { "yes" } else { "-" }.to_string(),
            if c.execution_match { "yes" } else { "NO" }.to_string(),
            c.error.clone().unwrap_or_default(),
        ]);
    }
    table.print();

    // Latency: single-turn translation must be interactive.
    let mut total_us = 0u128;
    let mut n = 0u128;
    for case in CASES {
        let start = Instant::now();
        let _ = service.translate(case.database, case.question);
        total_us += start.elapsed().as_micros();
        n += 1;
    }
    let mean_ms = total_us as f64 / n as f64 / 1000.0;

    println!(
        "\nexact match      : {}/{} ({:.0}%)",
        report.exact_matches(),
        report.total(),
        report.exact_matches() as f64 / report.total() as f64 * 100.0
    );
    println!(
        "execution accuracy: {}/{} ({:.0}%)",
        report.execution_matches(),
        report.total(),
        report.execution_accuracy() * 100.0
    );
    println!("mean single-turn translation latency: {mean_ms:.2} ms");

    assert!(
        report.execution_accuracy() >= 0.8,
        "execution accuracy must clear the paper's 80% bar"
    );
    println!("\ne7_nl2sql_acc: OK (>80% single-turn execution accuracy)");
}
