//! Observability smoke test — the CI gate for the tracing/metrics surface.
//!
//! Starts the real HTTP server, runs one traced query end-to-end over the
//! wire, then:
//!
//! 1. scrapes `GET /metrics` and validates the Prometheus text exposition
//!    (syntax + required metric families),
//! 2. fetches the query's span-tree profile from `GET /queries/<id>/profile`
//!    and checks that its byte attribution sums exactly to the billed
//!    `scan_bytes`,
//! 3. writes the profile to `results/query_profile.json` (uploaded as a CI
//!    artifact).
//!
//! Exits non-zero on any failure, so CI fails on malformed exposition,
//! missing families, or a broken trace.

use pixels_bench::demo_data;
use pixels_common::Json;
use pixels_server::{HttpServer, PriceSchedule, QueryServer};
use pixels_turbo::{EngineConfig, TurboEngine};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const REQUIRED_FAMILIES: &[&str] = &[
    // query
    "pixels_queries_total",
    "pixels_query_pending_seconds",
    "pixels_query_execution_seconds",
    // scheduler
    "pixels_scheduler_queue_depth",
    // exec
    "pixels_exec_bytes_scanned_total",
    "pixels_exec_rows_scanned_total",
    "pixels_exec_row_groups_read_total",
    // scan pipeline
    "pixels_scan_prefetch_issued_total",
    "pixels_scan_prefetch_hits_total",
    "pixels_scan_prefetch_wasted_total",
    // cache
    "pixels_cache_footer_hits_total",
    "pixels_cache_chunk_hits_total",
    "pixels_cache_chunk_misses_total",
    "pixels_cache_chunk_evictions_total",
    // storage
    "pixels_storage_get_requests_total",
    "pixels_storage_bytes_read_total",
    // SLO
    "pixels_slo_good_total",
    "pixels_slo_violation_total",
    "pixels_slo_burn_rate",
    "pixels_slo_threshold_seconds",
    // economics ledger
    "pixels_ledger_entries_total",
    "pixels_ledger_revenue_dollars",
    "pixels_ledger_provider_dollars",
    // exchange (multi-stage CF shuffles)
    "pixels_exchange_partitions_total",
    "pixels_exchange_put_bytes_total",
    "pixels_exchange_get_bytes_total",
    "pixels_exchange_spilled_rows_total",
];

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, payload) = response.split_once("\r\n\r\n").expect("http response");
    (
        head.lines().next().unwrap_or("").to_string(),
        payload.to_string(),
    )
}

/// Check `self_us` on every node of a profile forest: present, and never
/// larger than the node's own duration. Returns the first offending node.
fn bad_self_time(node: &Json) -> Option<String> {
    let duration = node
        .get("duration_us")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    match node.get("self_us").and_then(|v| v.as_f64()) {
        None => return Some(format!("{} has no self_us", node.to_compact_string())),
        Some(s) if s > duration => {
            return Some(format!("self_us {s} exceeds duration {duration}"));
        }
        Some(_) => {}
    }
    node.get("children")
        .and_then(|c| c.as_array())
        .into_iter()
        .flatten()
        .find_map(bad_self_time)
}

/// Sum one numeric attribute over a profile span forest.
fn sum_attr(node: &Json, key: &str) -> f64 {
    let mut total = node
        .get("attrs")
        .and_then(|a| a.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    if let Some(children) = node.get("children").and_then(|c| c.as_array()) {
        for c in children {
            total += sum_attr(c, key);
        }
    }
    total
}

fn main() {
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool, detail: &str| {
        if ok {
            println!("ok   {name}");
        } else {
            println!("FAIL {name}: {detail}");
            failures += 1;
        }
    };

    let (catalog, store) = demo_data(0.002);
    let engine = Arc::new(TurboEngine::new(catalog, store, EngineConfig::default()));
    let server = Arc::new(QueryServer::new(engine, PriceSchedule::default()));
    let http = HttpServer::start(server.clone(), None, 0).expect("start http server");
    let addr = http.addr();
    println!("server listening on {addr}");

    // Submit one query over the wire and poll to completion.
    let (status, body) = request(
        addr,
        "POST",
        "/queries",
        r#"{"database":"tpch","sql":"SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus ORDER BY n DESC","level":"immediate"}"#,
    );
    check("submit accepted", status.contains("202"), &status);
    let id = Json::parse(&body)
        .ok()
        .and_then(|j| j.get("id").and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_default();
    let mut info = Json::Null;
    for _ in 0..1000 {
        let (_, payload) = request(addr, "GET", &format!("/queries/{id}"), "");
        let j = Json::parse(&payload).unwrap_or(Json::Null);
        match j.get("status").and_then(|s| s.as_str()) {
            Some("finished") | Some("failed") => {
                info = j;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    check(
        "query finished",
        info.get("status").and_then(|s| s.as_str()) == Some("finished"),
        &info.to_compact_string(),
    );
    let scan_bytes = info
        .get("scan_bytes")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    check("query billed bytes", scan_bytes > 0.0, "scan_bytes == 0");

    // 1. /metrics: valid exposition with every required family.
    let (status, text) = request(addr, "GET", "/metrics", "");
    check("metrics endpoint 200", status.contains("200"), &status);
    match pixels_obs::validate_exposition(&text) {
        Ok(families) => {
            println!("     {} metric families exposed", families.len());
            for f in REQUIRED_FAMILIES {
                check(&format!("family {f}"), families.contains(*f), "missing");
            }
        }
        Err(e) => check("exposition valid", false, &e),
    }

    // 2. Profile: span tree whose byte attribution matches billing.
    let (status, payload) = request(addr, "GET", &format!("/queries/{id}/profile"), "");
    check("profile endpoint 200", status.contains("200"), &status);
    let profile = Json::parse(&payload)
        .ok()
        .and_then(|j| j.get("profile").cloned())
        .unwrap_or(Json::Null);
    let rendered = profile.to_compact_string();
    for span in ["query", "scheduler_wait", "scan", "storage_open", "morsel"] {
        check(
            &format!("span {span}"),
            rendered.contains(&format!("\"name\":\"{span}\"")),
            "missing from profile",
        );
    }
    let attributed: f64 = profile
        .as_array()
        .map(|roots| roots.iter().map(|r| sum_attr(r, "bytes")).sum())
        .unwrap_or(0.0);
    check(
        "bytes reconcile",
        attributed == scan_bytes,
        &format!("profile attributes {attributed} bytes, billed {scan_bytes}"),
    );

    let self_time_problem = profile
        .as_array()
        .and_then(|roots| roots.iter().find_map(bad_self_time));
    check(
        "self-time attribution",
        self_time_problem.is_none(),
        self_time_problem.as_deref().unwrap_or(""),
    );

    // 3. SLO tracker: the finished query must land in a bucket, with a
    //    threshold derived from the scheduler and burn rates per window.
    let (status, payload) = request(addr, "GET", "/slo", "");
    check("slo endpoint 200", status.contains("200"), &status);
    let slo = Json::parse(&payload).unwrap_or(Json::Null);
    let immediate = slo
        .get("levels")
        .and_then(|l| l.get("immediate"))
        .cloned()
        .unwrap_or(Json::Null);
    check(
        "slo counts the query",
        immediate.get("good_total").and_then(|v| v.as_f64()) == Some(1.0),
        &payload,
    );
    check(
        "slo burn-rate windows",
        immediate
            .get("burn_rate")
            .and_then(|b| b.get("5m"))
            .is_some(),
        &payload,
    );

    // 4. Economics ledger: one entry whose billed bytes equal the query's.
    let (status, payload) = request(addr, "GET", "/ledger", "");
    check("ledger endpoint 200", status.contains("200"), &status);
    let ledger = Json::parse(&payload).unwrap_or(Json::Null);
    let summary = ledger.get("summary").cloned().unwrap_or(Json::Null);
    check(
        "ledger entry recorded",
        summary.get("entries").and_then(|v| v.as_f64()) == Some(1.0),
        &payload,
    );
    check(
        "ledger bytes reconcile",
        summary.get("bytes_billed").and_then(|v| v.as_f64()) == Some(scan_bytes),
        &payload,
    );

    // 5. Artifact for CI.
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/query_profile.json", rendered.as_bytes()).expect("write profile");
    println!("wrote results/query_profile.json");

    http.shutdown();
    if failures > 0 {
        println!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall checks passed");
}
