//! E9 — CF resource unit price is 9–24× the VM unit price (paper §2, [7]).
//!
//! Reports the raw and effective unit-price ratios of the cost model, then
//! validates them against end-to-end simulated executions: the same query
//! run purely in CF vs. on a dedicated VM worker.

use pixels_bench::TextTable;
use pixels_common::QueryId;
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, CfService, QueryWork, ResourcePricing, VmCluster, VmConfig};
use pixels_workload::QueryClass;

/// Cost of running `work` alone on a dedicated VM worker (charged only for
/// the core-seconds consumed — the marginal cost inside a busy cluster).
fn vm_marginal_cost(work: QueryWork, pricing: &ResourcePricing) -> (f64, SimDuration) {
    let mut cluster = VmCluster::new(VmConfig::default(), SimTime::ZERO);
    cluster.start(QueryId(0), work);
    let dt = SimDuration::from_millis(50);
    let mut now = SimTime::ZERO;
    loop {
        now += dt;
        let done = cluster.tick(now, dt);
        if let Some(d) = done.first() {
            return (
                pricing.vm_cost(d.core_seconds),
                d.finished_at.since(d.started_at),
            );
        }
        assert!(now < SimTime::from_secs(7200), "query must finish");
    }
}

fn cf_cost(work: QueryWork, pricing: ResourcePricing) -> (f64, SimDuration) {
    let mut cf = CfService::new(CfConfig::default(), pricing, SimTime::ZERO);
    let run = cf.launch(QueryId(0), work, SimTime::ZERO);
    (run.cost, run.finish_at.since(run.started_at))
}

fn main() {
    println!("== E9: CF vs VM resource unit prices ==\n");
    let pricing = ResourcePricing::default();
    let cf_service = CfService::new(CfConfig::default(), pricing, SimTime::ZERO);

    println!("Unit prices:");
    let mut t = TextTable::new(&["quantity", "value"]);
    t.row(&[
        "VM core-hour".into(),
        format!("${:.4}", pricing.vm_core_hour),
    ]);
    t.row(&[
        "CF GB-second".into(),
        format!("${:.9}", pricing.cf_gb_second),
    ]);
    t.row(&[
        "CF effective core-hour".into(),
        format!("${:.4}", pricing.cf_core_hour_equivalent()),
    ]);
    t.row(&[
        "raw CF/VM unit ratio".into(),
        format!("{:.1}x", pricing.cf_vm_unit_ratio()),
    ]);
    t.row(&[
        "effective ratio (with CF execution overheads)".into(),
        format!("{:.1}x", cf_service.effective_unit_ratio()),
    ]);
    t.print();

    println!("\nEnd-to-end per-query cost, pure CF vs dedicated VM:");
    let mut table = TextTable::new(&[
        "query class",
        "VM cost ($)",
        "VM time",
        "CF cost ($)",
        "CF time",
        "cost ratio",
    ]);
    let mut ratios = Vec::new();
    for class in QueryClass::ALL {
        let work = QueryWork::from_class(class);
        let (vm_c, vm_t) = vm_marginal_cost(work, &pricing);
        let (cf_c, cf_t) = cf_cost(work, pricing);
        let ratio = cf_c / vm_c;
        ratios.push(ratio);
        table.row(&[
            class.name().to_string(),
            format!("{vm_c:.6}"),
            format!("{vm_t}"),
            format!("{cf_c:.6}"),
            format!("{cf_t}"),
            format!("{ratio:.1}x"),
        ]);
    }
    table.print();

    for (class, ratio) in QueryClass::ALL.iter().zip(&ratios) {
        assert!(
            (4.0..40.0).contains(ratio),
            "{}: CF/VM cost ratio {ratio:.1} outside plausible band",
            class.name()
        );
    }
    let medium_up = ratios[1..].iter().all(|r| *r >= 5.0);
    assert!(
        medium_up,
        "medium/heavy queries should sit in the paper's 9-24x band, got {ratios:?}"
    );
    println!(
        "\nThe effective ratio lands in the paper's 9-24x band for analytical queries \
         (startup waste inflates the light-query ratio further)."
    );
    println!("e9_unit_price: OK");
}
