//! X1 (extension) — batch query optimization for best-of-effort queries.
//!
//! The paper closes with: the service levels "also provide opportunities
//! for batch query optimization." This harness implements and measures the
//! most natural such optimization: same-class best-of-effort queries parked
//! in the query server are merged into one execution that shares a single
//! table scan. The ablation compares batching off vs on.

use pixels_bench::TextTable;
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, SimReport, Submission};
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, ResourcePricing, VmConfig};
use pixels_workload::QueryClass;

fn run(batching: bool, n_queries: usize) -> SimReport {
    let cfg = ServerConfig {
        batch_besteffort: batching,
        max_batch: 8,
        ..Default::default()
    };
    // A busy foreground so the best-of-effort queries accumulate in the
    // server queue before the cluster goes idle.
    let mut subs: Vec<Submission> = (0..8)
        .map(|_| Submission {
            at: SimTime::from_secs(1),
            class: QueryClass::Medium,
            level: ServiceLevel::Immediate,
        })
        .collect();
    for i in 0..n_queries {
        subs.push(Submission {
            at: SimTime::from_secs(2 + i as u64 % 5),
            class: QueryClass::Medium,
            level: ServiceLevel::BestEffort,
        });
    }
    ServerSim::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        cfg,
    )
    .run(subs, SimDuration::from_secs(4 * 3600))
}

fn main() {
    println!("== X1 (extension): batch query optimization for best-of-effort ==\n");
    let mut table = TextTable::new(&[
        "queries",
        "mode",
        "total bytes scanned",
        "total user bill ($)",
        "provider cost ($)",
        "makespan (s)",
    ]);
    for n in [4usize, 16, 32] {
        for batching in [false, true] {
            let report = run(batching, n);
            assert_eq!(report.unfinished, 0);
            let be: Vec<_> = report.records_at(ServiceLevel::BestEffort).collect();
            assert_eq!(be.len(), n, "every member gets a record");
            let bytes: u64 = be.iter().map(|r| r.scan_bytes).sum();
            let bill: f64 = be.iter().map(|r| r.price).sum();
            let cost: f64 = be.iter().map(|r| r.resource_cost.total()).sum();
            let makespan = be
                .iter()
                .map(|r| r.finished_at)
                .max()
                .unwrap()
                .since(SimTime::from_secs(2));
            table.row(&[
                n.to_string(),
                if batching { "batched" } else { "one-by-one" }.to_string(),
                pixels_common::bytesize::format_bytes(bytes),
                format!("{bill:.6}"),
                format!("{cost:.6}"),
                format!("{:.0}", makespan.as_secs_f64()),
            ]);
        }
    }
    table.print();

    // Shape assertion at the largest size.
    let plain = run(false, 32);
    let batched = run(true, 32);
    let sum_bytes = |r: &SimReport| -> u64 {
        r.records_at(ServiceLevel::BestEffort)
            .map(|q| q.scan_bytes)
            .sum()
    };
    let sum_cost = |r: &SimReport| -> f64 {
        r.records_at(ServiceLevel::BestEffort)
            .map(|q| q.resource_cost.total())
            .sum()
    };
    assert!(sum_bytes(&batched) * 4 <= sum_bytes(&plain));
    assert!(sum_cost(&batched) < sum_cost(&plain) * 0.8);

    // The batching arithmetic was promoted into `pixels_exec::batch` (the
    // sim and the live server both call it); reconcile the sim's batched
    // records against the library directly. A full batch shares exactly one
    // scan — member shares must sum to it without losing a byte — and the
    // merged execution charges the carrier full CPU plus a reduced
    // per-member fraction for each rider.
    use pixels_exec::batch::{member_share, merged_cpu_seconds, SHARED_MEMBER_CPU_FRACTION};
    let single = pixels_turbo::QueryWork::from_class(QueryClass::Medium);
    for members in [2usize, 5, 8] {
        let shares: Vec<u64> = (0..members)
            .map(|i| member_share(single.scan_bytes, members, i))
            .collect();
        assert_eq!(
            shares.iter().sum::<u64>(),
            single.scan_bytes,
            "member shares must partition one scan exactly"
        );
        let merged = merged_cpu_seconds(single.cpu_seconds, members);
        let expected = single.cpu_seconds
            + single.cpu_seconds * SHARED_MEMBER_CPU_FRACTION * (members - 1) as f64;
        assert!(
            (merged - expected).abs() < 1e-9,
            "merged cpu {merged} != carrier + riders {expected}"
        );
        assert!(merged < single.cpu_seconds * members as f64);
    }
    println!(
        "\nSharing one scan across a batch cuts scanned bytes by {:.0}x and provider cost by {:.0}%.",
        sum_bytes(&plain) as f64 / sum_bytes(&batched) as f64,
        (1.0 - sum_cost(&batched) / sum_cost(&plain)) * 100.0
    );
    println!("x1_batch_optimization: OK");
}
