//! Journal replay checker — the CI gate for the structured query journal.
//!
//! Runs a traced TPC-H batch through the in-process query server (every
//! service level, two tenants, one deliberately failing query), then treats
//! the journal as the system of record:
//!
//! 1. parses the JSON-lines journal back into entries,
//! 2. replays them into aggregates (queries per level/status, SLO buckets,
//!    ledger entries, revenue folded in append order),
//! 3. diffs the replayed aggregates against the live `/metrics` exposition —
//!    both directions, revenue bit-for-bit,
//! 4. cross-checks the ledger and SLO endpoints against the same journal,
//! 5. writes `results/slo_soak.json` (uploaded as a CI artifact).
//!
//! Exits non-zero on any diff: a journal that cannot reproduce the registry
//! is a broken system of record.

use pixels_bench::demo_data;
use pixels_common::Json;
use pixels_obs::journal::replay;
use pixels_obs::QueryJournal;
use pixels_server::{PriceSchedule, QueryServer, QuerySubmission, ServiceLevel};
use pixels_turbo::{EngineConfig, TurboEngine};
use std::sync::Arc;

const BATCH: &[&str] = &[
    "SELECT COUNT(*) AS n FROM orders",
    "SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus ORDER BY n DESC",
    "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity > 25",
    "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag",
    "SELECT COUNT(*) AS n FROM customer",
    "SELECT n_name, COUNT(*) AS c FROM nation GROUP BY n_name ORDER BY c DESC",
    "SELECT COUNT(*) AS n FROM part WHERE p_size > 20",
    "SELECT COUNT(*) AS n FROM supplier",
    "SELECT COUNT(*) AS n FROM region",
];

fn main() {
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool, detail: &str| {
        if ok {
            println!("ok   {name}");
        } else {
            println!("FAIL {name}: {detail}");
            failures += 1;
        }
    };

    let (catalog, store) = demo_data(0.002);
    let engine = Arc::new(TurboEngine::new(catalog, store, EngineConfig::default()));
    let server = Arc::new(QueryServer::new(engine, PriceSchedule::default()));

    // A traced batch across every service level and two tenants, plus one
    // failing query so the journal carries a failed lifecycle too.
    let tenants = ["acme", "globex"];
    for (i, sql) in BATCH.iter().enumerate() {
        server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: sql.to_string(),
            level: ServiceLevel::ALL[i % ServiceLevel::ALL.len()],
            result_limit: None,
            tenant: Some(tenants[i % tenants.len()].into()),
            deadline_us: None,
        });
    }
    server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: "SELECT no_such_column FROM orders".into(),
        level: ServiceLevel::Relaxed,
        result_limit: None,
        tenant: Some("acme".into()),
        deadline_us: None,
    });
    server.wait_all();

    // 1. Parse the journal back.
    let jsonl = server.journal_jsonl();
    let entries = match QueryJournal::parse_jsonl(&jsonl) {
        Ok(e) => e,
        Err(e) => {
            println!("FAIL journal parse: {e}");
            std::process::exit(1);
        }
    };
    check(
        "journal covers the batch",
        entries.len() == BATCH.len() + 1,
        &format!("{} entries for {} queries", entries.len(), BATCH.len() + 1),
    );
    let failed = entries.iter().filter(|e| e.status == "failed").count();
    check(
        "failed lifecycle journaled",
        failed == 1,
        &format!("{failed}"),
    );

    // 2 + 3. Replay and diff against the live exposition.
    let aggregates = replay(&entries);
    let metrics = server.metrics_text();
    if let Err(e) = pixels_obs::require_families(
        &metrics,
        &[
            "pixels_queries_total",
            "pixels_slo_good_total",
            "pixels_slo_violation_total",
            "pixels_slo_burn_rate",
            "pixels_ledger_entries_total",
            "pixels_ledger_revenue_dollars",
            "pixels_exchange_partitions_total",
            "pixels_exchange_put_bytes_total",
            "pixels_exchange_get_bytes_total",
            "pixels_exchange_spilled_rows_total",
        ],
    ) {
        check("required families", false, &e);
    } else {
        check("required families", true, "");
    }
    let diffs = aggregates.diff_against_exposition(&metrics);
    for d in &diffs {
        println!("     diff: {d}");
    }
    check(
        "journal reproduces the registry",
        diffs.is_empty(),
        "see diffs",
    );

    // 4. The ledger holds exactly the finished queries, and the revenue the
    //    journal folds matches the ledger summary bit-for-bit: the summary
    //    accumulates in append order, so fold the replayed per-level sums in
    //    the same sorted-level order the ledger's own export uses.
    let ledger = server.ledger();
    let replayed_entries: u64 = aggregates.ledger_entries.values().sum();
    check(
        "ledger entry count",
        ledger.len() as u64 == replayed_entries,
        &format!("{} vs {}", ledger.len(), replayed_entries),
    );
    let summary = ledger.summary();
    let by_level = ledger.by_level();
    let mut replayed_revenue_ok = true;
    for (level, revenue) in &aggregates.revenue_dollars {
        let ledger_level = by_level
            .get(level)
            .map(|s| s.revenue_dollars)
            .unwrap_or(0.0);
        if ledger_level.to_bits() != revenue.to_bits() {
            println!("     revenue[{level}]: ledger {ledger_level} vs journal {revenue}");
            replayed_revenue_ok = false;
        }
    }
    check(
        "per-level revenue reconciles bit-for-bit",
        replayed_revenue_ok,
        "see mismatches",
    );
    check(
        "total revenue is the fold of finished entries",
        summary.revenue_dollars.to_bits()
            == entries
                .iter()
                .filter(|e| e.status == "finished")
                .fold(0.0f64, |acc, e| acc + e.revenue_dollars)
                .to_bits(),
        &format!("{}", summary.revenue_dollars),
    );

    // 5. Artifact for CI.
    let mut report: std::collections::BTreeMap<String, Json> = Default::default();
    report.insert("queries".into(), Json::number(entries.len() as f64));
    report.insert("failed".into(), Json::number(failed as f64));
    report.insert("diffs".into(), Json::number(diffs.len() as f64));
    report.insert("slo".into(), server.slo_json());
    report.insert("ledger".into(), server.ledger_json());
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/slo_soak.json",
        Json::Object(report).to_compact_string().as_bytes(),
    )
    .expect("write slo_soak.json");
    println!("wrote results/slo_soak.json");

    if failures > 0 {
        println!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall checks passed");
}
