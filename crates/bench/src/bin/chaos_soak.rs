//! `chaos_soak` — the CI chaos gate: a seeded fault matrix proving that
//! fault injection changes *when* queries finish, never *what* they answer
//! or what the user is billed.
//!
//! For every scenario in the matrix (object-store GET errors, GET latency
//! spikes, CF worker crashes, CF stragglers — crossed with service levels)
//! the harness builds two identical deployments that differ only in the
//! seeded [`FaultPlan`], runs the same TPC-H queries through both, and
//! asserts:
//!
//! 1. **Result equivalence** — every batch is bit-identical to the
//!    fault-free run.
//! 2. **Billing equivalence** — billed `scan_bytes` (and thus the $/TB
//!    price) match the fault-free run exactly: retries re-read for free,
//!    failed GETs bill nothing, and speculation bills only the winner.
//! 3. **Fault visibility** — `/metrics` stays a valid Prometheus
//!    exposition and carries nonzero `pixels_faults_injected_total` (plus
//!    `pixels_retries_total` for storage scenarios).
//!
//! Availability/latency/cost deltas per scenario are printed as a table and
//! written to `results/chaos_soak.json` (uploaded as a CI artifact; the
//! headline numbers are recorded in EXPERIMENTS.md).

use pixels_bench::TextTable;
use pixels_catalog::Catalog;
use pixels_chaos::{FaultInjector, FaultPlan, FaultSite, RetryPolicy, SiteSpec};
use pixels_common::Json;
use pixels_obs::{MetricsRegistry, WallClock};
use pixels_server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixels_storage::{chaos_stack, InMemoryObjectStore, ObjectStoreRef};
use pixels_turbo::{EngineConfig, TurboEngine};
use pixels_workload::{all_queries, load_tpch, TpchConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One seed for the whole matrix: re-running the binary replays the exact
/// same fault sequence at every site.
const SEED: u64 = 20260806;

fn cf_config() -> EngineConfig {
    EngineConfig {
        vm_slots: 1,
        cf_fleet_threads: 2,
        ..EngineConfig::default()
    }
}

/// A full stack behind one fault plan: TPC-H loaded into an in-memory
/// store, wrapped `Retrying(Chaos(inner))`, under a query server.
struct Deployment {
    server: QueryServer,
    injector: Arc<FaultInjector>,
    /// The raw inner store, for spill-leak sweeps under the chaos wrapper.
    store: ObjectStoreRef,
}

fn deploy(plan: &FaultPlan, cfg: EngineConfig) -> Deployment {
    let catalog = Catalog::shared();
    let inner = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        inner.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 11,
            row_group_rows: 512,
            files_per_table: 2,
        },
    )
    .expect("load tpch");
    let injector = Arc::new(FaultInjector::new(plan));
    let store = chaos_stack(
        inner.clone(),
        injector.clone(),
        RetryPolicy::object_store(),
        WallClock::shared(),
    );
    let engine = Arc::new(
        TurboEngine::new(catalog, store, cfg)
            // Private registry per deployment so scenarios don't bleed into
            // each other's /metrics assertions.
            .with_registry(MetricsRegistry::shared())
            .with_chaos(injector.clone()),
    );
    Deployment {
        server: QueryServer::new(engine, PriceSchedule::default()),
        injector,
        store: inner,
    }
}

/// Multi-stage CF plans spill exchange partitions under
/// `pixels-turbo/intermediate/`; winner acceptance and loser reaping must
/// delete every one of them, under every fault plan. The reapers run
/// detached, so poll briefly before calling a leftover object a leak.
fn assert_no_spill_leaks(tag: &str, d: &Deployment, failures: &mut Vec<String>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let leaked = d
            .store
            .list("pixels-turbo/intermediate/")
            .unwrap_or_default();
        if leaked.is_empty() {
            return;
        }
        if Instant::now() >= deadline {
            failures.push(format!("{tag}: leaked spill objects: {leaked:?}"));
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Saturate the single VM slot for the duration of `f`, so an Immediate
/// query submitted inside is dispatched to the CF tier.
fn with_saturated_slot<T>(d: &Deployment, f: impl FnOnce() -> T) -> T {
    let engine = d.server.engine().clone();
    let blocker = std::thread::spawn(move || {
        engine
            .execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .unwrap()
    });
    while !d.server.engine().is_busy() {
        std::thread::yield_now();
    }
    let r = f();
    blocker.join().unwrap();
    r
}

#[derive(Clone)]
struct RunRecord {
    query_id: &'static str,
    finished: bool,
    batch: Option<pixels_common::RecordBatch>,
    scan_bytes: u64,
    price: f64,
    retries: u64,
    latency: Duration,
}

fn run_query(d: &Deployment, sql: &str, qid: &'static str, level: ServiceLevel) -> RunRecord {
    let start = Instant::now();
    let id = d.server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: sql.into(),
        level,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    let info = d.server.wait(id).expect("query record");
    RunRecord {
        query_id: qid,
        finished: info.status == QueryStatus::Finished,
        batch: info.result,
        scan_bytes: info.scan_bytes,
        price: info.price,
        retries: info.retries,
        latency: start.elapsed(),
    }
}

/// Per-scenario aggregate for the report/table.
struct ScenarioResult {
    name: String,
    level: &'static str,
    queries: usize,
    equivalent: usize,
    faults_injected: u64,
    retries: u64,
    availability: f64,
    baseline_latency_ms: f64,
    chaos_latency_ms: f64,
    baseline_bill: f64,
    chaos_bill: f64,
}

fn mean_latency_ms(runs: &[RunRecord]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|r| r.latency.as_secs_f64() * 1e3)
        .sum::<f64>()
        / runs.len() as f64
}

/// Compare one chaos run against its fault-free twin. Returns an error
/// string on the first divergence.
fn check_pair(base: &RunRecord, chaos: &RunRecord) -> Result<(), String> {
    if !base.finished || !chaos.finished {
        return Err(format!(
            "{}: availability broken (baseline finished={}, chaos finished={})",
            base.query_id, base.finished, chaos.finished
        ));
    }
    if base.batch != chaos.batch {
        return Err(format!(
            "{}: results diverged under faults (bit-identity violated)",
            base.query_id
        ));
    }
    if base.scan_bytes != chaos.scan_bytes {
        return Err(format!(
            "{}: billed bytes diverged: fault-free {} vs chaos {}",
            base.query_id, base.scan_bytes, chaos.scan_bytes
        ));
    }
    if base.price != chaos.price {
        return Err(format!(
            "{}: user bill diverged: fault-free ${} vs chaos ${}",
            base.query_id, base.price, chaos.price
        ));
    }
    Ok(())
}

/// The economics ledger must reconcile exactly — bit-for-bit — against the
/// server's own query registry, under every fault plan: one entry per
/// finished query carrying that query's exact bill, bytes, and provider
/// spend. Faults may change dollars; they may never unbalance the books.
fn reconcile_ledger(tag: &str, d: &Deployment, failures: &mut Vec<String>) {
    let infos = d.server.list();
    let finished = infos
        .iter()
        .filter(|i| i.status == QueryStatus::Finished)
        .count();
    let entries = d.server.ledger().entries();
    if entries.len() != finished {
        failures.push(format!(
            "{tag}: ledger holds {} entries for {finished} finished queries",
            entries.len()
        ));
        return;
    }
    for e in &entries {
        let Some(info) = infos.iter().find(|i| i.id.to_string() == e.query) else {
            failures.push(format!(
                "{tag}: ledger entry {} has no query record",
                e.query
            ));
            continue;
        };
        if e.level != info.submission.level.name()
            || e.bytes_billed != info.scan_bytes
            || e.revenue_dollars.to_bits() != info.price.to_bits()
            || e.vm_dollars.to_bits() != info.resource_cost.vm_dollars.to_bits()
            || e.cf_dollars.to_bits() != info.resource_cost.cf_dollars.to_bits()
            || e.provider_cf_dollars.to_bits() != info.provider_cf_dollars.to_bits()
        {
            failures.push(format!(
                "{tag}: ledger entry {} diverges from its query record",
                e.query
            ));
        }
    }
}

fn metric_value(text: &str, needle: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.rsplit(' ').next().unwrap().parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let mut failures: Vec<String> = Vec::new();
    let queries: Vec<_> = all_queries()
        .into_iter()
        .filter(|q| q.database == "tpch")
        .collect();
    assert!(queries.len() >= 5, "expected several TPC-H templates");
    let mut scenarios: Vec<ScenarioResult> = Vec::new();

    // ---- Storage scenarios: shared deployment, queries run on the VM path
    // at every service level. Retries must mask every injected error.
    let storage_matrix: [(&str, FaultPlan); 2] = [
        ("get_errors_30pct", FaultPlan::get_errors(SEED, 0.30)),
        (
            "get_latency_spikes_25pct",
            FaultPlan::get_latency_spikes(SEED, 0.25, 1, 4),
        ),
    ];
    for (name, plan) in storage_matrix {
        for level in [
            ServiceLevel::Immediate,
            ServiceLevel::Relaxed,
            ServiceLevel::BestEffort,
        ] {
            let base_d = deploy(&FaultPlan::none(SEED), EngineConfig::default());
            let chaos_d = deploy(&plan, EngineConfig::default());
            let mut base_runs = Vec::new();
            let mut chaos_runs = Vec::new();
            for q in &queries {
                base_runs.push(run_query(&base_d, q.sql, q.id, level));
                chaos_runs.push(run_query(&chaos_d, q.sql, q.id, level));
            }
            let mut equivalent = 0;
            for (b, c) in base_runs.iter().zip(&chaos_runs) {
                match check_pair(b, c) {
                    Ok(()) => equivalent += 1,
                    Err(e) => failures.push(format!("{name}/{}: {e}", level.name())),
                }
            }
            let text = chaos_d.server.metrics_text();
            if let Err(e) = pixels_obs::validate_exposition(&text) {
                failures.push(format!("{name}/{}: bad exposition: {e}", level.name()));
            }
            reconcile_ledger(
                &format!("{name}/{}/baseline", level.name()),
                &base_d,
                &mut failures,
            );
            reconcile_ledger(
                &format!("{name}/{}/chaos", level.name()),
                &chaos_d,
                &mut failures,
            );
            assert_no_spill_leaks(
                &format!("{name}/{}/baseline", level.name()),
                &base_d,
                &mut failures,
            );
            assert_no_spill_leaks(
                &format!("{name}/{}/chaos", level.name()),
                &chaos_d,
                &mut failures,
            );
            let injected =
                metric_value(&text, "pixels_faults_injected_total{site=\"storage_get\"}");
            if injected <= 0.0 {
                failures.push(format!(
                    "{name}/{}: expected nonzero pixels_faults_injected_total",
                    level.name()
                ));
            }
            if name.starts_with("get_errors") {
                let retried = metric_value(&text, "pixels_retries_total{site=\"storage_get\"}");
                if retried <= 0.0 {
                    failures.push(format!(
                        "{name}/{}: expected nonzero pixels_retries_total",
                        level.name()
                    ));
                }
                if metric_value(&text, "pixels_storage_gets_failed_total") <= 0.0 {
                    failures.push(format!(
                        "{name}/{}: failed GETs must be counted",
                        level.name()
                    ));
                }
            }
            scenarios.push(ScenarioResult {
                name: name.into(),
                level: level.name(),
                queries: queries.len(),
                equivalent,
                faults_injected: chaos_d.injector.injected_total(),
                retries: chaos_runs.iter().map(|r| r.retries).sum(),
                availability: chaos_runs.iter().filter(|r| r.finished).count() as f64
                    / chaos_runs.len() as f64,
                baseline_latency_ms: mean_latency_ms(&base_runs),
                chaos_latency_ms: mean_latency_ms(&chaos_runs),
                baseline_bill: base_runs.iter().map(|r| r.price).sum(),
                chaos_bill: chaos_runs.iter().map(|r| r.price).sum(),
            });
        }
    }

    // ---- Prefetch-pipeline scenario: the same seeded GET-error plan hits a
    // deployment whose scans prefetch (GETs issued ahead by the scan's I/O
    // thread) and one running fetch+decode fused on the workers. Faults
    // landing on prefetched GETs must be retried and billed exactly like
    // synchronous reads: results, bytes, and bills identical across both —
    // and against a fault-free baseline.
    {
        let name = "get_errors_30pct_prefetch_vs_sync";
        let plan = FaultPlan::get_errors(SEED, 0.30);
        let sync_cfg = EngineConfig {
            prefetch_depth: 0,
            ..EngineConfig::default()
        };
        let base_d = deploy(&FaultPlan::none(SEED), EngineConfig::default());
        let chaos_pre = deploy(&plan, EngineConfig::default());
        let chaos_sync = deploy(&plan, sync_cfg);
        let mut base_runs = Vec::new();
        let mut pre_runs = Vec::new();
        let mut sync_runs = Vec::new();
        for q in &queries {
            base_runs.push(run_query(&base_d, q.sql, q.id, ServiceLevel::Immediate));
            pre_runs.push(run_query(&chaos_pre, q.sql, q.id, ServiceLevel::Immediate));
            sync_runs.push(run_query(&chaos_sync, q.sql, q.id, ServiceLevel::Immediate));
        }
        let mut equivalent = 0;
        for ((b, p), s) in base_runs.iter().zip(&pre_runs).zip(&sync_runs) {
            let ok_pre = check_pair(b, p).map_err(|e| format!("{name}/prefetch: {e}"));
            let ok_sync = check_pair(s, p).map_err(|e| format!("{name}/prefetch-vs-sync: {e}"));
            match (ok_pre, ok_sync) {
                (Ok(()), Ok(())) => equivalent += 1,
                (r1, r2) => failures.extend(r1.err().into_iter().chain(r2.err())),
            }
        }
        reconcile_ledger(&format!("{name}/prefetch"), &chaos_pre, &mut failures);
        reconcile_ledger(&format!("{name}/sync"), &chaos_sync, &mut failures);
        assert_no_spill_leaks(&format!("{name}/baseline"), &base_d, &mut failures);
        assert_no_spill_leaks(&format!("{name}/prefetch"), &chaos_pre, &mut failures);
        assert_no_spill_leaks(&format!("{name}/sync"), &chaos_sync, &mut failures);
        let text = chaos_pre.server.metrics_text();
        if metric_value(&text, "pixels_scan_prefetch_issued_total") <= 0.0 {
            failures.push(format!("{name}: prefetcher never issued a fetch"));
        }
        if metric_value(&text, "pixels_faults_injected_total{site=\"storage_get\"}") <= 0.0 {
            failures.push(format!("{name}: no faults hit the prefetching deployment"));
        }
        if metric_value(&text, "pixels_retries_total{site=\"storage_get\"}") <= 0.0 {
            failures.push(format!("{name}: prefetched GET faults were not retried"));
        }
        scenarios.push(ScenarioResult {
            name: name.into(),
            level: "immediate",
            queries: queries.len(),
            equivalent,
            faults_injected: chaos_pre.injector.injected_total(),
            retries: pre_runs.iter().map(|r| r.retries).sum(),
            availability: pre_runs.iter().filter(|r| r.finished).count() as f64
                / pre_runs.len() as f64,
            baseline_latency_ms: mean_latency_ms(&base_runs),
            chaos_latency_ms: mean_latency_ms(&pre_runs),
            baseline_bill: base_runs.iter().map(|r| r.price).sum(),
            chaos_bill: pre_runs.iter().map(|r| r.price).sum(),
        });
    }

    // ---- CF scenarios: one deployment pair per query (so each query sees
    // the fault fresh), Immediate level, VM slot saturated so dispatch goes
    // to the CF tier. Placement is pinned CF on both sides — `capped` plans
    // keep the relaunch/speculative duplicate on the CF path, so billed
    // bytes stay comparable. (Degradation to VM changes placement and is
    // asserted result-equivalent in tests/chaos_recovery.rs instead.)
    let cf_matrix: [(&str, FaultPlan); 2] = [
        (
            "cf_crash_relaunch",
            FaultPlan::none(SEED).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
        ),
        (
            "cf_straggler_speculate",
            FaultPlan::none(SEED).with(
                FaultSite::CfStraggler,
                SiteSpec::delays(1.0, 1_200_000, 1_200_000).capped(1),
            ),
        ),
    ];
    for (name, plan) in cf_matrix {
        let mut base_runs = Vec::new();
        let mut chaos_runs = Vec::new();
        let mut injected_total = 0;
        let mut metrics_ok = true;
        let mut speculated = 0.0;
        let mut cf_retried = 0.0;
        for q in &queries {
            let base_d = deploy(&FaultPlan::none(SEED), cf_config());
            let chaos_d = deploy(&plan, cf_config());
            // Warm each deployment identically (one VM-path run) so the
            // measured CF run bills from the same cache state on both sides.
            run_query(&base_d, q.sql, q.id, ServiceLevel::Relaxed);
            run_query(&chaos_d, q.sql, q.id, ServiceLevel::Relaxed);
            base_runs.push(with_saturated_slot(&base_d, || {
                run_query(&base_d, q.sql, q.id, ServiceLevel::Immediate)
            }));
            chaos_runs.push(with_saturated_slot(&chaos_d, || {
                run_query(&chaos_d, q.sql, q.id, ServiceLevel::Immediate)
            }));
            injected_total += chaos_d.injector.injected_total();
            reconcile_ledger(&format!("{name}/{}", q.id), &chaos_d, &mut failures);
            assert_no_spill_leaks(&format!("{name}/{}/baseline", q.id), &base_d, &mut failures);
            assert_no_spill_leaks(&format!("{name}/{}/chaos", q.id), &chaos_d, &mut failures);
            let text = chaos_d.server.metrics_text();
            if pixels_obs::validate_exposition(&text).is_err() {
                metrics_ok = false;
            }
            speculated += metric_value(&text, "pixels_speculative_launches_total");
            cf_retried += metric_value(&text, "pixels_turbo_cf_retries_total");
        }
        let mut equivalent = 0;
        for (b, c) in base_runs.iter().zip(&chaos_runs) {
            match check_pair(b, c) {
                Ok(()) => equivalent += 1,
                Err(e) => failures.push(format!("{name}/immediate: {e}")),
            }
        }
        if !metrics_ok {
            failures.push(format!("{name}: invalid exposition"));
        }
        if injected_total == 0 {
            failures.push(format!("{name}: no faults injected"));
        }
        if name == "cf_crash_relaunch" && cf_retried <= 0.0 {
            failures.push(format!("{name}: expected CF relaunches"));
        }
        if name == "cf_straggler_speculate" && speculated <= 0.0 {
            failures.push(format!("{name}: expected speculative launches"));
        }
        scenarios.push(ScenarioResult {
            name: name.into(),
            level: "immediate",
            queries: queries.len(),
            equivalent,
            faults_injected: injected_total,
            retries: chaos_runs.iter().map(|r| r.retries).sum(),
            availability: chaos_runs.iter().filter(|r| r.finished).count() as f64
                / chaos_runs.len() as f64,
            baseline_latency_ms: mean_latency_ms(&base_runs),
            chaos_latency_ms: mean_latency_ms(&chaos_runs),
            baseline_bill: base_runs.iter().map(|r| r.price).sum(),
            chaos_bill: chaos_runs.iter().map(|r| r.price).sum(),
        });
    }

    // ---- Shuffle scenarios: two-stage exchange plans (4-way fan-out) under
    // spill PUT/GET faults and a stage crash. The exchange stack must retry
    // every injected spill error invisibly: results and bills bit-identical
    // to the fault-free twin, and no spill object may outlive its query.
    let shuffle_cfg = EngineConfig {
        vm_slots: 1,
        cf_fleet_threads: 2,
        exchange_partitions: 4,
        ..EngineConfig::default()
    };
    let shuffle_queries: [(&str, &str); 2] = [
        (
            "shuffle_agg",
            "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
             GROUP BY o_orderstatus ORDER BY n DESC",
        ),
        (
            "shuffle_join",
            "SELECT c_name, o_orderkey FROM customer \
             JOIN orders ON c_custkey = o_custkey \
             ORDER BY o_orderkey, c_name LIMIT 20",
        ),
    ];
    let shuffle_matrix: [(&str, FaultPlan, Option<FaultSite>); 3] = [
        (
            "shuffle_exchange_put_errors",
            FaultPlan::exchange_put_errors(SEED, 0.30),
            Some(FaultSite::ExchangePut),
        ),
        (
            "shuffle_exchange_get_errors",
            FaultPlan::exchange_get_errors(SEED, 0.30),
            Some(FaultSite::ExchangeGet),
        ),
        (
            "shuffle_stage_crash",
            FaultPlan::none(SEED).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
            None,
        ),
    ];
    for (name, plan, fault_site) in shuffle_matrix {
        let mut base_runs = Vec::new();
        let mut chaos_runs = Vec::new();
        let mut injected_total = 0;
        let mut site_faults = 0.0;
        let mut spilled = 0.0;
        for (qid, sql) in shuffle_queries {
            let base_d = deploy(&FaultPlan::none(SEED), shuffle_cfg);
            let chaos_d = deploy(&plan, shuffle_cfg);
            run_query(&base_d, sql, qid, ServiceLevel::Relaxed);
            run_query(&chaos_d, sql, qid, ServiceLevel::Relaxed);
            base_runs.push(with_saturated_slot(&base_d, || {
                run_query(&base_d, sql, qid, ServiceLevel::Immediate)
            }));
            chaos_runs.push(with_saturated_slot(&chaos_d, || {
                run_query(&chaos_d, sql, qid, ServiceLevel::Immediate)
            }));
            injected_total += chaos_d.injector.injected_total();
            reconcile_ledger(&format!("{name}/{qid}"), &chaos_d, &mut failures);
            assert_no_spill_leaks(&format!("{name}/{qid}/baseline"), &base_d, &mut failures);
            assert_no_spill_leaks(&format!("{name}/{qid}/chaos"), &chaos_d, &mut failures);
            let text = chaos_d.server.metrics_text();
            if pixels_obs::validate_exposition(&text).is_err() {
                failures.push(format!("{name}/{qid}: invalid exposition"));
            }
            spilled += metric_value(&text, "pixels_exchange_put_bytes_total");
            if let Some(site) = fault_site {
                site_faults += metric_value(
                    &text,
                    &format!("pixels_faults_injected_total{{site=\"{}\"}}", site.name()),
                );
            }
        }
        if spilled <= 0.0 {
            failures.push(format!("{name}: queries never exchanged partitions"));
        }
        if fault_site.is_some() && site_faults <= 0.0 {
            failures.push(format!("{name}: no faults hit the exchange path"));
        }
        if injected_total == 0 {
            failures.push(format!("{name}: no faults injected"));
        }
        let mut equivalent = 0;
        for (b, c) in base_runs.iter().zip(&chaos_runs) {
            match check_pair(b, c) {
                Ok(()) => equivalent += 1,
                Err(e) => failures.push(format!("{name}/immediate: {e}")),
            }
        }
        scenarios.push(ScenarioResult {
            name: name.into(),
            level: "immediate",
            queries: shuffle_queries.len(),
            equivalent,
            faults_injected: injected_total,
            retries: chaos_runs.iter().map(|r| r.retries).sum(),
            availability: chaos_runs.iter().filter(|r| r.finished).count() as f64
                / chaos_runs.len() as f64,
            baseline_latency_ms: mean_latency_ms(&base_runs),
            chaos_latency_ms: mean_latency_ms(&chaos_runs),
            baseline_bill: base_runs.iter().map(|r| r.price).sum(),
            chaos_bill: chaos_runs.iter().map(|r| r.price).sum(),
        });
    }

    // ---- Report.
    let mut table = TextTable::new(&[
        "scenario", "level", "queries", "equiv", "faults", "retries", "avail", "base ms",
        "chaos ms", "bill Δ$",
    ]);
    for s in &scenarios {
        table.row(&[
            s.name.clone(),
            s.level.to_string(),
            s.queries.to_string(),
            s.equivalent.to_string(),
            s.faults_injected.to_string(),
            s.retries.to_string(),
            format!("{:.0}%", s.availability * 100.0),
            format!("{:.1}", s.baseline_latency_ms),
            format!("{:.1}", s.chaos_latency_ms),
            format!("{:+.6}", s.chaos_bill - s.baseline_bill),
        ]);
    }
    table.print();

    let report = Json::object(scenarios.iter().map(|s| {
        (
            format!("{}/{}", s.name, s.level),
            Json::object([
                ("queries", Json::number(s.queries as f64)),
                ("equivalent", Json::number(s.equivalent as f64)),
                ("faults_injected", Json::number(s.faults_injected as f64)),
                ("retries", Json::number(s.retries as f64)),
                ("availability", Json::number(s.availability)),
                ("baseline_latency_ms", Json::number(s.baseline_latency_ms)),
                ("chaos_latency_ms", Json::number(s.chaos_latency_ms)),
                ("baseline_bill_dollars", Json::number(s.baseline_bill)),
                ("chaos_bill_dollars", Json::number(s.chaos_bill)),
            ]),
        )
    }));
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/chaos_soak.json", report.to_compact_string())
        .expect("write chaos_soak.json");
    println!("wrote results/chaos_soak.json");

    if !failures.is_empty() {
        println!("\n{} divergence(s):", failures.len());
        for f in &failures {
            println!("FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("\nall scenarios equivalent: identical results and bills under every fault plan");
}
