//! `policy_parity` — sim-vs-real differential gate over the shared policy
//! core (ISSUE 5 satellite).
//!
//! Drives the same queries with the same seeded fault plans through the
//! simulated `Coordinator` and the real `TurboEngine` and asserts
//! bit-identical decision sequences, user bills, and provider cost
//! breakdowns. Exits non-zero on any divergence; writes
//! `results/policy_parity.json` on success.

use pixels_bench::parity;
use pixels_bench::TextTable;
use pixels_common::Json;

fn main() {
    println!("policy_parity: sim-vs-real differential over the shared policy core");
    let reports = parity::run_all();

    let mut table = TextTable::new(&["scenario", "decisions", "bill $", "cf $", "provider cf $"]);
    for r in &reports {
        table.row(&[
            r.name.to_string(),
            r.decisions
                .iter()
                .map(|d| format!("{d:?}"))
                .collect::<Vec<_>>()
                .join(" → "),
            format!("{:.6}", r.bill),
            format!("{:.6}", r.resource_cost.cf_dollars),
            format!("{:.6}", r.provider_cf_dollars),
        ]);
    }
    table.print();

    let report = Json::object([
        ("benchmark", Json::string("policy_parity")),
        ("parity", Json::string("bit-identical")),
        (
            "scenarios",
            Json::array(reports.iter().map(|r| r.to_json())),
        ),
    ]);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/policy_parity.json", report.to_compact_string())
        .expect("write results/policy_parity.json");
    println!(
        "ok: {} scenarios in parity -> results/policy_parity.json",
        reports.len()
    );
}
