//! X2 (ablations) — the storage-layer design choices DESIGN.md calls out:
//! adaptive chunk encodings, zone-map pruning, and projection pushdown.
//! Each directly reduces bytes scanned, i.e. the user's bill.

use pixels_bench::TextTable;
use pixels_common::bytesize::format_bytes;
use pixels_exec::{execute, ExecContext};
use pixels_planner::plan_query;
use pixels_storage::{Encoding, InMemoryObjectStore, PixelsReader, PixelsWriter};
use pixels_workload::tpch::{generate_orders_lineitem, lineitem_schema};
use pixels_workload::TpchConfig;

fn main() {
    println!("== X2 (ablations): storage design choices ==\n");
    let cfg = TpchConfig {
        scale: 0.004,
        seed: 42,
        row_group_rows: 4096,
        files_per_table: 1,
    };
    let (_, lineitem) = generate_orders_lineitem(&cfg).expect("generate");

    // -- 1. Adaptive encodings vs forced plain -------------------------------
    let store = InMemoryObjectStore::new();
    let mut w = PixelsWriter::new(&store, "adaptive.pxl", lineitem_schema());
    w.write_batch(&lineitem).unwrap();
    let adaptive = w.finish().unwrap();
    let mut w = PixelsWriter::new(&store, "plain.pxl", lineitem_schema())
        .with_encoding_override(Encoding::Plain);
    w.write_batch(&lineitem).unwrap();
    let plain = w.finish().unwrap();

    let mut t = TextTable::new(&["encoding policy", "lineitem file size", "vs plain"]);
    t.row(&["forced plain".into(), format_bytes(plain), "1.00x".into()]);
    t.row(&[
        "adaptive (RLE/dictionary/plain per chunk)".into(),
        format_bytes(adaptive),
        format!("{:.2}x", adaptive as f64 / plain as f64),
    ]);
    t.print();
    assert!(
        (adaptive as f64) < plain as f64 * 0.85,
        "adaptive encodings must save ≥15% on lineitem (mostly-unique numeric columns cap the win)"
    );

    // Verify both files decode identically.
    let a = PixelsReader::open(&store, "adaptive.pxl").unwrap();
    let p = PixelsReader::open(&store, "plain.pxl").unwrap();
    assert_eq!(
        pixels_common::RecordBatch::concat(&a.read_all(None, &[]).unwrap()).unwrap(),
        pixels_common::RecordBatch::concat(&p.read_all(None, &[]).unwrap()).unwrap(),
    );

    // -- 2. Zone maps and 3. projection pushdown, on a real query ------------
    let (catalog, store) = pixels_bench::demo_data(0.004);
    let queries = [
        (
            "selective date predicate",
            "SELECT l_quantity FROM lineitem WHERE l_shipdate >= DATE '1998-06-01'",
            "SELECT * FROM lineitem",
        ),
        (
            "point lookup by key",
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 17",
            "SELECT * FROM orders",
        ),
    ];
    let mut t = TextTable::new(&[
        "query",
        "bytes scanned (pushdown on)",
        "bytes scanned (full table)",
        "saving",
        "row groups read / total",
    ]);
    for (name, optimized, baseline) in queries {
        let scan = |sql: &str| {
            let plan = plan_query(&catalog, "tpch", sql).unwrap();
            let ctx = ExecContext::new(store.clone());
            execute(&plan, &ctx).unwrap();
            let m = ctx.metrics.snapshot();
            (m.bytes_scanned, m.row_groups_read, m.row_groups_total)
        };
        let (opt_bytes, rg_read, rg_total) = scan(optimized);
        let (full_bytes, _, _) = scan(baseline);
        t.row(&[
            name.to_string(),
            format_bytes(opt_bytes),
            format_bytes(full_bytes),
            format!("{:.1}x", full_bytes as f64 / opt_bytes as f64),
            format!("{rg_read} / {rg_total}"),
        ]);
        assert!(
            opt_bytes * 2 < full_bytes,
            "{name}: pushdown should at least halve scanned bytes"
        );
    }
    t.print();
    println!(
        "\nAll three mechanisms reduce the bytes fetched from object storage, which is \
         exactly the quantity the $/TB price model bills."
    );
    println!("x2_storage_ablations: OK");
}
