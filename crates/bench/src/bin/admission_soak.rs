//! `admission_soak` — the long-horizon soak of the multi-tenant admission
//! core, and its CI gate.
//!
//! Drives `ADMISSION_SOAK_USERS` simulated users (default 1,000,000; CI
//! sets 50,000) through the event-driven soak harness: diurnal arrivals
//! with a burst, an adversarial tenant flooding best-of-effort work, a
//! deadline-mode slice with a palette of targets, shared-scan batching,
//! and the same `SchedulerPolicy` + `FairQueue` admission core the live
//! server runs. Asserted:
//!
//! 1. **Conservation** — every submission either completes or is rejected
//!    at admission; rejected queries never bill.
//! 2. **Reconciliation** — per-tenant revenue folds bit-for-bit against a
//!    ledger rebuilt from the entries (at collectable scale), and the
//!    running revenue fold anchors the total at any scale.
//! 3. **Fairness** — the adversarial flood cannot push victim tenants'
//!    mean wait past the relaxed grace bound, and no tenant starves.
//! 4. **Deadline value** — honoring per-query deadlines (EDF + latest
//!    feasible force-start) violates no more original targets than
//!    mapping each deadline to the nearest fixed tier.
//! 5. **Exposition** — the soak's metrics render as a valid exposition
//!    with tenant label cardinality capped at top-K + "other".
//!
//! Results are printed as a table and written to
//! `results/admission_soak.json` (uploaded as a CI artifact).

use pixels_bench::TextTable;
use pixels_common::Json;
use pixels_obs::{validate_exposition, MetricsRegistry};
use pixels_server::{run_soak, SoakConfig};
use std::time::Instant;

fn main() {
    let users: usize = std::env::var("ADMISSION_SOAK_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    println!("== admission_soak: {users} users through the tenant-aware admission core ==\n");

    let cfg = SoakConfig::ci_scale(users);
    let wall = Instant::now();
    let report = run_soak(&cfg);
    let native_wall = wall.elapsed();

    // The counterfactual: identical traffic, deadlines mapped to the
    // nearest fixed tier at submission.
    let mapped_cfg = SoakConfig {
        map_deadlines_to_tiers: true,
        ..cfg.clone()
    };
    let mapped = run_soak(&mapped_cfg);

    // 1. Conservation.
    assert!(
        report.submitted as usize >= users,
        "arrival generators undershot: {} < {users}",
        report.submitted
    );
    assert_eq!(report.submitted, report.completed + report.rejected);
    assert_eq!(report.submitted, mapped.submitted, "identical traffic");

    // 2. Reconciliation.
    assert!(report.reconciles(), "ledger must reconcile");
    let deadline = report
        .modes
        .iter()
        .find(|m| m.name == "deadline")
        .expect("deadline mode stats");
    assert!(deadline.rejected > 0, "infeasible targets must reject");

    // 3. Fairness.
    for t in report.tenants.iter().filter(|t| t.name != "adversary") {
        assert!(t.completed > 0, "tenant {} starved entirely", t.name);
        assert!(
            t.mean_wait_us < cfg.grace.as_micros(),
            "tenant {} mean wait {} us exceeds the grace bound",
            t.name,
            t.mean_wait_us
        );
    }

    // 4. Deadline value.
    assert!(report.deadline_population > 0);
    assert!(
        report.deadline_target_violations <= mapped.deadline_target_violations,
        "deadline mode ({}) must not violate more targets than tier mapping ({})",
        report.deadline_target_violations,
        mapped.deadline_target_violations
    );

    // 5. Exposition.
    let registry = MetricsRegistry::new();
    report.export_metrics(&registry);
    let text = registry.render();
    validate_exposition(&text).expect("soak exposition must be valid");
    let tenant_series = text
        .lines()
        .filter(|l| l.starts_with("pixels_ledger_tenant_revenue_dollars{"))
        .count();
    if !report.ledger_entries.is_empty() {
        assert!(
            tenant_series <= 9,
            "tenant label cardinality must be capped: {tenant_series} series"
        );
    }

    let mut table = TextTable::new(&[
        "mode",
        "completed",
        "rejected",
        "sla viol.",
        "p50 (s)",
        "p99 (s)",
        "revenue ($)",
    ]);
    for m in &report.modes {
        table.row(&[
            m.name.clone(),
            m.completed.to_string(),
            m.rejected.to_string(),
            m.sla_violations.to_string(),
            format!("{:.2}", m.p50_latency_us as f64 / 1e6),
            format!("{:.2}", m.p99_latency_us as f64 / 1e6),
            format!("{:.4}", m.revenue_dollars),
        ]);
    }
    table.print();
    println!(
        "\n{} submitted, {} completed, {} rejected over {:.1} sim-hours \
         ({:.0} q/s sim, {:.2}s wall)",
        report.submitted,
        report.completed,
        report.rejected,
        report.sim_duration.as_secs_f64() / 3600.0,
        report.throughput_qps,
        native_wall.as_secs_f64()
    );
    println!(
        "revenue ${:.2}, provider cost ${:.2}, {} batches merged {} riders, \
         {} CF placements, {} forced starts",
        report.revenue_dollars,
        report.provider_dollars,
        report.batches,
        report.batched_members,
        report.cf_placements,
        report.forced_starts
    );
    println!(
        "deadline targets: {} violations native vs {} mapped-to-tier \
         (population {})",
        report.deadline_target_violations,
        mapped.deadline_target_violations,
        report.deadline_population
    );
    println!(
        "fairness: adversary mean wait {:.1}s vs victims {:.1}s",
        report.adversary_mean_wait_us() as f64 / 1e6,
        report.victim_mean_wait_us() as f64 / 1e6
    );

    let out = Json::object([
        ("report", report.to_json()),
        (
            "mapped_counterfactual",
            Json::object([
                (
                    "deadline_target_violations",
                    Json::number(mapped.deadline_target_violations as f64),
                ),
                ("completed", Json::number(mapped.completed as f64)),
                ("rejected", Json::number(mapped.rejected as f64)),
            ]),
        ),
        ("wall_seconds", Json::number(native_wall.as_secs_f64())),
    ]);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/admission_soak.json", out.to_compact_string())
        .expect("write results/admission_soak.json");
    println!("\nwrote results/admission_soak.json");
    println!("admission_soak: OK");
}
