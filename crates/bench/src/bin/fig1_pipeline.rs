//! Figure 1 — the full PixelsDB architecture, exercised end-to-end.
//!
//! Drives the real data path: NL question → JSON request → CodeS-style
//! text-to-SQL service → Query Server (service level) → Pixels-Turbo
//! coordinator → VM slots / CF acceleration → columnar scan of object
//! storage → result + statistics, for one query per service level.

use pixels_bench::{demo_data, TextTable};
use pixels_common::Json;
use pixels_nl2sql::CodesService;
use pixels_server::{PriceSchedule, QueryServer, QuerySubmission, ServiceLevel};
use pixels_turbo::{EngineConfig, TurboEngine};
use std::sync::Arc;

fn main() {
    println!("== Figure 1: end-to-end architecture flow ==\n");
    let (catalog, store) = demo_data(0.002);
    let engine = Arc::new(TurboEngine::new(
        catalog.clone(),
        store.clone(),
        EngineConfig::default(),
    ));
    let server = QueryServer::new(engine, PriceSchedule::default());
    let nl = CodesService::new(catalog, store);

    let question = "how many orders per order status";
    println!("[Pixels-Rover] user question: {question:?}");

    // Rover -> CodeS: single-turn JSON round trip.
    let request = Json::object([
        ("question", Json::string(question)),
        ("database", Json::string("tpch")),
    ])
    .to_compact_string();
    println!("[Pixels-Rover -> CodeS] {request}");
    let response = nl.handle_json(&request);
    println!("[CodeS -> Pixels-Rover] {response}");
    let sql = Json::parse(&response)
        .expect("valid JSON")
        .get("sql")
        .expect("sql field")
        .as_str()
        .unwrap()
        .to_string();

    // Rover -> Query Server: one submission per service level.
    let mut table = TextTable::new(&[
        "service level",
        "status",
        "pending (ms)",
        "execution (ms)",
        "scanned",
        "bill ($)",
        "CF used",
    ]);
    for level in ServiceLevel::ALL {
        let id = server.submit(QuerySubmission {
            database: "tpch".into(),
            sql: sql.clone(),
            level,
            result_limit: Some(10),
            tenant: None,
            deadline_us: None,
        });
        let info = server.wait(id).expect("query completes");
        table.row(&[
            level.name().to_string(),
            info.status.name().to_string(),
            format!("{:.1}", info.pending.as_secs_f64() * 1e3),
            format!("{:.1}", info.execution.as_secs_f64() * 1e3),
            pixels_common::bytesize::format_bytes(info.scan_bytes),
            format!("{:.6}", info.price),
            info.used_cf.to_string(),
        ]);
    }
    println!("\n[Query Server] per-level execution of the translated query:");
    table.print();

    // Show the result once.
    let any = server.list().into_iter().next().unwrap();
    if let Some(result) = any.result {
        println!("\n[Pixels-Rover] query result:\n{}", result.pretty_format());
    }
    println!("fig1_pipeline: OK");
}
