//! E8 — schema-pruning robustness on wide tables (paper §3.3).
//!
//! "The schema pruning stage enables CodeS to adeptly handle tables of any
//! width, including those with thousands of columns, without being
//! constrained by context truncation." This harness sweeps table width,
//! measures the serialized prompt size with and without pruning, and checks
//! translation still succeeds at every width.

use pixels_bench::TextTable;
use pixels_catalog::TableDef;
use pixels_common::{DataType, Field, Schema, TableId};
use pixels_nl2sql::{prune_schema, serialize_full, PruneConfig, Translator, ValueIndex};
use std::sync::Arc;

/// A synthetic telemetry table with `width` columns, a handful of which are
/// meaningful.
fn wide_table(width: usize) -> TableDef {
    let mut fields = vec![
        Field::required("event_id", DataType::Int64),
        Field::required("event_revenue", DataType::Float64),
        Field::required("event_country", DataType::Utf8),
        Field::required("event_date", DataType::Date),
    ];
    for i in fields.len()..width {
        fields.push(Field::nullable(format!("attr_{i:05}"), DataType::Utf8));
    }
    TableDef {
        id: TableId(0),
        database: "wide".into(),
        name: "events".into(),
        schema: Arc::new(Schema::new(fields)),
        paths: vec![],
        stats: Default::default(),
        primary_key: Some("event_id".into()),
        foreign_keys: vec![],
        comment: Some("telemetry events".into()),
    }
}

/// A typical LLM context budget in bytes (≈ 8k tokens × 4 bytes) — the
/// constraint schema pruning exists to satisfy.
const CONTEXT_BUDGET_BYTES: usize = 32_768;

fn main() {
    println!("== E8: schema pruning vs table width ==\n");
    let question = "total revenue per country in 1995";

    let mut table = TextTable::new(&[
        "columns",
        "full prompt (bytes)",
        "pruned prompt (bytes)",
        "reduction",
        "fits 32KiB context",
        "translation ok",
    ]);
    let mut last_pruned = 0usize;
    for width in [16usize, 100, 500, 1000, 2000, 4000] {
        let t = wide_table(width);
        let full = serialize_full(std::slice::from_ref(&t)).len();
        let pruned = prune_schema(question, std::slice::from_ref(&t), PruneConfig::default());
        let pruned_bytes = pruned.prompt_bytes();
        last_pruned = pruned_bytes;

        // Translation over the wide schema must keep working.
        let translator = Translator::new(vec![t], ValueIndex::default());
        let translation = translator.translate(question);
        let ok = translation
            .as_ref()
            .map(|t| {
                let sql = t.sql.to_lowercase();
                sql.contains("sum(event_revenue)") && sql.contains("group by event_country")
            })
            .unwrap_or(false);

        table.row(&[
            width.to_string(),
            full.to_string(),
            pruned_bytes.to_string(),
            format!("{:.0}x", full as f64 / pruned_bytes as f64),
            (pruned_bytes <= CONTEXT_BUDGET_BYTES).to_string(),
            ok.to_string(),
        ]);
        assert!(ok, "translation must succeed at width {width}");
        assert!(
            pruned_bytes <= CONTEXT_BUDGET_BYTES,
            "pruned prompt must fit the context budget at width {width}"
        );
    }
    table.print();
    println!(
        "\nPruned prompt size is width-independent (~{last_pruned} bytes), while the full \
         schema grows linearly past any context budget."
    );
    println!("e8_schema_pruning: OK");
}
