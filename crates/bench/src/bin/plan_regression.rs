//! `plan_regression` — CI gate over cost-based plan choices (ISSUE 9
//! satellite).
//!
//! For every TPC-H template, snapshots the decisions the cost-based
//! planner makes over a fixed, seeded fixture: join order (probe-to-build
//! scan order), shuffle strategy (single-stage / broadcast / partitioned),
//! partition count, and right-sized CF fleet. The snapshot must match the
//! committed `results/plan_regression.json` exactly — a plan change is a
//! reviewable event, not background noise. Re-bless after review with
//! `PLAN_REGRESSION_BLESS=1`.
//!
//! Also times each template end-to-end (cost-based plan vs the binder's
//! syntactic plan) and writes the summary to `results/bench_plan.json`;
//! timings are informational and never gate.

use pixels_bench::TextTable;
use pixels_catalog::Catalog;
use pixels_common::Json;
use pixels_exec::{execute, ExecContext};
use pixels_planner::{
    create_physical_plan, optimize_with, plan_shuffle_sized, Binder, EstMode, PhysicalPlan,
    ShuffleSizing,
};
use pixels_storage::{InMemoryObjectStore, ObjectStoreRef};
use pixels_turbo::{CfConfig, CfCostModel, QueryWork, ResourcePricing};
use pixels_workload::{load_tpch, TpchConfig, TPCH_QUERIES};
use std::sync::Arc;
use std::time::Instant;

const SNAPSHOT_PATH: &str = "results/plan_regression.json";
const BENCH_PATH: &str = "results/bench_plan.json";

fn fixture() -> (Arc<Catalog>, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.01,
            seed: 42,
            row_group_rows: 1024,
            files_per_table: 2,
        },
    )
    .expect("load tpch fixture");
    (catalog, store)
}

fn scan_order(plan: &PhysicalPlan) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(p: &PhysicalPlan, out: &mut Vec<String>) {
        if let PhysicalPlan::Scan { table, .. } = p {
            out.push(table.clone());
        }
        for c in p.children() {
            walk(c, out);
        }
    }
    walk(plan, &mut out);
    out
}

struct PlanChoice {
    id: &'static str,
    join_order: Vec<String>,
    shuffle: &'static str,
    partitions: usize,
    fleet: u32,
}

impl PlanChoice {
    fn to_json(&self) -> Json {
        Json::object([
            ("id", Json::string(self.id)),
            (
                "join_order",
                Json::array(self.join_order.iter().map(Json::string)),
            ),
            ("shuffle", Json::string(self.shuffle)),
            ("partitions", Json::number(self.partitions as f64)),
            ("fleet", Json::number(f64::from(self.fleet))),
        ])
    }
}

fn choices(catalog: &Catalog) -> Vec<PlanChoice> {
    let cost_model = CfCostModel::new(&CfConfig::default(), ResourcePricing::default());
    TPCH_QUERIES
        .iter()
        .map(|q| {
            let select = pixels_sql::parse_query(q.sql).expect("template parses");
            let logical = Binder::new(catalog, "tpch")
                .bind_select(&select)
                .expect("template binds");
            let plan = create_physical_plan(&optimize_with(logical, EstMode::Normal))
                .expect("template lowers");
            let shuffle = plan_shuffle_sized(
                &plan,
                "pixels-turbo/intermediate/probe/mv.pxl",
                &ShuffleSizing::auto(),
            );
            let (strategy, partitions) = match &shuffle {
                None => ("single-stage", 0),
                Some(s) if s.broadcast => ("broadcast", s.partitions),
                Some(s) => ("partitioned", s.partitions),
            };
            let fleet = cost_model
                .sized_work(&QueryWork::from_plan(&plan))
                .parallelism;
            PlanChoice {
                id: q.id,
                join_order: scan_order(&plan),
                shuffle: strategy,
                partitions,
                fleet,
            }
        })
        .collect()
}

/// Wall time of the median of three runs at parallelism 4.
fn time_plan(plan: &PhysicalPlan, store: &ObjectStoreRef) -> f64 {
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let ctx = ExecContext::new(store.clone()).with_parallelism(4);
            let start = Instant::now();
            execute(plan, &ctx).expect("plan executes");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[1]
}

fn main() {
    println!("plan_regression: cost-based plan snapshot gate over TPC-H templates");
    let (catalog, store) = fixture();
    let picked = choices(&catalog);

    let mut table = TextTable::new(&["template", "join order", "shuffle", "parts", "fleet"]);
    for c in &picked {
        table.row(&[
            c.id.to_string(),
            c.join_order.join(" ⋈ "),
            c.shuffle.to_string(),
            c.partitions.to_string(),
            c.fleet.to_string(),
        ]);
    }
    table.print();

    let snapshot = Json::object([
        ("benchmark", Json::string("plan_regression")),
        ("fixture", Json::string("tpch scale=0.01 seed=42")),
        ("plans", Json::array(picked.iter().map(|c| c.to_json()))),
    ])
    .to_compact_string();

    std::fs::create_dir_all("results").expect("create results dir");
    let bless = std::env::var("PLAN_REGRESSION_BLESS").is_ok_and(|v| v == "1");
    match std::fs::read_to_string(SNAPSHOT_PATH) {
        Ok(committed) if committed == snapshot => {
            println!("ok: {} plans match {}", picked.len(), SNAPSHOT_PATH);
        }
        Ok(_) if bless => {
            std::fs::write(SNAPSHOT_PATH, &snapshot).expect("write snapshot");
            println!("blessed: rewrote {}", SNAPSHOT_PATH);
        }
        Ok(committed) => {
            eprintln!("plan_regression: chosen plans diverged from the committed snapshot.");
            eprintln!("  committed: {committed}");
            eprintln!("  current:   {snapshot}");
            eprintln!("Review the change, then re-bless with PLAN_REGRESSION_BLESS=1.");
            std::process::exit(1);
        }
        Err(_) if bless => {
            std::fs::write(SNAPSHOT_PATH, &snapshot).expect("write snapshot");
            println!("blessed: created {}", SNAPSHOT_PATH);
        }
        Err(_) => {
            eprintln!("plan_regression: no committed snapshot at {SNAPSHOT_PATH}.");
            eprintln!("Bless the initial snapshot with PLAN_REGRESSION_BLESS=1.");
            std::process::exit(1);
        }
    }

    // Informational e2e timings: the cost-based plan vs the binder's
    // syntactic plan (no rewrites at all) and vs the same rewrite pipeline
    // with adversarially inverted estimates (worst join order / build
    // sides). Never gates — timings are machine-dependent.
    let mut bench = TextTable::new(&[
        "template",
        "syntactic ms",
        "inverted ms",
        "cost-based ms",
        "speedup",
    ]);
    let timings: Vec<Json> = TPCH_QUERIES
        .iter()
        .map(|q| {
            let select = pixels_sql::parse_query(q.sql).unwrap();
            let logical = Binder::new(&catalog, "tpch").bind_select(&select).unwrap();
            let naive = create_physical_plan(&logical).unwrap();
            let inverted =
                create_physical_plan(&optimize_with(logical.clone(), EstMode::Inverted)).unwrap();
            let optimized = create_physical_plan(&optimize_with(logical, EstMode::Normal)).unwrap();
            let naive_ms = time_plan(&naive, &store);
            let inv_ms = time_plan(&inverted, &store);
            let opt_ms = time_plan(&optimized, &store);
            bench.row(&[
                q.id.to_string(),
                format!("{naive_ms:.2}"),
                format!("{inv_ms:.2}"),
                format!("{opt_ms:.2}"),
                format!("{:.2}x", naive_ms / opt_ms.max(1e-9)),
            ]);
            Json::object([
                ("id", Json::string(q.id)),
                ("syntactic_ms", Json::number(naive_ms)),
                ("inverted_ms", Json::number(inv_ms)),
                ("cost_based_ms", Json::number(opt_ms)),
            ])
        })
        .collect();
    bench.print();

    let report = Json::object([
        ("benchmark", Json::string("bench_plan")),
        ("fixture", Json::string("tpch scale=0.01 seed=42")),
        ("parallelism", Json::number(4.0)),
        ("timings", Json::array(timings)),
    ]);
    std::fs::write(BENCH_PATH, report.to_compact_string()).expect("write bench_plan.json");
    println!("ok: timings -> {BENCH_PATH}");
}
