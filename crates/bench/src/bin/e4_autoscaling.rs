//! E4 — watermark autoscaling traces (paper §3.1).
//!
//! Replays a diurnal analytical workload and a spiky log-analysis workload
//! through the simulated cluster and prints concurrency / active-worker
//! strip charts, plus a lazy-vs-eager scale-in ablation.

use pixels_bench::{sparkline, TextTable};
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixels_sim::{SimDuration, SimTime};
use pixels_turbo::{CfConfig, ResourcePricing, VmConfig};
use pixels_workload::{diurnal, spike, WorkloadTrace};

fn run(subs: Vec<Submission>, vm_cfg: VmConfig) -> pixels_server::SimReport {
    let sim = ServerSim::new(
        vm_cfg,
        CfConfig::default(),
        ResourcePricing::default(),
        ServerConfig {
            tick: SimDuration::from_millis(200),
            ..Default::default()
        },
    );
    sim.run(subs, SimDuration::from_secs(2 * 3600))
}

fn to_submissions(trace: WorkloadTrace, level: ServiceLevel) -> Vec<Submission> {
    trace
        .entries
        .into_iter()
        .map(|e| Submission {
            at: e.at,
            class: e.class,
            level,
        })
        .collect()
}

fn main() {
    println!("== E4: watermark autoscaler traces (high=5, low=0.75) ==\n");
    let horizon = SimDuration::from_secs(2 * 3600);

    // Diurnal TPC-H-like load: mean ~15 queries/min with a heavy tail, so
    // the daily peak pushes concurrency past the high watermark.
    let arrivals = diurnal(0.25, 0.9, SimDuration::from_secs(3600), horizon, 21);
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.2, 0.4, 0.4], 5);
    let n = trace.len();
    let report = run(
        to_submissions(trace, ServiceLevel::Immediate),
        VmConfig::default(),
    );
    let end = report.end_time;
    println!("Diurnal analytical workload ({n} queries over 2h):");
    println!(
        "  concurrency |{}|",
        sparkline(&report.concurrency_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  VM workers  |{}|",
        sparkline(&report.vm_worker_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  CF workers  |{}|",
        sparkline(&report.cf_worker_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  scale-out events: {}   scale-in events: {}   unfinished: {}\n",
        report.scale_out_events, report.scale_in_events, report.unfinished
    );
    assert!(
        report.scale_out_events > 0,
        "diurnal peak must trigger scale-out"
    );
    let peak_workers = report.vm_worker_series.max_over(SimTime::ZERO, end);
    assert!(peak_workers > 1.0, "cluster must have grown");

    // Spiky log-analysis load.
    let arrivals = spike(
        0.02,
        1.0,
        SimDuration::from_secs(1800),
        SimDuration::from_secs(2100),
        horizon,
        33,
    );
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.6, 0.35, 0.05], 9);
    let n = trace.len();
    let report = run(
        to_submissions(trace, ServiceLevel::Immediate),
        VmConfig::default(),
    );
    let end = report.end_time;
    println!("Log-analysis workload with a 5-minute spike ({n} queries):");
    println!(
        "  concurrency |{}|",
        sparkline(&report.concurrency_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  VM workers  |{}|",
        sparkline(&report.vm_worker_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  CF workers  |{}|",
        sparkline(&report.cf_worker_series, SimTime::ZERO, end, 72)
    );
    println!(
        "  CF absorbed {:.0}% of spike-window queries (VM boot lag = {})\n",
        report.cf_fraction(ServiceLevel::Immediate) * 100.0,
        VmConfig::default().boot_time,
    );

    // Ablation: lazy vs eager scale-in on the spiky trace (two spikes).
    println!(
        "Ablation: lazy scale-in (cooldown 120s) vs eager (cooldown 0s), two spikes 10 min apart:"
    );
    let arrivals = {
        let mut a = spike(
            0.02,
            0.8,
            SimDuration::from_secs(600),
            SimDuration::from_secs(900),
            SimDuration::from_secs(1500),
            44,
        );
        a.extend(
            spike(
                0.02,
                0.8,
                SimDuration::from_secs(1500),
                SimDuration::from_secs(1800),
                SimDuration::from_secs(2400),
                45,
            )
            .into_iter()
            .filter(|t| *t >= SimTime::from_secs(1500)),
        );
        a.sort();
        a
    };
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.3, 0.6, 0.1], 13);
    let mut table = TextTable::new(&[
        "policy",
        "scale-in events",
        "scale-out events",
        "mean pending (s)",
    ]);
    for (name, cooldown) in [
        ("lazy (120s)", SimDuration::from_secs(120)),
        ("eager (0s)", SimDuration::ZERO),
    ] {
        let cfg = VmConfig {
            scale_in_cooldown: cooldown,
            ..Default::default()
        };
        let report = run(to_submissions(trace.clone(), ServiceLevel::Relaxed), cfg);
        let pending = report.pending_stats(ServiceLevel::Relaxed);
        table.row(&[
            name.to_string(),
            report.scale_in_events.to_string(),
            report.scale_out_events.to_string(),
            format!("{:.1}", pending.mean().as_secs_f64()),
        ]);
    }
    table.print();
    println!("\ne4_autoscaling: OK");
}
