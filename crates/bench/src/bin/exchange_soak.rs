//! `exchange_soak` — the CI gate for multi-stage (shuffle) CF plans under
//! fault injection.
//!
//! Every scenario crosses a seeded fault plan aimed at the exchange path
//! (spill PUT errors, spill GET errors, a stage-0 worker crash) with all
//! three service levels, and runs the same shuffleable TPC-H join/agg
//! queries through a faulted deployment and a fault-free twin. Asserted per
//! pair:
//!
//! 1. **Result equivalence** — batches bit-identical to the fault-free twin.
//! 2. **Billing equivalence** — billed `scan_bytes`, the user price, *and*
//!    the provider-side shuffle dollars match exactly: exchange retries are
//!    free, losers never price, and spill traffic never reaches the bill.
//! 3. **Level isolation** — only Immediate (the CF-enabled level) touches
//!    the exchange path; Relaxed/BestEffort run the VM plan and must see
//!    zero exchange traffic and zero exchange faults.
//! 4. **GC** — the spill namespace is empty after every scenario.
//!
//! Results are printed as a table and written to
//! `results/exchange_soak.json` (uploaded as a CI artifact).

use pixels_bench::TextTable;
use pixels_catalog::Catalog;
use pixels_chaos::{FaultInjector, FaultPlan, FaultSite, RetryPolicy, SiteSpec};
use pixels_common::Json;
use pixels_obs::{MetricsRegistry, WallClock};
use pixels_server::{PriceSchedule, QueryServer, QueryStatus, QuerySubmission, ServiceLevel};
use pixels_storage::{chaos_stack, InMemoryObjectStore, ObjectStoreRef};
use pixels_turbo::{EngineConfig, TurboEngine};
use pixels_workload::{load_tpch, TpchConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 20260807;

/// Shuffleable TPC-H queries: one aggregation, one equi-join.
const QUERIES: [(&str, &str); 2] = [
    (
        "shuffle_agg",
        "SELECT o_orderstatus, COUNT(*) AS n FROM orders \
         GROUP BY o_orderstatus ORDER BY n DESC",
    ),
    (
        "shuffle_join",
        "SELECT c_name, o_orderkey FROM customer \
         JOIN orders ON c_custkey = o_custkey \
         ORDER BY o_orderkey, c_name LIMIT 20",
    ),
];

fn shuffle_config() -> EngineConfig {
    EngineConfig {
        vm_slots: 1,
        cf_fleet_threads: 2,
        exchange_partitions: 4,
        ..EngineConfig::default()
    }
}

struct Deployment {
    server: QueryServer,
    injector: Arc<FaultInjector>,
    /// The raw inner store, for spill-leak sweeps under the chaos wrapper.
    store: ObjectStoreRef,
}

fn deploy(plan: &FaultPlan) -> Deployment {
    let catalog = Catalog::shared();
    let inner = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        inner.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 11,
            row_group_rows: 512,
            files_per_table: 2,
        },
    )
    .expect("load tpch");
    let injector = Arc::new(FaultInjector::new(plan));
    let store = chaos_stack(
        inner.clone(),
        injector.clone(),
        RetryPolicy::object_store(),
        WallClock::shared(),
    );
    let engine = Arc::new(
        TurboEngine::new(catalog, store, shuffle_config())
            .with_registry(MetricsRegistry::shared())
            .with_chaos(injector.clone()),
    );
    Deployment {
        server: QueryServer::new(engine, PriceSchedule::default()),
        injector,
        store: inner,
    }
}

fn assert_no_spill_leaks(tag: &str, d: &Deployment, failures: &mut Vec<String>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let leaked = d
            .store
            .list("pixels-turbo/intermediate/")
            .unwrap_or_default();
        if leaked.is_empty() {
            return;
        }
        if Instant::now() >= deadline {
            failures.push(format!("{tag}: leaked spill objects: {leaked:?}"));
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn with_saturated_slot<T>(d: &Deployment, f: impl FnOnce() -> T) -> T {
    let engine = d.server.engine().clone();
    let blocker = std::thread::spawn(move || {
        engine
            .execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .unwrap()
    });
    while !d.server.engine().is_busy() {
        std::thread::yield_now();
    }
    let r = f();
    blocker.join().unwrap();
    r
}

#[derive(Clone)]
struct RunRecord {
    query_id: &'static str,
    finished: bool,
    batch: Option<pixels_common::RecordBatch>,
    scan_bytes: u64,
    price: f64,
    shuffle_dollars: f64,
    latency: Duration,
}

fn run_query(d: &Deployment, sql: &str, qid: &'static str, level: ServiceLevel) -> RunRecord {
    let start = Instant::now();
    let id = d.server.submit(QuerySubmission {
        database: "tpch".into(),
        sql: sql.into(),
        level,
        result_limit: None,
        tenant: None,
        deadline_us: None,
    });
    let info = d.server.wait(id).expect("query record");
    RunRecord {
        query_id: qid,
        finished: info.status == QueryStatus::Finished,
        batch: info.result,
        scan_bytes: info.scan_bytes,
        price: info.price,
        shuffle_dollars: info.provider_shuffle_dollars,
        latency: start.elapsed(),
    }
}

/// Compare one faulted run against its fault-free twin. Shuffle dollars are
/// compared bit-for-bit: they are priced from the *accepted* stage attempts
/// only, so faults (retried PUT/GETs, crashed and relaunched stages) must
/// never move them.
fn check_pair(base: &RunRecord, chaos: &RunRecord) -> Result<(), String> {
    if !base.finished || !chaos.finished {
        return Err(format!(
            "{}: availability broken (baseline finished={}, chaos finished={})",
            base.query_id, base.finished, chaos.finished
        ));
    }
    if base.batch != chaos.batch {
        return Err(format!(
            "{}: results diverged under faults (bit-identity violated)",
            base.query_id
        ));
    }
    if base.scan_bytes != chaos.scan_bytes {
        return Err(format!(
            "{}: billed bytes diverged: fault-free {} vs chaos {}",
            base.query_id, base.scan_bytes, chaos.scan_bytes
        ));
    }
    if base.price != chaos.price {
        return Err(format!(
            "{}: user bill diverged: fault-free ${} vs chaos ${}",
            base.query_id, base.price, chaos.price
        ));
    }
    if base.shuffle_dollars.to_bits() != chaos.shuffle_dollars.to_bits() {
        return Err(format!(
            "{}: provider shuffle dollars diverged: fault-free ${} vs chaos ${}",
            base.query_id, base.shuffle_dollars, chaos.shuffle_dollars
        ));
    }
    Ok(())
}

/// The ledger's `cf_shuffle` component must reconcile bit-for-bit against
/// each query record's provider shuffle spend.
fn reconcile_shuffle_ledger(tag: &str, d: &Deployment, failures: &mut Vec<String>) {
    let infos = d.server.list();
    for e in &d.server.ledger().entries() {
        let Some(info) = infos.iter().find(|i| i.id.to_string() == e.query) else {
            failures.push(format!(
                "{tag}: ledger entry {} has no query record",
                e.query
            ));
            continue;
        };
        if e.shuffle_dollars.to_bits() != info.provider_shuffle_dollars.to_bits() {
            failures.push(format!(
                "{tag}: ledger shuffle dollars {} diverge from query record {}",
                e.shuffle_dollars, info.provider_shuffle_dollars
            ));
        }
    }
}

fn metric_value(text: &str, needle: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.rsplit(' ').next().unwrap().parse().ok())
        .unwrap_or(0.0)
}

struct ScenarioResult {
    name: String,
    level: &'static str,
    queries: usize,
    equivalent: usize,
    faults_injected: u64,
    exchange_faults: f64,
    put_bytes: f64,
    shuffle_dollars: f64,
    baseline_latency_ms: f64,
    chaos_latency_ms: f64,
}

fn mean_latency_ms(runs: &[RunRecord]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|r| r.latency.as_secs_f64() * 1e3)
        .sum::<f64>()
        / runs.len() as f64
}

fn main() {
    let mut failures: Vec<String> = Vec::new();
    let mut scenarios: Vec<ScenarioResult> = Vec::new();

    // Error bursts sized to the retry budget (4 retries): the first spill
    // PUT/GET absorbs the whole burst and succeeds on its final retry, so
    // the CF path deterministically survives instead of degrading to VM
    // (degradation legitimately changes the billing path and is covered by
    // tests/chaos_recovery.rs, not this equivalence gate).
    let matrix: [(&str, FaultPlan, Option<FaultSite>); 3] = [
        (
            "exchange_put_error_burst",
            FaultPlan::none(SEED).with(FaultSite::ExchangePut, SiteSpec::errors(1.0).capped(4)),
            Some(FaultSite::ExchangePut),
        ),
        (
            "exchange_get_error_burst",
            FaultPlan::none(SEED).with(FaultSite::ExchangeGet, SiteSpec::errors(1.0).capped(4)),
            Some(FaultSite::ExchangeGet),
        ),
        (
            "stage_crash_relaunch",
            FaultPlan::none(SEED).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
            None,
        ),
    ];

    for (name, plan, fault_site) in &matrix {
        for level in [
            ServiceLevel::Immediate,
            ServiceLevel::Relaxed,
            ServiceLevel::BestEffort,
        ] {
            let cf_level = level.cf_enabled();
            let mut base_runs = Vec::new();
            let mut chaos_runs = Vec::new();
            let mut injected_total = 0;
            let mut exchange_faults = 0.0;
            let mut put_bytes = 0.0;
            for (qid, sql) in QUERIES {
                let base_d = deploy(&FaultPlan::none(SEED));
                let chaos_d = deploy(plan);
                if cf_level {
                    // Warm both deployments identically (one VM run each) so
                    // the measured CF run bills from the same cache state,
                    // then saturate the slot to force the CF shuffle path.
                    run_query(&base_d, sql, qid, ServiceLevel::Relaxed);
                    run_query(&chaos_d, sql, qid, ServiceLevel::Relaxed);
                    base_runs.push(with_saturated_slot(&base_d, || {
                        run_query(&base_d, sql, qid, level)
                    }));
                    chaos_runs.push(with_saturated_slot(&chaos_d, || {
                        run_query(&chaos_d, sql, qid, level)
                    }));
                } else {
                    base_runs.push(run_query(&base_d, sql, qid, level));
                    chaos_runs.push(run_query(&chaos_d, sql, qid, level));
                }
                injected_total += chaos_d.injector.injected_total();
                reconcile_shuffle_ledger(&format!("{name}/{qid}"), &chaos_d, &mut failures);
                assert_no_spill_leaks(&format!("{name}/{qid}/baseline"), &base_d, &mut failures);
                assert_no_spill_leaks(&format!("{name}/{qid}/chaos"), &chaos_d, &mut failures);
                let text = chaos_d.server.metrics_text();
                if pixels_obs::validate_exposition(&text).is_err() {
                    failures.push(format!("{name}/{qid}: invalid exposition"));
                }
                put_bytes += metric_value(&text, "pixels_exchange_put_bytes_total");
                if let Some(site) = fault_site {
                    exchange_faults += metric_value(
                        &text,
                        &format!("pixels_faults_injected_total{{site=\"{}\"}}", site.name()),
                    );
                }
            }
            let lname = level.name();
            if cf_level {
                if put_bytes <= 0.0 {
                    failures.push(format!("{name}/{lname}: queries never shuffled"));
                }
                if fault_site.is_some() && exchange_faults <= 0.0 {
                    failures.push(format!("{name}/{lname}: no faults hit the exchange path"));
                }
                if injected_total == 0 {
                    failures.push(format!("{name}/{lname}: no faults injected"));
                }
            } else {
                // CF (and thus the exchange) is disabled below Immediate: the
                // VM plan must never touch the exchange path, so exchange
                // fault sites stay silent and no spill traffic exists.
                if put_bytes != 0.0 {
                    failures.push(format!(
                        "{name}/{lname}: VM-level queries produced exchange traffic"
                    ));
                }
                if exchange_faults != 0.0 {
                    failures.push(format!(
                        "{name}/{lname}: exchange faults fired on the VM path"
                    ));
                }
            }
            let mut equivalent = 0;
            for (b, c) in base_runs.iter().zip(&chaos_runs) {
                match check_pair(b, c) {
                    Ok(()) => equivalent += 1,
                    Err(e) => failures.push(format!("{name}/{lname}: {e}")),
                }
            }
            scenarios.push(ScenarioResult {
                name: (*name).into(),
                level: lname,
                queries: QUERIES.len(),
                equivalent,
                faults_injected: injected_total,
                exchange_faults,
                put_bytes,
                shuffle_dollars: chaos_runs.iter().map(|r| r.shuffle_dollars).sum(),
                baseline_latency_ms: mean_latency_ms(&base_runs),
                chaos_latency_ms: mean_latency_ms(&chaos_runs),
            });
        }
    }

    let mut table = TextTable::new(&[
        "scenario",
        "level",
        "queries",
        "equiv",
        "faults",
        "xchg faults",
        "spill KiB",
        "shuffle $",
        "base ms",
        "chaos ms",
    ]);
    for s in &scenarios {
        table.row(&[
            s.name.clone(),
            s.level.to_string(),
            s.queries.to_string(),
            s.equivalent.to_string(),
            s.faults_injected.to_string(),
            format!("{:.0}", s.exchange_faults),
            format!("{:.1}", s.put_bytes / 1024.0),
            format!("{:.9}", s.shuffle_dollars),
            format!("{:.1}", s.baseline_latency_ms),
            format!("{:.1}", s.chaos_latency_ms),
        ]);
    }
    table.print();

    let report = Json::object(scenarios.iter().map(|s| {
        (
            format!("{}/{}", s.name, s.level),
            Json::object([
                ("queries", Json::number(s.queries as f64)),
                ("equivalent", Json::number(s.equivalent as f64)),
                ("faults_injected", Json::number(s.faults_injected as f64)),
                ("exchange_faults", Json::number(s.exchange_faults)),
                ("exchange_put_bytes", Json::number(s.put_bytes)),
                ("shuffle_dollars", Json::number(s.shuffle_dollars)),
                ("baseline_latency_ms", Json::number(s.baseline_latency_ms)),
                ("chaos_latency_ms", Json::number(s.chaos_latency_ms)),
            ]),
        )
    }));
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/exchange_soak.json", report.to_compact_string())
        .expect("write exchange_soak.json");
    println!("wrote results/exchange_soak.json");

    if !failures.is_empty() {
        println!("\n{} divergence(s):", failures.len());
        for f in &failures {
            println!("FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("\nall scenarios equivalent: shuffles survive exchange faults with identical results and bills");
}
