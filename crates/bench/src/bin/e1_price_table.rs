//! E1 — the service-level price table (paper §3.2).
//!
//! Executes real TPC-H queries, meters the exact bytes scanned, and bills
//! them at each service level. Reproduces the paper's demo pricing:
//! immediate $5/TB (the AWS Athena price), relaxed $1/TB (20%),
//! best-of-effort $0.5/TB (10%).

use pixels_bench::{demo_data, TextTable};
use pixels_common::bytesize::{as_terabytes, format_bytes};
use pixels_exec::{execute, ExecContext};
use pixels_planner::plan_query;
use pixels_server::{PriceSchedule, ServiceLevel};
use pixels_workload::TPCH_QUERIES;

fn main() {
    println!("== E1: flexible service levels and prices ($/TB scanned) ==\n");
    let (catalog, store) = demo_data(0.002);
    let prices = PriceSchedule::default();

    let mut level_table = TextTable::new(&["service level", "pending-time bound", "price ($/TB)"]);
    for level in ServiceLevel::ALL {
        let bound = match level {
            ServiceLevel::Immediate => "none (starts now)",
            ServiceLevel::Relaxed => "grace period (5 min)",
            ServiceLevel::BestEffort => "unbounded",
        };
        level_table.row(&[
            level.name().to_string(),
            bound.to_string(),
            format!("{:.2}", prices.per_tb(level)),
        ]);
    }
    level_table.print();

    println!("\nPer-query bills on TPC-H (exact bytes metered by the scan layer):");
    let mut table = TextTable::new(&[
        "query",
        "bytes scanned",
        "immediate ($)",
        "relaxed ($)",
        "best-of-effort ($)",
    ]);
    for q in TPCH_QUERIES.iter().take(6) {
        let plan = plan_query(&catalog, "tpch", q.sql).expect("plan");
        let ctx = ExecContext::new(store.clone());
        execute(&plan, &ctx).expect("execute");
        let bytes = ctx.metrics.snapshot().bytes_scanned;
        table.row(&[
            q.id.to_string(),
            format_bytes(bytes),
            format!("{:.8}", prices.bill(ServiceLevel::Immediate, bytes)),
            format!("{:.8}", prices.bill(ServiceLevel::Relaxed, bytes)),
            format!("{:.8}", prices.bill(ServiceLevel::BestEffort, bytes)),
        ]);
        // Invariant check: exact 100% / 20% / 10% split.
        let i = prices.bill(ServiceLevel::Immediate, bytes);
        let r = prices.bill(ServiceLevel::Relaxed, bytes);
        let b = prices.bill(ServiceLevel::BestEffort, bytes);
        assert!((r / i - 0.2).abs() < 1e-9 && (b / i - 0.1).abs() < 1e-9);
        assert!((i / as_terabytes(bytes) - 5.0).abs() < 1e-6);
    }
    table.print();
    println!("\ne1_price_table: OK (relaxed = 20%, best-of-effort = 10% of immediate; immediate = $5/TB)");
}
