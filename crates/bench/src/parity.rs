//! Sim-vs-real policy differential (the `policy_parity` CI gate).
//!
//! The scheduling & recovery policy core (`pixels_turbo::policy`) is shared
//! by the real [`TurboEngine`] and the simulated
//! [`Coordinator`](pixels_turbo::Coordinator); this harness proves the
//! sharing is real. For each scenario it drives the *same* query with the
//! *same* seeded fault plan through both drivers and asserts:
//!
//! 1. **Decision parity** — the ordered [`Decision`] sequences are
//!    bit-identical (dispatch, crash, relaunch, speculation, degradation).
//! 2. **Bill parity** — the user's $/TB bill is identical (the sim prices
//!    the bytes the real execution measured).
//! 3. **Cost parity** — the modelled provider cost of the accepted
//!    execution and the total CF spend across all attempts (crashed and
//!    cancelled fleets included) are bit-identical f64s.

use pixels_catalog::Catalog;
use pixels_chaos::{FaultInjector, FaultPlan, FaultSite, SiteSpec};
use pixels_common::{Json, QueryId};
use pixels_obs::MetricsRegistry;
use pixels_server::{PriceSchedule, ServiceLevel};
use pixels_sim::{SimDuration, SimTime};
use pixels_storage::InMemoryObjectStore;
use pixels_turbo::{
    CfConfig, CfCostModel, Coordinator, CostBreakdown, Decision, EngineConfig, QueryWork,
    ResourcePricing, TurboEngine, VmConfig,
};
use pixels_workload::{load_tpch, QueryClass, TpchConfig};
use std::sync::Arc;

/// The workload every scenario drives: a splittable aggregation, so the CF
/// path is available whenever the service level enables it.
const SQL: &str = "SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus";

/// One differential scenario: a fault plan plus the service level that
/// selects the execution path.
pub struct Scenario {
    pub name: &'static str,
    pub plan: FaultPlan,
    pub level: ServiceLevel,
    /// Exchange fan-out: above 1 the CF path runs the query as a two-stage
    /// shuffle (one [`pixels_turbo::CfRace`] per stage on both drivers);
    /// `0` enables cost-based auto sizing (the scenario SQL's exchange is
    /// below the auto threshold, so it exercises the sized single-stage
    /// path).
    pub partitions: usize,
}

/// The scenario matrix: clean paths, crash recovery (single and total),
/// and straggler speculation.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean-vm",
            plan: FaultPlan::none(11),
            level: ServiceLevel::Relaxed,
            partitions: 1,
        },
        Scenario {
            name: "clean-cf",
            plan: FaultPlan::none(12),
            level: ServiceLevel::Immediate,
            partitions: 1,
        },
        Scenario {
            name: "cf-crash-once",
            plan: FaultPlan::none(42).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
            level: ServiceLevel::Immediate,
            partitions: 1,
        },
        Scenario {
            name: "cf-crash-always",
            plan: FaultPlan::cf_crashes(7, 1.0),
            level: ServiceLevel::Immediate,
            partitions: 1,
        },
        Scenario {
            name: "cf-straggler",
            plan: FaultPlan::none(3).with(
                FaultSite::CfStraggler,
                // 5 s: far beyond both the engine's wall-clock deadline and
                // the sim's modelled one, so both speculate.
                SiteSpec::delays(1.0, 5_000_000, 5_000_000).capped(1),
            ),
            level: ServiceLevel::Immediate,
            partitions: 1,
        },
        Scenario {
            name: "auto-sized-clean-cf",
            plan: FaultPlan::none(31),
            level: ServiceLevel::Immediate,
            partitions: 0,
        },
        Scenario {
            name: "auto-sized-crash-once",
            plan: FaultPlan::none(33).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
            level: ServiceLevel::Immediate,
            partitions: 0,
        },
        Scenario {
            name: "shuffle-clean",
            plan: FaultPlan::none(21),
            level: ServiceLevel::Immediate,
            partitions: 4,
        },
        Scenario {
            name: "shuffle-stage-crash",
            plan: FaultPlan::none(42).with(FaultSite::CfCrash, SiteSpec::errors(1.0).capped(1)),
            level: ServiceLevel::Immediate,
            partitions: 4,
        },
    ]
}

/// Both sides of one scenario, after the differential assertions passed.
pub struct ParityReport {
    pub name: &'static str,
    pub decisions: Vec<Decision>,
    pub bill: f64,
    pub scan_bytes: u64,
    pub resource_cost: CostBreakdown,
    pub provider_cf_dollars: f64,
    pub shuffle_dollars: f64,
}

impl ParityReport {
    pub fn to_json(&self) -> Json {
        Json::object([
            ("scenario", Json::string(self.name)),
            (
                "decisions",
                Json::array(
                    self.decisions
                        .iter()
                        .map(|d| Json::string(format!("{d:?}"))),
                ),
            ),
            ("bill_dollars", Json::number(self.bill)),
            ("scan_bytes", Json::number(self.scan_bytes as f64)),
            (
                "resource_vm_dollars",
                Json::number(self.resource_cost.vm_dollars),
            ),
            (
                "resource_cf_dollars",
                Json::number(self.resource_cost.cf_dollars),
            ),
            (
                "provider_cf_dollars",
                Json::number(self.provider_cf_dollars),
            ),
            ("shuffle_dollars", Json::number(self.shuffle_dollars)),
        ])
    }
}

fn engine_for(plan: &FaultPlan, partitions: usize) -> Arc<TurboEngine> {
    let catalog = Catalog::shared();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.0005,
            seed: 1,
            row_group_rows: 512,
            files_per_table: 1,
        },
    )
    .expect("load tpch");
    Arc::new(
        TurboEngine::new(
            catalog,
            store,
            EngineConfig {
                vm_slots: 1,
                cf_fleet_threads: 2,
                exchange_partitions: partitions,
                ..EngineConfig::default()
            },
        )
        .with_registry(MetricsRegistry::shared())
        .with_chaos(Arc::new(FaultInjector::new(plan))),
    )
}

/// Real side: execute `SQL` on a fresh chaos-enabled engine. CF scenarios
/// saturate the single VM slot first so the engine takes the CF path.
fn run_real(s: &Scenario) -> pixels_turbo::ExecOutcome {
    let engine = engine_for(&s.plan, s.partitions);
    if !s.level.cf_enabled() {
        return engine.execute_sql("tpch", SQL, false).expect("vm query");
    }
    let blocker = {
        let e = engine.clone();
        std::thread::spawn(move || {
            e.execute_sql(
                "tpch",
                "SELECT COUNT(*) FROM lineitem CROSS JOIN nation",
                false,
            )
            .expect("blocker")
        })
    };
    while !engine.is_busy() {
        std::thread::yield_now();
    }
    let out = engine.execute_sql("tpch", SQL, true).expect("cf query");
    blocker.join().expect("blocker join");
    out
}

/// Sim side: the identical work (the real execution's measured scan bytes
/// on the plan's modelled CPU demand) through a coordinator seeded with the
/// same fault plan. CF scenarios overload the VM cluster first so the
/// placement rule picks CF, mirroring the saturated real engine.
fn run_sim(
    s: &Scenario,
    work: QueryWork,
    exchange: Option<(u64, u64)>,
) -> (Vec<Decision>, pixels_turbo::QueryCompletion, f64) {
    let mut coord = Coordinator::new(
        VmConfig::default(),
        CfConfig::default(),
        ResourcePricing::default(),
        SimTime::ZERO,
    )
    .with_fault_injector(Arc::new(FaultInjector::new(&s.plan)));
    let t0 = SimTime::from_millis(100);
    let id = QueryId(100);
    if s.level.cf_enabled() {
        // Heavy foreground queries hold the cluster at the high watermark
        // for the whole race, like the saturated slot on the real engine.
        for i in 0..5 {
            coord.submit(
                QueryId(i),
                QueryWork::from_class(QueryClass::Heavy),
                false,
                t0,
            );
        }
        assert!(coord.is_overloaded(), "foreground load must overload");
    }
    match exchange {
        // Shuffle: the sim prices the spill traffic the real engine
        // measured; stage costs come from the shared per-stage work split.
        Some((put, get)) => coord.submit_shuffle(id, work, put, get, t0),
        None => coord.submit(id, work, s.level.cf_enabled(), t0),
    }

    let dt = SimDuration::from_millis(100);
    let mut now = t0;
    let budget = t0 + SimDuration::from_secs(8 * 3600);
    let mut completion = None;
    while completion.is_none() && now < budget {
        now += dt;
        for done in coord.tick(now, dt) {
            if done.id == id {
                completion = Some(done);
            }
        }
    }
    let done = completion.expect("sim query completes within budget");
    (
        coord.decisions_for(id).to_vec(),
        done,
        coord.total_resource_cost().cf_dollars,
    )
}

/// Run one scenario through both drivers and assert parity. Panics with a
/// labelled diff on any mismatch (this is the CI gate).
pub fn run_scenario(s: &Scenario) -> ParityReport {
    let out = run_real(s);
    // The sim executes the same work the real engine modelled: the plan's
    // CPU demand with the real execution's billed bytes.
    let plan = {
        let catalog = Catalog::shared();
        let store = InMemoryObjectStore::shared();
        load_tpch(
            &catalog,
            store.as_ref(),
            "tpch",
            &TpchConfig {
                scale: 0.0005,
                seed: 1,
                row_group_rows: 512,
                files_per_table: 1,
            },
        )
        .expect("load tpch");
        pixels_planner::plan_query(&catalog, "tpch", SQL).expect("plan")
    };
    // Fleet right-sizing is part of the shared policy surface: the sim
    // receives the same sized work the engine's cost model produced (sizing
    // only touches `parallelism`, so the measured-bytes substitution
    // commutes with it).
    let cost_model = CfCostModel::new(&CfConfig::default(), ResourcePricing::default());
    let work = cost_model.sized_work(&QueryWork {
        scan_bytes: out.bytes_scanned,
        ..QueryWork::from_plan(&plan)
    });
    let exchange = (s.partitions > 1 && out.used_cf)
        .then_some((out.exchange.put_bytes, out.exchange.get_bytes));
    let (sim_decisions, done, sim_cf_total) = run_sim(s, work, exchange);

    assert_eq!(
        out.provider_shuffle_dollars.to_bits(),
        done.shuffle_dollars.to_bits(),
        "[{}] provider shuffle spend diverged: {} vs {}",
        s.name,
        out.provider_shuffle_dollars,
        done.shuffle_dollars
    );

    assert_eq!(
        out.decisions, sim_decisions,
        "[{}] decision sequences diverged (real vs sim)",
        s.name
    );
    let prices = PriceSchedule::default();
    let bill_real = prices.bill(s.level, out.bytes_scanned);
    let bill_sim = prices.bill(s.level, done.scan_bytes);
    assert_eq!(
        bill_real.to_bits(),
        bill_sim.to_bits(),
        "[{}] user bills diverged: {bill_real} vs {bill_sim}",
        s.name
    );
    assert_eq!(
        out.resource_cost.vm_dollars.to_bits(),
        done.cost.vm_dollars.to_bits(),
        "[{}] accepted-execution VM cost diverged: {} vs {}",
        s.name,
        out.resource_cost.vm_dollars,
        done.cost.vm_dollars
    );
    assert_eq!(
        out.resource_cost.cf_dollars.to_bits(),
        done.cost.cf_dollars.to_bits(),
        "[{}] accepted-execution CF cost diverged: {} vs {}",
        s.name,
        out.resource_cost.cf_dollars,
        done.cost.cf_dollars
    );
    assert_eq!(
        out.provider_cf_dollars.to_bits(),
        sim_cf_total.to_bits(),
        "[{}] provider CF spend diverged: {} vs {}",
        s.name,
        out.provider_cf_dollars,
        sim_cf_total
    );
    // Ledger parity: filing both sides' dollars through the economics
    // ledger's own entry type must agree on every derived figure — waste
    // (provider CF spend beyond the accepted run), total provider spend,
    // and margin — bit-for-bit, plus the degradation/speculation flags.
    let entry = |revenue: f64,
                 cost: CostBreakdown,
                 provider_cf: f64,
                 shuffle: f64,
                 decisions: &[Decision]| {
        pixels_obs::LedgerEntry {
            query: "q-100".into(),
            tenant: "parity".into(),
            level: s.level.name().into(),
            bytes_billed: out.bytes_scanned,
            revenue_dollars: revenue,
            vm_dollars: cost.vm_dollars,
            cf_dollars: cost.cf_dollars,
            provider_cf_dollars: provider_cf,
            shuffle_dollars: shuffle,
            degraded: decisions.contains(&Decision::Degrade),
            speculative: decisions
                .iter()
                .any(|d| matches!(d, Decision::StragglerSpeculate { .. })),
            at_us: 0,
        }
    };
    let real_entry = entry(
        bill_real,
        out.resource_cost,
        out.provider_cf_dollars,
        out.provider_shuffle_dollars,
        &out.decisions,
    );
    let sim_entry = entry(
        bill_sim,
        done.cost,
        sim_cf_total,
        done.shuffle_dollars,
        &sim_decisions,
    );
    for (what, a, b) in [
        (
            "waste",
            real_entry.waste_dollars(),
            sim_entry.waste_dollars(),
        ),
        (
            "provider total",
            real_entry.provider_total_dollars(),
            sim_entry.provider_total_dollars(),
        ),
        (
            "margin",
            real_entry.margin_dollars(),
            sim_entry.margin_dollars(),
        ),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "[{}] ledger {what} diverged: {a} vs {b}",
            s.name
        );
    }
    assert_eq!(
        (real_entry.degraded, real_entry.speculative),
        (sim_entry.degraded, sim_entry.speculative),
        "[{}] ledger flags diverged",
        s.name
    );
    ParityReport {
        name: s.name,
        decisions: sim_decisions,
        bill: bill_real,
        scan_bytes: out.bytes_scanned,
        resource_cost: done.cost,
        provider_cf_dollars: sim_cf_total,
        shuffle_dollars: done.shuffle_dollars,
    }
}

/// Run the whole matrix; returns per-scenario reports (panics on the first
/// divergence).
pub fn run_all() -> Vec<ParityReport> {
    scenarios().iter().map(run_scenario).collect()
}
