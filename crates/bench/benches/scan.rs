//! Microbenchmarks for the encoded scan pipeline: executing on encoded
//! chunks (dictionary-code predicates, RLE-run aggregation, late
//! materialization) and serving chunk bytes from the chunk cache, each
//! against the decode-everything baseline (`with_encoded_scan(false)`).
//! Headline ratios are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pixels_catalog::{Catalog, CatalogRef, CreateTable};
use pixels_common::{DataType, Field, RecordBatch, Schema, Value};
use pixels_exec::{execute, ExecContext};
use pixels_planner::{plan_query, PhysicalPlan};
use pixels_storage::{ChunkCache, InMemoryObjectStore, ObjectStoreRef, PixelsReader, PixelsWriter};
use std::sync::Arc;

const ROWS: usize = 1 << 18;
const ROW_GROUP_ROWS: usize = 4096;

/// A table built to exercise the encoded kernels:
/// - `tag`: 64 distinct values in 16-row runs → Dictionary; `tag = 'v7'`
///   selects ~1/64 of the rows, so late materialization skips almost all
///   payload decoding.
/// - `grade`: 16-row runs of Int64 → RLE; grand-total COUNT/SUM/MIN/MAX
///   fold whole runs without expansion.
/// - `payload_a`/`payload_b`: distinct per row → Plain; the columns a
///   selective filter should *not* have to decode.
fn scan_fixture() -> (CatalogRef, ObjectStoreRef) {
    let catalog = Catalog::shared();
    let store: ObjectStoreRef = InMemoryObjectStore::shared();
    catalog.create_database("bench");
    let schema = Arc::new(Schema::new(vec![
        Field::required("tag", DataType::Utf8),
        Field::required("grade", DataType::Int64),
        Field::required("payload_a", DataType::Int64),
        Field::required("payload_b", DataType::Float64),
    ]));
    catalog
        .create_table(CreateTable {
            database: "bench".into(),
            name: "wide".into(),
            schema: schema.clone(),
            primary_key: None,
            foreign_keys: vec![],
            comment: None,
        })
        .expect("create table");
    let path = "bench/wide/part-0.pxl";
    let mut w =
        PixelsWriter::with_row_group_rows(store.as_ref(), path, schema.clone(), ROW_GROUP_ROWS);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(8192);
    let mut written = 0usize;
    while written < ROWS {
        rows.clear();
        for _ in 0..8192.min(ROWS - written) {
            let i = written as i64;
            rows.push(vec![
                Value::Utf8(format!("v{}", (i / 16) % 64)),
                Value::Int64(i / 16),
                Value::Int64(i * 2654435761 % 1_000_003),
                Value::Float64(i as f64 * 0.25),
            ]);
            written += 1;
        }
        let batch = RecordBatch::from_rows(schema.clone(), &rows).expect("batch");
        w.write_batch(&batch).expect("write");
    }
    let size = w.finish().expect("finish");
    let reader = PixelsReader::open(store.as_ref(), path).expect("open");
    catalog
        .register_data_file("bench", "wide", path, reader.footer(), size)
        .expect("register");
    (catalog, store)
}

fn run(plan: &PhysicalPlan, ctx: &ExecContext) -> usize {
    execute(plan, ctx)
        .expect("execute")
        .iter()
        .map(|b| b.num_rows())
        .sum()
}

fn bench_scan_pipeline(c: &mut Criterion) {
    let (catalog, store) = scan_fixture();
    let mut g = c.benchmark_group("scan_pipeline");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ROWS as u64));

    // Selective dictionary filter with fat payload projection.
    let dict_plan = plan_query(
        &catalog,
        "bench",
        "SELECT payload_a, payload_b FROM wide WHERE tag = 'v7'",
    )
    .expect("plan");
    g.bench_function("dict_filter/encoded", |b| {
        b.iter(|| run(&dict_plan, &ExecContext::new(store.clone())))
    });
    g.bench_function("dict_filter/decoded", |b| {
        b.iter(|| {
            run(
                &dict_plan,
                &ExecContext::new(store.clone()).with_encoded_scan(false),
            )
        })
    });

    // Grand-total aggregation over RLE runs.
    let agg_plan = plan_query(
        &catalog,
        "bench",
        "SELECT COUNT(*), SUM(grade), MIN(grade), MAX(grade) FROM wide",
    )
    .expect("plan");
    g.bench_function("rle_count_sum/encoded", |b| {
        b.iter(|| run(&agg_plan, &ExecContext::new(store.clone())))
    });
    g.bench_function("rle_count_sum/decoded", |b| {
        b.iter(|| {
            run(
                &agg_plan,
                &ExecContext::new(store.clone()).with_encoded_scan(false),
            )
        })
    });

    // Chunk cache: cold (no cache) vs warm (pre-warmed shared cache).
    let warm = ChunkCache::shared(256 << 20);
    run(
        &dict_plan,
        &ExecContext::new(store.clone()).with_chunk_cache(warm.clone()),
    );
    g.bench_function("dict_filter/encoded_cold_cache", |b| {
        b.iter(|| {
            let cold = ChunkCache::shared(256 << 20);
            run(
                &dict_plan,
                &ExecContext::new(store.clone()).with_chunk_cache(cold),
            )
        })
    });
    g.bench_function("dict_filter/encoded_warm_cache", |b| {
        b.iter(|| {
            run(
                &dict_plan,
                &ExecContext::new(store.clone()).with_chunk_cache(warm.clone()),
            )
        })
    });
    g.finish();
}

criterion_group!(scan, bench_scan_pipeline);
criterion_main!(scan);
