//! Microbenchmarks for the simulation substrate: event-queue throughput and
//! full scheduling-simulation wall time (the experiments must stay cheap to
//! iterate on).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pixels_server::{ServerConfig, ServerSim, ServiceLevel, Submission};
use pixels_sim::{EventQueue, SimDuration, SimTime};
use pixels_turbo::{CfConfig, ResourcePricing, VmConfig};
use pixels_workload::{poisson, QueryClass, WorkloadTrace};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..N {
                // Pseudo-shuffled times.
                q.schedule(SimTime::from_micros((i * 2_654_435_761) % 1_000_000_000), i);
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
    g.finish();
}

fn bench_server_sim(c: &mut Criterion) {
    let arrivals = poisson(0.2, SimDuration::from_secs(1800), 3);
    let trace = WorkloadTrace::from_arrivals(arrivals, [0.5, 0.4, 0.1], 4);
    let subs: Vec<Submission> = trace
        .entries
        .iter()
        .map(|e| Submission {
            at: e.at,
            class: e.class,
            level: ServiceLevel::Immediate,
        })
        .collect();
    let mut g = c.benchmark_group("server_sim");
    g.sample_size(10);
    g.bench_function("30min_trace", |b| {
        b.iter(|| {
            let sim = ServerSim::new(
                VmConfig::default(),
                CfConfig::default(),
                ResourcePricing::default(),
                ServerConfig {
                    tick: SimDuration::from_millis(200),
                    ..Default::default()
                },
            );
            sim.run(subs.clone(), SimDuration::from_secs(3600))
                .records
                .len()
        })
    });
    g.finish();
}

fn bench_query_class_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_single_query");
    g.bench_function("medium_query_lifecycle", |b| {
        b.iter(|| {
            let sim = ServerSim::with_defaults();
            let subs = vec![Submission {
                at: SimTime::from_secs(1),
                class: QueryClass::Medium,
                level: ServiceLevel::Immediate,
            }];
            sim.run(subs, SimDuration::from_secs(600)).records.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_server_sim,
    bench_query_class_sim
);
criterion_main!(benches);
