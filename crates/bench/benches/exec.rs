//! Microbenchmarks for the execution engine: predicate evaluation, hash
//! join, hash aggregation, end-to-end TPC-H-shaped queries, the
//! serial-vs-parallel scaling of the morsel-driven scan path, and the
//! overhead of span tracing on the hot scan path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pixels_bench::demo_data;
use pixels_common::{DataType, Field, RecordBatch, Schema, Value};
use pixels_exec::{execute, scalar, ExecContext};
use pixels_obs::{Trace, TraceCtx};
use pixels_planner::{plan_query, AggExpr, AggFunc, BoundExpr};
use pixels_sql::ast::{BinaryOp, JoinType};
use pixels_storage::FooterCache;
use pixels_workload::query_by_id;
use std::sync::Arc;

fn bench_queries(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.002);
    let mut g = c.benchmark_group("tpch_queries");
    g.sample_size(20);
    for id in [
        "q1_pricing_summary",
        "q3_shipping_priority",
        "q6_forecast_revenue",
        "orders_by_status",
        "top_customers",
    ] {
        let q = query_by_id(id).unwrap();
        let plan = plan_query(&catalog, "tpch", q.sql).unwrap();
        g.bench_function(id, |b| {
            b.iter(|| {
                let ctx = ExecContext::new(store.clone());
                execute(&plan, &ctx).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.002);
    let li_rows = catalog
        .get_table("tpch", "lineitem")
        .unwrap()
        .stats
        .row_count;
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(li_rows));
    g.sample_size(20);

    for (name, sql) in [
        (
            "filter_scan",
            "SELECT l_orderkey FROM lineitem WHERE l_quantity > 45",
        ),
        (
            "hash_aggregate",
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
        ),
        (
            "hash_join",
            "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
        ),
        (
            "topk",
            "SELECT l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10",
        ),
        (
            "full_sort",
            "SELECT o_totalprice FROM orders ORDER BY o_totalprice",
        ),
    ] {
        let plan = plan_query(&catalog, "tpch", sql).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctx = ExecContext::new(store.clone());
                execute(&plan, &ctx).unwrap().len()
            })
        });
    }
    g.finish();
}

/// Serial vs parallel execution of a multi-row-group scan + aggregation —
/// the workload the morsel-driven scan path exists for. One shared footer
/// cache per parallelism level keeps open costs out of the comparison.
fn bench_parallelism(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.02);
    let mut g = c.benchmark_group("parallel_scan_agg");
    g.sample_size(10);

    for (name, sql) in [
        (
            "scan_agg",
            "SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(l_quantity) AS qty, \
             SUM(l_extendedprice) AS revenue, AVG(l_discount) AS disc \
             FROM lineitem GROUP BY l_returnflag, l_linestatus",
        ),
        (
            "filter_scan",
            "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 30",
        ),
    ] {
        let plan = plan_query(&catalog, "tpch", sql).unwrap();
        for parallelism in [1usize, 2, 4, 8] {
            let cache = FooterCache::shared();
            g.bench_function(&format!("{name}/p{parallelism}"), |b| {
                b.iter(|| {
                    let ctx = ExecContext::new(store.clone())
                        .with_parallelism(parallelism)
                        .with_footer_cache(cache.clone());
                    execute(&plan, &ctx).unwrap().len()
                })
            });
        }
    }
    g.finish();
}

/// Tracing overhead guard: the same multi-row-group scan + aggregation with
/// tracing disabled (the default — spans must be a true no-op) and enabled
/// (every operator, open, and morsel records a span). The disabled case must
/// match the untraced baseline; the enabled case budgets < 3% overhead.
fn bench_tracing_overhead(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.02);
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(20);

    let sql = "SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(l_quantity) AS qty \
               FROM lineitem GROUP BY l_returnflag, l_linestatus";
    let plan = plan_query(&catalog, "tpch", sql).unwrap();
    let cache = FooterCache::shared();

    g.bench_function("scan_agg/untraced", |b| {
        b.iter(|| {
            let ctx = ExecContext::new(store.clone()).with_footer_cache(cache.clone());
            execute(&plan, &ctx).unwrap().len()
        })
    });
    g.bench_function("scan_agg/disabled_ctx", |b| {
        b.iter(|| {
            // Explicitly attach a disabled context: identical cost to the
            // untraced baseline is the "~0 when disabled" guarantee.
            let ctx = ExecContext::new(store.clone())
                .with_footer_cache(cache.clone())
                .with_trace(TraceCtx::disabled());
            execute(&plan, &ctx).unwrap().len()
        })
    });
    g.bench_function("scan_agg/traced", |b| {
        b.iter(|| {
            let trace = Trace::wall();
            let ctx = ExecContext::new(store.clone())
                .with_footer_cache(cache.clone())
                .with_trace(TraceCtx::root(&trace));
            let n = execute(&plan, &ctx).unwrap().len();
            (n, trace.finished_spans().len())
        })
    });
    // The full layer-two observability path the live server runs per query:
    // tracing plus an SLO record plus a journal append. The gate is < 1%
    // over the traced-only case (EXPERIMENTS.md).
    let slo = pixels_obs::SloTracker::new(
        pixels_obs::WallClock::shared(),
        vec![pixels_obs::SloObjective::new("immediate", 1_000_000)],
    );
    let journal = pixels_obs::QueryJournal::new();
    g.bench_function("scan_agg/traced_slo_journal", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            let trace = Trace::wall();
            let ctx = ExecContext::new(store.clone())
                .with_footer_cache(cache.clone())
                .with_trace(TraceCtx::root(&trace));
            let n = execute(&plan, &ctx).unwrap().len();
            let spans = trace.finished_spans().len();
            let good = slo.record("immediate", 1_000);
            seq += 1;
            journal.append(pixels_obs::JournalEntry {
                query: format!("q-{seq}"),
                tenant: "bench".into(),
                level: "immediate".into(),
                status: "finished".into(),
                admission: "dispatch_now".into(),
                decisions: Vec::new(),
                retries: 0,
                pending_us: 0,
                execution_us: 1_000,
                scan_bytes: 0,
                revenue_dollars: 0.0,
                vm_dollars: 0.0,
                cf_dollars: 0.0,
                provider_cf_dollars: 0.0,
                used_cf: false,
                degraded: false,
                speculative: false,
                slo_good: good,
                slo_threshold_us: 1_000_000,
                trace_spans: spans as u64,
                at_us: 0,
            });
            (n, spans)
        })
    });
    g.finish();
}

/// Vectorized kernels vs the retained scalar reference path, on
/// pre-materialized input so the comparison isolates operator cost from
/// scan cost: join build+probe, multi-aggregate group-by, and the fused
/// conjunction mask vs sequential per-filter passes.
fn bench_vector_kernels(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.01);
    let collect = |sql: &str| -> Vec<RecordBatch> {
        let plan = plan_query(&catalog, "tpch", sql).unwrap();
        let ctx = ExecContext::new(store.clone());
        execute(&plan, &ctx).unwrap()
    };
    // l_orderkey, l_quantity, l_extendedprice, l_discount, l_returnflag
    let lineitem = collect(
        "SELECT l_orderkey, l_quantity, l_extendedprice, l_discount, l_returnflag FROM lineitem",
    );
    // o_orderkey, o_totalprice
    let orders = collect("SELECT o_orderkey, o_totalprice FROM orders");
    let li_rows: u64 = lineitem.iter().map(|b| b.num_rows() as u64).sum();

    let col = |i: usize, ty: DataType| BoundExpr::column(i, ty, format!("c{i}"));
    let cmp = |l: BoundExpr, op: BinaryOp, r: BoundExpr| BoundExpr::BinaryOp {
        left: Box::new(l),
        op,
        right: Box::new(r),
        data_type: DataType::Boolean,
    };

    let mut g = c.benchmark_group("vector_kernels");
    g.sample_size(10);
    g.throughput(Throughput::Elements(li_rows));

    // Hash join: build on orders, probe with lineitem (≈4 lineitems per
    // order), 17 output columns late-materialized.
    let join_schema = Arc::new(Schema::new(
        lineitem[0]
            .schema()
            .fields()
            .iter()
            .chain(orders[0].schema().fields())
            .cloned()
            .collect::<Vec<Field>>(),
    ));
    let left_width = lineitem[0].schema().len();
    let join_args = (vec![col(0, DataType::Int64)], vec![col(0, DataType::Int64)]);
    g.bench_function("join_build_probe/vectorized", |b| {
        b.iter(|| {
            pixels_exec::join::execute_join(
                &lineitem,
                &orders,
                JoinType::Inner,
                &join_args.0,
                &join_args.1,
                None,
                &join_schema,
                left_width,
                8192,
            )
            .unwrap()
            .len()
        })
    });
    g.bench_function("join_build_probe/scalar", |b| {
        b.iter(|| {
            scalar::execute_join(
                &lineitem,
                &orders,
                JoinType::Inner,
                &join_args.0,
                &join_args.1,
                None,
                &join_schema,
                left_width,
                8192,
            )
            .unwrap()
            .len()
        })
    });

    // Group-by: Utf8 group key, COUNT + two SUMs + AVG.
    let group = vec![col(4, DataType::Utf8)];
    let aggs = vec![
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            output_type: DataType::Int64,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(col(1, DataType::Float64)),
            distinct: false,
            output_type: DataType::Float64,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(col(2, DataType::Float64)),
            distinct: false,
            output_type: DataType::Float64,
        },
        AggExpr {
            func: AggFunc::Avg,
            arg: Some(col(3, DataType::Float64)),
            distinct: false,
            output_type: DataType::Float64,
        },
    ];
    let agg_schema = Arc::new(Schema::new(vec![
        Field::required("g", DataType::Utf8),
        Field::required("n", DataType::Int64),
        Field::required("s1", DataType::Float64),
        Field::required("s2", DataType::Float64),
        Field::required("a", DataType::Float64),
    ]));
    g.bench_function("group_by/vectorized", |b| {
        b.iter(|| {
            pixels_exec::aggregate::execute_aggregate(&lineitem, &group, &aggs, &agg_schema, 1)
                .unwrap()
                .len()
        })
    });
    g.bench_function("group_by/scalar", |b| {
        b.iter(|| {
            scalar::execute_aggregate(&lineitem, &group, &aggs, &agg_schema, 1)
                .unwrap()
                .len()
        })
    });

    // Residual filter chain: one fused mask over the original batch vs one
    // mask + materialized batch per conjunct.
    let filters = vec![
        cmp(
            col(1, DataType::Float64),
            BinaryOp::Gt,
            BoundExpr::literal(Value::Float64(10.0)),
        ),
        cmp(
            col(3, DataType::Float64),
            BinaryOp::Lt,
            BoundExpr::literal(Value::Float64(0.08)),
        ),
        cmp(
            col(4, DataType::Utf8),
            BinaryOp::NotEq,
            BoundExpr::literal(Value::Utf8("R".into())),
        ),
    ];
    g.bench_function("fused_filter/fused", |b| {
        b.iter(|| {
            lineitem
                .iter()
                .map(|batch| {
                    pixels_exec::scan::apply_filters(&filters, batch.clone())
                        .unwrap()
                        .num_rows()
                })
                .sum::<usize>()
        })
    });
    g.bench_function("fused_filter/per_filter", |b| {
        b.iter(|| {
            lineitem
                .iter()
                .map(|batch| {
                    scalar::apply_filters(&filters, batch.clone())
                        .unwrap()
                        .num_rows()
                })
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queries,
    bench_operators,
    bench_parallelism,
    bench_tracing_overhead,
    bench_vector_kernels
);
criterion_main!(benches);
