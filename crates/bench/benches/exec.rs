//! Microbenchmarks for the execution engine: predicate evaluation, hash
//! join, hash aggregation, and end-to-end TPC-H-shaped queries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pixels_bench::demo_data;
use pixels_exec::{execute, ExecContext};
use pixels_planner::plan_query;
use pixels_workload::query_by_id;

fn bench_queries(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.002);
    let mut g = c.benchmark_group("tpch_queries");
    g.sample_size(20);
    for id in [
        "q1_pricing_summary",
        "q3_shipping_priority",
        "q6_forecast_revenue",
        "orders_by_status",
        "top_customers",
    ] {
        let q = query_by_id(id).unwrap();
        let plan = plan_query(&catalog, "tpch", q.sql).unwrap();
        g.bench_function(id, |b| {
            b.iter(|| {
                let ctx = ExecContext::new(store.clone());
                execute(&plan, &ctx).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.002);
    let li_rows = catalog
        .get_table("tpch", "lineitem")
        .unwrap()
        .stats
        .row_count;
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(li_rows));
    g.sample_size(20);

    for (name, sql) in [
        (
            "filter_scan",
            "SELECT l_orderkey FROM lineitem WHERE l_quantity > 45",
        ),
        (
            "hash_aggregate",
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
        ),
        (
            "hash_join",
            "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
        ),
        (
            "topk",
            "SELECT l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10",
        ),
        (
            "full_sort",
            "SELECT o_totalprice FROM orders ORDER BY o_totalprice",
        ),
    ] {
        let plan = plan_query(&catalog, "tpch", sql).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctx = ExecContext::new(store.clone());
                execute(&plan, &ctx).unwrap().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries, bench_operators);
criterion_main!(benches);
