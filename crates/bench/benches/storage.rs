//! Microbenchmarks for the Pixels storage layer: encodings, file
//! write/read, and zone-map pruning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pixels_common::{ColumnData, DataType, Field, RecordBatch, Schema, Value};
use pixels_storage::{
    codec::{Reader, Writer},
    encoding, ColumnPredicate, InMemoryObjectStore, PixelsReader, PixelsWriter, PredicateOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const N: usize = 64 * 1024;

fn int_data(runs: bool) -> ColumnData {
    let mut rng = StdRng::seed_from_u64(1);
    if runs {
        ColumnData::Int64((0..N).map(|i| (i / 64) as i64).collect())
    } else {
        ColumnData::Int64((0..N).map(|_| rng.gen_range(0..1_000_000)).collect())
    }
}

fn string_data() -> ColumnData {
    let mut rng = StdRng::seed_from_u64(2);
    ColumnData::Utf8(
        (0..N)
            .map(|_| format!("status-{}", rng.gen_range(0..8)))
            .collect(),
    )
}

fn bench_encodings(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    g.throughput(Throughput::Elements(N as u64));

    let plain_input = int_data(false);
    g.bench_function("plain_encode_i64", |b| {
        b.iter(|| {
            let mut w = Writer::new();
            encoding::encode(&plain_input, encoding::Encoding::Plain, &mut w).unwrap();
            w.len()
        })
    });

    let rle_input = int_data(true);
    g.bench_function("rle_encode_i64_runs", |b| {
        b.iter(|| {
            let mut w = Writer::new();
            encoding::encode(&rle_input, encoding::Encoding::Rle, &mut w).unwrap();
            w.len()
        })
    });

    let dict_input = string_data();
    g.bench_function("dict_encode_strings", |b| {
        b.iter(|| {
            let mut w = Writer::new();
            encoding::encode(&dict_input, encoding::Encoding::Dictionary, &mut w).unwrap();
            w.len()
        })
    });

    // Decodes.
    let mut w = Writer::new();
    encoding::encode(&rle_input, encoding::Encoding::Rle, &mut w).unwrap();
    let rle_bytes = w.into_bytes();
    g.bench_function("rle_decode_i64", |b| {
        b.iter(|| {
            encoding::decode(
                &mut Reader::new(&rle_bytes),
                encoding::Encoding::Rle,
                DataType::Int64,
                N,
            )
            .unwrap()
        })
    });

    let mut w = Writer::new();
    encoding::encode(&dict_input, encoding::Encoding::Dictionary, &mut w).unwrap();
    let dict_bytes = w.into_bytes();
    g.bench_function("dict_decode_strings", |b| {
        b.iter(|| {
            encoding::decode(
                &mut Reader::new(&dict_bytes),
                encoding::Encoding::Dictionary,
                DataType::Utf8,
                N,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn sample_batch(rows: usize) -> (Arc<Schema>, RecordBatch) {
    let schema = Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::required("value", DataType::Float64),
        Field::required("tag", DataType::Utf8),
    ]));
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int64(i as i64),
                Value::Float64(i as f64 * 0.25),
                Value::Utf8(format!("tag{}", i % 16)),
            ]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema.clone(), &data).unwrap();
    (schema, batch)
}

fn bench_file_roundtrip(c: &mut Criterion) {
    let (schema, batch) = sample_batch(32 * 1024);
    let mut g = c.benchmark_group("pixels_file");
    g.throughput(Throughput::Elements(batch.num_rows() as u64));

    g.bench_function("write_32k_rows", |b| {
        b.iter_batched(
            InMemoryObjectStore::new,
            |store| {
                let mut w =
                    PixelsWriter::with_row_group_rows(&store, "t.pxl", schema.clone(), 8192);
                w.write_batch(&batch).unwrap();
                w.finish().unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    let store = InMemoryObjectStore::new();
    let mut w = PixelsWriter::with_row_group_rows(&store, "t.pxl", schema.clone(), 8192);
    w.write_batch(&batch).unwrap();
    w.finish().unwrap();
    g.bench_function("read_32k_rows_full", |b| {
        b.iter(|| {
            let reader = PixelsReader::open(&store, "t.pxl").unwrap();
            reader.read_all(None, &[]).unwrap().len()
        })
    });
    g.bench_function("read_32k_rows_projected", |b| {
        b.iter(|| {
            let reader = PixelsReader::open(&store, "t.pxl").unwrap();
            reader.read_all(Some(&[0]), &[]).unwrap().len()
        })
    });
    g.bench_function("read_32k_rows_zonemap_pruned", |b| {
        let preds = [ColumnPredicate {
            column: 0,
            op: PredicateOp::GtEq,
            value: Value::Int64(31_000),
        }];
        b.iter(|| {
            let reader = PixelsReader::open(&store, "t.pxl").unwrap();
            reader.read_all(None, &preds).unwrap().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encodings, bench_file_roundtrip);
criterion_main!(benches);
