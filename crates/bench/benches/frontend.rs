//! Microbenchmarks for the SQL front-end and the text-to-SQL service:
//! parsing, planning, and single-turn translation latency.

use criterion::{criterion_group, criterion_main, Criterion};
use pixels_bench::demo_data;
use pixels_nl2sql::{CodesService, TextToSqlService};
use pixels_planner::plan_query;
use pixels_sql::parse_statement;
use pixels_workload::query_by_id;

fn bench_parse(c: &mut Criterion) {
    let q1 = query_by_id("q1_pricing_summary").unwrap().sql;
    let q5 = query_by_id("q5_local_supplier_volume").unwrap().sql;
    let mut g = c.benchmark_group("sql_parse");
    g.bench_function("parse_q1", |b| b.iter(|| parse_statement(q1).unwrap()));
    g.bench_function("parse_q5_joins", |b| {
        b.iter(|| parse_statement(q5).unwrap())
    });
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let (catalog, _) = demo_data(0.001);
    let q3 = query_by_id("q3_shipping_priority").unwrap().sql;
    let mut g = c.benchmark_group("planning");
    g.bench_function("plan_q3_full_pipeline", |b| {
        b.iter(|| plan_query(&catalog, "tpch", q3).unwrap())
    });
    g.finish();
}

fn bench_translate(c: &mut Criterion) {
    let (catalog, store) = demo_data(0.001);
    let service = CodesService::new(catalog, store);
    // Warm the translator cache (value index build is one-time).
    service.translate("tpch", "how many orders").unwrap();
    let mut g = c.benchmark_group("nl2sql");
    for (name, q) in [
        ("simple_count", "how many customers are there"),
        (
            "grouped_agg",
            "average total price of orders per order priority",
        ),
        (
            "value_grounded_join",
            "how many orders were placed by customers from France",
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| service.translate("tpch", q).unwrap().sql.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse, bench_plan, bench_translate);
criterion_main!(benches);
