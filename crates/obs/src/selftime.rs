//! Per-operator time attribution: self-time vs. child-time rollups over a
//! finished span forest.
//!
//! A span's *total* time includes everything its children did; its *self*
//! time is the part no child accounts for. The subtlety is that children of
//! one span may run concurrently (cross-thread morsel workers under one
//! `scan` span) and may even outlive their parent (a worker that finishes
//! after the coordinator closed the span). Subtracting child durations
//! naively would double-count overlap and could drive self-time negative, so
//! self-time is defined as
//!
//! ```text
//! self(s) = duration(s) − |union of child intervals ∩ [s.start, s.end]|
//! ```
//!
//! which is non-negative by construction: the clipped union can never exceed
//! the parent's own interval.

use crate::span::SpanData;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Length of `intervals ∪` clipped to `[start, end]`, in microseconds.
fn covered_us(start: u64, end: u64, intervals: &[(u64, u64)]) -> u64 {
    let mut clipped: Vec<(u64, u64)> = intervals
        .iter()
        .map(|&(s, e)| (s.max(start), e.min(end)))
        .filter(|&(s, e)| e > s)
        .collect();
    clipped.sort_unstable();
    let mut total = 0u64;
    let mut cursor = start;
    for (s, e) in clipped {
        let s = s.max(cursor);
        if e > s {
            total += e - s;
            cursor = e;
        }
    }
    total
}

/// Self-time of one span given its children's `(start_us, end_us)` intervals.
/// Never exceeds the span's duration and never underflows.
pub fn span_self_us(span: &SpanData, child_intervals: &[(u64, u64)]) -> u64 {
    span.duration_us()
        .saturating_sub(covered_us(span.start_us, span.end_us, child_intervals))
}

/// Self-time for every span in a finished trace, keyed by span id. Parent
/// links are honoured wherever they point — including across threads — and
/// children whose parent never finished contribute to no one.
pub fn self_times(spans: &[SpanData]) -> BTreeMap<u64, u64> {
    let mut child_intervals: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans {
        if let Some(parent) = s.parent {
            child_intervals
                .entry(parent)
                .or_default()
                .push((s.start_us, s.end_us));
        }
    }
    spans
        .iter()
        .map(|s| {
            let children = child_intervals.get(&s.id).map(Vec::as_slice).unwrap_or(&[]);
            (s.id, span_self_us(s, children))
        })
        .collect()
}

/// Aggregated timing of every span sharing one name ("operator").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorTiming {
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations (includes child time).
    pub total_us: u64,
    /// Sum of self-times (total minus child overlap).
    pub self_us: u64,
}

impl OperatorTiming {
    /// Time attributed to children (overlap with child intervals).
    pub fn child_us(&self) -> u64 {
        self.total_us.saturating_sub(self.self_us)
    }
}

/// Per-operator rollup of a finished trace, hottest self-time first (ties
/// broken by name so the table is deterministic).
pub fn operator_rollup(spans: &[SpanData]) -> Vec<OperatorTiming> {
    let selfs = self_times(spans);
    let mut by_name: BTreeMap<&str, OperatorTiming> = BTreeMap::new();
    for s in spans {
        let t = by_name.entry(&s.name).or_insert_with(|| OperatorTiming {
            name: s.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
        });
        t.count += 1;
        t.total_us += s.duration_us();
        t.self_us += selfs.get(&s.id).copied().unwrap_or(0);
    }
    let mut rollup: Vec<OperatorTiming> = by_name.into_values().collect();
    rollup.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    rollup
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else {
        format!("{:.1}ms", us as f64 / 1e3)
    }
}

/// The `EXPLAIN ANALYZE` attribution table: one row per operator name,
/// hottest self-time first.
pub fn render_operator_table(spans: &[SpanData]) -> String {
    let rollup = operator_rollup(spans);
    let total_self: u64 = rollup.iter().map(|t| t.self_us).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>10} {:>10} {:>10} {:>6}",
        "operator", "calls", "total", "self", "child", "self%"
    );
    for t in &rollup {
        let pct = if total_self == 0 {
            0.0
        } else {
            t.self_us as f64 * 100.0 / total_self as f64
        };
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>10} {:>10} {:>10} {:>5.1}%",
            t.name,
            t.count,
            fmt_us(t.total_us),
            fmt_us(t.self_us),
            fmt_us(t.child_us()),
            pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanData {
        SpanData {
            id,
            parent,
            name: name.into(),
            start_us: start,
            end_us: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_child_union_not_sum() {
        // Two children overlap on [20, 40): subtracting durations would
        // charge the overlap twice.
        let spans = vec![
            span(1, None, "parent", 0, 100),
            span(2, Some(1), "child", 10, 40),
            span(3, Some(1), "child", 20, 60),
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[&1], 100 - 50); // union [10,60) = 50
        assert_eq!(selfs[&2], 30);
        assert_eq!(selfs[&3], 40);
    }

    #[test]
    fn child_outliving_parent_is_clipped() {
        let spans = vec![
            span(1, None, "parent", 0, 50),
            span(2, Some(1), "child", 40, 200),
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[&1], 40, "only the in-window overlap is charged");
        assert_eq!(selfs[&2], 160);
    }

    #[test]
    fn children_covering_more_than_parent_never_go_negative() {
        // Concurrent children whose summed durations (120) exceed the
        // parent's own duration (50).
        let spans = vec![
            span(1, None, "parent", 10, 60),
            span(2, Some(1), "w", 0, 60),
            span(3, Some(1), "w", 10, 70),
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[&1], 0);
    }

    #[test]
    fn zero_duration_spans_are_harmless() {
        let spans = vec![
            span(1, None, "parent", 5, 5),
            span(2, Some(1), "child", 5, 5),
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[&1], 0);
        assert_eq!(selfs[&2], 0);
    }

    #[test]
    fn rollup_orders_by_self_time_and_renders() {
        let spans = vec![
            span(1, None, "query", 0, 100),
            span(2, Some(1), "scan", 0, 90),
            span(3, Some(2), "morsel", 0, 40),
            span(4, Some(2), "morsel", 50, 90),
        ];
        let rollup = operator_rollup(&spans);
        assert_eq!(rollup[0].name, "morsel");
        assert_eq!(rollup[0].count, 2);
        assert_eq!(rollup[0].self_us, 80);
        let scan = rollup.iter().find(|t| t.name == "scan").unwrap();
        assert_eq!(scan.self_us, 10);
        assert_eq!(scan.child_us(), 80);
        let query = rollup.iter().find(|t| t.name == "query").unwrap();
        assert_eq!(query.self_us, 10);
        let table = render_operator_table(&spans);
        assert!(table.contains("operator"), "{table}");
        assert!(table.contains("morsel"), "{table}");
        // Self-times always partition the wall time: Σ self == root span.
        let total: u64 = rollup.iter().map(|t| t.self_us).sum();
        assert_eq!(total, 100);
    }
}
