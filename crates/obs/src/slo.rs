//! Per-service-level latency SLOs with sliding-window burn rates.
//!
//! Each service level carries one latency objective (a pending-time
//! threshold in microseconds, derived by the server from the scheduler's own
//! admission bounds — see `SchedulerPolicy::slo_objectives`). Every finished
//! query is one *event*: good if it met the threshold, a violation
//! otherwise. The tracker keeps totals plus a sliding window of recent
//! events and reports SRE-style burn rates over multiple look-back windows:
//!
//! ```text
//! burn(window) = violation_fraction(window) / error_budget
//! ```
//!
//! A burn rate of 1.0 means the level is consuming its error budget exactly
//! as fast as it accrues; 14.4 (the classic 1h page threshold for a 30-day
//! SLO) means the budget would be gone in ~2 days. Time comes from the
//! [`Clock`](crate::Clock) trait, so the live server (wall clock) and the
//! simulator (virtual clock) share this implementation verbatim.

use crate::clock::ClockRef;
use crate::registry::MetricsRegistry;
use parking_lot::Mutex;
use pixels_common::Json;
use std::collections::{BTreeMap, VecDeque};

/// One level's latency objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloObjective {
    /// Service-level name as used in metric labels (e.g. "relaxed").
    pub level: String,
    /// Pending-time threshold in microseconds; a query whose pending time
    /// exceeds this is an SLO violation.
    pub threshold_us: u64,
}

impl SloObjective {
    pub fn new(level: impl Into<String>, threshold_us: u64) -> SloObjective {
        SloObjective {
            level: level.into(),
            threshold_us,
        }
    }
}

/// Burn-rate look-back windows: (label, width in microseconds).
pub const DEFAULT_WINDOWS: &[(&str, u64)] = &[("5m", 300_000_000), ("1h", 3_600_000_000)];

/// Default error budget: 1% of events may violate before burn = 1.0.
pub const DEFAULT_ERROR_BUDGET: f64 = 0.01;

struct LevelState {
    threshold_us: u64,
    good_total: u64,
    violation_total: u64,
    /// Recent events, oldest first: (event time, was_good). Pruned to the
    /// widest burn window on every record.
    events: VecDeque<(u64, bool)>,
    /// Counter values already pushed to a registry (export publishes deltas
    /// so repeated scrapes stay monotonic).
    published_good: u64,
    published_violation: u64,
}

impl LevelState {
    fn window_fractions(&self, now_us: u64, windows: &[(String, u64)]) -> Vec<(String, f64)> {
        windows
            .iter()
            .map(|(label, width)| {
                let cutoff = now_us.saturating_sub(*width);
                let mut good = 0u64;
                let mut bad = 0u64;
                for &(at, was_good) in self.events.iter().rev() {
                    if at < cutoff {
                        break;
                    }
                    if was_good {
                        good += 1;
                    } else {
                        bad += 1;
                    }
                }
                let total = good + bad;
                let frac = if total == 0 {
                    0.0
                } else {
                    bad as f64 / total as f64
                };
                (label.clone(), frac)
            })
            .collect()
    }
}

/// The SLO tracker: per-level good/violation accounting plus burn rates.
pub struct SloTracker {
    clock: ClockRef,
    windows: Vec<(String, u64)>,
    error_budget: f64,
    levels: Mutex<BTreeMap<String, LevelState>>,
}

impl SloTracker {
    /// A tracker with the default windows and error budget.
    pub fn new(clock: ClockRef, objectives: Vec<SloObjective>) -> SloTracker {
        SloTracker::with_windows(
            clock,
            objectives,
            DEFAULT_WINDOWS
                .iter()
                .map(|(l, w)| (l.to_string(), *w))
                .collect(),
            DEFAULT_ERROR_BUDGET,
        )
    }

    pub fn with_windows(
        clock: ClockRef,
        objectives: Vec<SloObjective>,
        windows: Vec<(String, u64)>,
        error_budget: f64,
    ) -> SloTracker {
        let levels = objectives
            .into_iter()
            .map(|o| {
                (
                    o.level,
                    LevelState {
                        threshold_us: o.threshold_us,
                        good_total: 0,
                        violation_total: 0,
                        events: VecDeque::new(),
                        published_good: 0,
                        published_violation: 0,
                    },
                )
            })
            .collect();
        SloTracker {
            clock,
            windows,
            error_budget,
            levels: Mutex::new(levels),
        }
    }

    /// The configured threshold for a level, if one exists.
    pub fn threshold_us(&self, level: &str) -> Option<u64> {
        self.levels.lock().get(level).map(|s| s.threshold_us)
    }

    /// Record one finished query at the clock's current time. Returns
    /// whether the event was good. Unknown levels are ignored (reported
    /// good) so callers never have to pre-check the objective set.
    pub fn record(&self, level: &str, latency_us: u64) -> bool {
        let now = self.clock.now_micros();
        self.record_at(level, latency_us, now)
    }

    /// Record one finished query at an explicit event time — the simulator's
    /// path, where events carry their own virtual timestamps.
    pub fn record_at(&self, level: &str, latency_us: u64, at_us: u64) -> bool {
        let max_window = self.windows.iter().map(|(_, w)| *w).max().unwrap_or(0);
        let mut levels = self.levels.lock();
        let Some(state) = levels.get_mut(level) else {
            return true;
        };
        let good = latency_us <= state.threshold_us;
        if good {
            state.good_total += 1;
        } else {
            state.violation_total += 1;
        }
        state.events.push_back((at_us, good));
        let cutoff = at_us.saturating_sub(max_window);
        while state.events.front().is_some_and(|&(at, _)| at < cutoff) {
            state.events.pop_front();
        }
        good
    }

    /// Publish to a metrics registry: monotonic good/violation counters per
    /// level, burn-rate gauges per (level, window), and the threshold as a
    /// gauge so dashboards can label the objective they're plotting.
    pub fn export(&self, registry: &MetricsRegistry) {
        let now = self.clock.now_micros();
        let mut levels = self.levels.lock();
        for (level, state) in levels.iter_mut() {
            let good = registry.counter_with(
                "pixels_slo_good_total",
                "Queries that met their service-level latency objective.",
                &[("level", level)],
            );
            good.add(state.good_total - state.published_good);
            state.published_good = state.good_total;
            let bad = registry.counter_with(
                "pixels_slo_violation_total",
                "Queries that violated their service-level latency objective.",
                &[("level", level)],
            );
            bad.add(state.violation_total - state.published_violation);
            state.published_violation = state.violation_total;
            registry
                .gauge_with(
                    "pixels_slo_threshold_seconds",
                    "Latency objective per service level, in seconds.",
                    &[("level", level)],
                )
                .set(state.threshold_us as f64 / 1e6);
            for (window, frac) in state.window_fractions(now, &self.windows) {
                registry
                    .gauge_with(
                        "pixels_slo_burn_rate",
                        "Error-budget burn rate (violation fraction / budget) per window.",
                        &[("level", level), ("window", &window)],
                    )
                    .set(frac / self.error_budget);
            }
        }
    }

    /// The `GET /slo` payload: per-level totals, threshold, and burn rates.
    pub fn to_json(&self) -> Json {
        let now = self.clock.now_micros();
        let levels = self.levels.lock();
        let entries = levels.iter().map(|(level, state)| {
            let burns = Json::Object(
                state
                    .window_fractions(now, &self.windows)
                    .into_iter()
                    .map(|(w, frac)| (w, Json::number(frac / self.error_budget)))
                    .collect(),
            );
            (
                level.clone(),
                Json::object([
                    (
                        "threshold_seconds",
                        Json::number(state.threshold_us as f64 / 1e6),
                    ),
                    ("good_total", Json::number(state.good_total as f64)),
                    (
                        "violation_total",
                        Json::number(state.violation_total as f64),
                    ),
                    ("burn_rate", burns),
                ]),
            )
        });
        Json::object([
            ("error_budget", Json::number(self.error_budget)),
            ("levels", Json::Object(entries.collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::sync::Arc;

    fn tracker(clock: Arc<SimClock>) -> SloTracker {
        SloTracker::new(
            clock,
            vec![
                SloObjective::new("immediate", 1_000_000),
                SloObjective::new("relaxed", 300_000_000),
            ],
        )
    }

    #[test]
    fn classifies_against_threshold() {
        let clock = SimClock::shared();
        let t = tracker(clock.clone());
        assert!(t.record("immediate", 500_000));
        assert!(!t.record("immediate", 2_000_000));
        assert!(t.record("relaxed", 2_000_000));
        assert!(t.record("unknown_level", u64::MAX), "unknown level ignored");
        let json = t.to_json();
        let imm = json.get("levels").unwrap().get("immediate").unwrap();
        assert_eq!(imm.get("good_total").unwrap().as_i64(), Some(1));
        assert_eq!(imm.get("violation_total").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn burn_rate_windows_slide_with_the_clock() {
        let clock = SimClock::shared();
        let t = tracker(clock.clone());
        // Ten violations at t=0: every window sees 100% bad → burn 1/0.01.
        for _ in 0..10 {
            t.record("immediate", u64::MAX);
        }
        let burn = |t: &SloTracker, w: &str| {
            t.to_json()
                .get("levels")
                .unwrap()
                .get("immediate")
                .unwrap()
                .get("burn_rate")
                .unwrap()
                .get(w)
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(burn(&t, "5m"), 100.0);
        assert_eq!(burn(&t, "1h"), 100.0);
        // 10 virtual minutes later the 5m window is clean, the 1h one not.
        clock.set_micros(600_000_000);
        t.record("immediate", 1);
        assert_eq!(burn(&t, "5m"), 0.0);
        assert!(burn(&t, "1h") > 0.0);
        // Past the widest window everything ages out.
        clock.set_micros(4_300_000_000);
        t.record("immediate", 1);
        assert_eq!(burn(&t, "1h"), 0.0);
    }

    #[test]
    fn export_is_monotonic_across_scrapes() {
        let clock = SimClock::shared();
        let t = tracker(clock);
        let r = MetricsRegistry::new();
        t.record("relaxed", 1);
        t.export(&r);
        t.record("relaxed", 1);
        t.record("relaxed", u64::MAX);
        t.export(&r);
        t.export(&r); // scrape with no new events must not move counters
        let text = r.render();
        assert!(
            text.contains("pixels_slo_good_total{level=\"relaxed\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pixels_slo_violation_total{level=\"relaxed\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pixels_slo_threshold_seconds{level=\"immediate\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pixels_slo_burn_rate{level=\"relaxed\",window=\"5m\"}"),
            "{text}"
        );
    }

    #[test]
    fn zero_events_exports_all_families() {
        let clock = SimClock::shared();
        let t = tracker(clock);
        let r = MetricsRegistry::new();
        t.export(&r);
        let text = r.render();
        for family in [
            "pixels_slo_good_total",
            "pixels_slo_violation_total",
            "pixels_slo_burn_rate",
            "pixels_slo_threshold_seconds",
        ] {
            assert!(text.contains(family), "missing {family} in {text}");
        }
    }
}
