//! The structured query journal: one JSON-lines lifecycle record per
//! terminal query.
//!
//! Every query that reaches a terminal state appends exactly one
//! [`JournalEntry`] capturing what the scheduler decided (admission, policy
//! decisions, retries), what it cost (the ledger figures), and how it scored
//! against its SLO. The journal is the system of record the registry is a
//! *view* of: [`replay`] recomputes the aggregate metrics from the journal
//! alone, and [`ReplayAggregates::diff_against_exposition`] diffs them
//! against a live `/metrics` scrape — any mismatch means a query bypassed
//! the journal or the metrics pipeline double-counted.

use parking_lot::Mutex;
use pixels_common::{Error, Json, Result};
use std::collections::BTreeMap;

/// One terminal query's lifecycle record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    pub query: String,
    pub tenant: String,
    pub level: String,
    /// Terminal status: "finished" or "failed".
    pub status: String,
    /// How the scheduler admitted the query: "dispatch_now", "queued", or
    /// "forced" (queued past its deadline and force-started).
    pub admission: String,
    /// Policy-core decisions taken during execution, rendered as text.
    pub decisions: Vec<String>,
    pub retries: u64,
    pub pending_us: u64,
    pub execution_us: u64,
    pub scan_bytes: u64,
    pub revenue_dollars: f64,
    pub vm_dollars: f64,
    pub cf_dollars: f64,
    pub provider_cf_dollars: f64,
    pub used_cf: bool,
    pub degraded: bool,
    pub speculative: bool,
    /// Whether the query met its service-level objective.
    pub slo_good: bool,
    /// The objective it was judged against (0 when the level has none).
    pub slo_threshold_us: u64,
    /// Spans in the query's trace (0 when tracing was off).
    pub trace_spans: u64,
    pub at_us: u64,
}

impl JournalEntry {
    pub fn to_json(&self) -> Json {
        Json::object([
            ("query", Json::string(self.query.clone())),
            ("tenant", Json::string(self.tenant.clone())),
            ("level", Json::string(self.level.clone())),
            ("status", Json::string(self.status.clone())),
            ("admission", Json::string(self.admission.clone())),
            (
                "decisions",
                Json::array(self.decisions.iter().map(|d| Json::string(d.clone()))),
            ),
            ("retries", Json::number(self.retries as f64)),
            ("pending_us", Json::number(self.pending_us as f64)),
            ("execution_us", Json::number(self.execution_us as f64)),
            ("scan_bytes", Json::number(self.scan_bytes as f64)),
            ("revenue_dollars", Json::number(self.revenue_dollars)),
            ("vm_dollars", Json::number(self.vm_dollars)),
            ("cf_dollars", Json::number(self.cf_dollars)),
            (
                "provider_cf_dollars",
                Json::number(self.provider_cf_dollars),
            ),
            ("used_cf", Json::Bool(self.used_cf)),
            ("degraded", Json::Bool(self.degraded)),
            ("speculative", Json::Bool(self.speculative)),
            ("slo_good", Json::Bool(self.slo_good)),
            (
                "slo_threshold_us",
                Json::number(self.slo_threshold_us as f64),
            ),
            ("trace_spans", Json::number(self.trace_spans as f64)),
            ("at_us", Json::number(self.at_us as f64)),
        ])
    }

    pub fn from_json(json: &Json) -> Result<JournalEntry> {
        fn s(json: &Json, key: &str) -> Result<String> {
            json.get_or_err(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::Invalid(format!("journal field {key}: expected string")))
        }
        fn u(json: &Json, key: &str) -> Result<u64> {
            json.get_or_err(key)?
                .as_f64()
                .filter(|v| *v >= 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| Error::Invalid(format!("journal field {key}: expected number")))
        }
        fn f(json: &Json, key: &str) -> Result<f64> {
            json.get_or_err(key)?
                .as_f64()
                .ok_or_else(|| Error::Invalid(format!("journal field {key}: expected number")))
        }
        fn b(json: &Json, key: &str) -> Result<bool> {
            json.get_or_err(key)?
                .as_bool()
                .ok_or_else(|| Error::Invalid(format!("journal field {key}: expected bool")))
        }
        let decisions = json
            .get_or_err("decisions")?
            .as_array()
            .ok_or_else(|| Error::Invalid("journal field decisions: expected array".into()))?
            .iter()
            .map(|d| {
                d.as_str().map(str::to_string).ok_or_else(|| {
                    Error::Invalid("journal field decisions: expected strings".into())
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(JournalEntry {
            query: s(json, "query")?,
            tenant: s(json, "tenant")?,
            level: s(json, "level")?,
            status: s(json, "status")?,
            admission: s(json, "admission")?,
            decisions,
            retries: u(json, "retries")?,
            pending_us: u(json, "pending_us")?,
            execution_us: u(json, "execution_us")?,
            scan_bytes: u(json, "scan_bytes")?,
            revenue_dollars: f(json, "revenue_dollars")?,
            vm_dollars: f(json, "vm_dollars")?,
            cf_dollars: f(json, "cf_dollars")?,
            provider_cf_dollars: f(json, "provider_cf_dollars")?,
            used_cf: b(json, "used_cf")?,
            degraded: b(json, "degraded")?,
            speculative: b(json, "speculative")?,
            slo_good: b(json, "slo_good")?,
            slo_threshold_us: u(json, "slo_threshold_us")?,
            trace_spans: u(json, "trace_spans")?,
            at_us: u(json, "at_us")?,
        })
    }
}

/// The append-only journal.
#[derive(Default)]
pub struct QueryJournal {
    entries: Mutex<Vec<JournalEntry>>,
}

impl QueryJournal {
    pub fn new() -> QueryJournal {
        QueryJournal::default()
    }

    pub fn append(&self, entry: JournalEntry) {
        self.entries.lock().push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().clone()
    }

    /// The `GET /journal` payload: one compact JSON object per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.entries.lock().iter() {
            out.push_str(&e.to_json().to_compact_string());
            out.push('\n');
        }
        out
    }

    /// Parse a JSON-lines journal back into entries (blank lines skipped).
    pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEntry>> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| JournalEntry::from_json(&Json::parse(l)?))
            .collect()
    }
}

/// Aggregates recomputed from journal entries alone — the journal-side half
/// of the registry diff.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayAggregates {
    /// (level, status) → query count; mirrors `pixels_queries_total`.
    pub queries: BTreeMap<(String, String), u64>,
    /// level → good events; mirrors `pixels_slo_good_total`.
    pub slo_good: BTreeMap<String, u64>,
    /// level → violations; mirrors `pixels_slo_violation_total`.
    pub slo_violation: BTreeMap<String, u64>,
    /// level → ledger entries (finished queries only); mirrors
    /// `pixels_ledger_entries_total`.
    pub ledger_entries: BTreeMap<String, u64>,
    /// level → revenue, summed in journal order; mirrors
    /// `pixels_ledger_revenue_dollars`.
    pub revenue_dollars: BTreeMap<String, f64>,
}

/// Recompute registry aggregates from journal entries. Revenue is summed in
/// journal order, which is ledger append order, so the result matches the
/// ledger bit-for-bit.
pub fn replay(entries: &[JournalEntry]) -> ReplayAggregates {
    let mut agg = ReplayAggregates::default();
    for e in entries {
        *agg.queries
            .entry((e.level.clone(), e.status.clone()))
            .or_insert(0) += 1;
        let slo_bucket = if e.slo_good {
            &mut agg.slo_good
        } else {
            &mut agg.slo_violation
        };
        *slo_bucket.entry(e.level.clone()).or_insert(0) += 1;
        if e.status == "finished" {
            *agg.ledger_entries.entry(e.level.clone()).or_insert(0) += 1;
            *agg.revenue_dollars.entry(e.level.clone()).or_insert(0.0) += e.revenue_dollars;
        }
    }
    agg
}

/// Every sample of one metric family in a rendered exposition, as
/// (label map, value) pairs. Assumes registry-rendered text (labels contain
/// no escapes — true for every family the replay checks).
fn family_samples(text: &str, family: &str) -> Vec<(BTreeMap<String, String>, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(family) else {
            continue;
        };
        let (labels_part, value_part) = if let Some(rest) = rest.strip_prefix('{') {
            match rest.split_once('}') {
                Some((l, v)) => (l, v),
                None => continue,
            }
        } else if rest.starts_with(' ') {
            ("", rest)
        } else {
            continue; // longer family name sharing this prefix
        };
        let Ok(value) = value_part.trim().parse::<f64>() else {
            continue;
        };
        let mut labels = BTreeMap::new();
        for pair in labels_part.split(',').filter(|p| !p.is_empty()) {
            if let Some((k, v)) = pair.split_once('=') {
                labels.insert(k.to_string(), v.trim_matches('"').to_string());
            }
        }
        out.push((labels, value));
    }
    out
}

impl ReplayAggregates {
    /// Diff these journal-derived aggregates against a `/metrics` scrape.
    /// Returns one human-readable line per mismatch; empty means the journal
    /// reproduces the registry exactly. Counters compare as integers,
    /// dollars bit-for-bit.
    pub fn diff_against_exposition(&self, text: &str) -> Vec<String> {
        let mut diffs = Vec::new();
        let mut check_counts = |family: &str,
                                label_of: &dyn Fn(&BTreeMap<String, String>) -> Option<String>,
                                expected: &BTreeMap<String, u64>| {
            let mut seen: BTreeMap<String, u64> = BTreeMap::new();
            for (labels, value) in family_samples(text, family) {
                let Some(key) = label_of(&labels) else {
                    continue;
                };
                seen.insert(key, value as u64);
            }
            for (key, want) in expected {
                match seen.get(key) {
                    Some(got) if got == want => {}
                    Some(got) => diffs.push(format!(
                        "{family}[{key}]: journal says {want}, registry says {got}"
                    )),
                    None => diffs.push(format!(
                        "{family}[{key}]: journal says {want}, registry has no series"
                    )),
                }
            }
            for (key, got) in &seen {
                if !expected.contains_key(key) && *got != 0 {
                    diffs.push(format!(
                        "{family}[{key}]: registry says {got}, journal has no entries"
                    ));
                }
            }
        };
        let by_level_status = |labels: &BTreeMap<String, String>| -> Option<String> {
            Some(format!(
                "{}/{}",
                labels.get("level")?,
                labels.get("status")?
            ))
        };
        let by_level = |labels: &BTreeMap<String, String>| -> Option<String> {
            let level = labels.get("level")?;
            (level != "all").then(|| level.clone())
        };
        let queries: BTreeMap<String, u64> = self
            .queries
            .iter()
            .map(|((l, s), n)| (format!("{l}/{s}"), *n))
            .collect();
        check_counts("pixels_queries_total", &by_level_status, &queries);
        check_counts("pixels_slo_good_total", &by_level, &self.slo_good);
        check_counts("pixels_slo_violation_total", &by_level, &self.slo_violation);
        check_counts(
            "pixels_ledger_entries_total",
            &by_level,
            &self.ledger_entries,
        );
        // Revenue gauges: bit-for-bit. The "all" series folds the per-level
        // sums in sorted level order — replicate that fold here.
        let mut want_revenue = self.revenue_dollars.clone();
        want_revenue.insert("all".into(), self.revenue_dollars.values().sum());
        for (labels, got) in family_samples(text, "pixels_ledger_revenue_dollars") {
            let Some(level) = labels.get("level") else {
                continue;
            };
            let want = want_revenue.get(level).copied().unwrap_or(0.0);
            if got.to_bits() != want.to_bits() {
                diffs.push(format!(
                    "pixels_ledger_revenue_dollars[{level}]: journal says {want}, registry says {got}"
                ));
            }
        }
        diffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(level: &str, status: &str, slo_good: bool, revenue: f64) -> JournalEntry {
        JournalEntry {
            query: "q-1".into(),
            tenant: "default".into(),
            level: level.into(),
            status: status.into(),
            admission: "queued".into(),
            decisions: vec!["dispatch cf".into()],
            retries: 1,
            pending_us: 42,
            execution_us: 1000,
            scan_bytes: 4096,
            revenue_dollars: revenue,
            vm_dollars: 0.0,
            cf_dollars: 0.001,
            provider_cf_dollars: 0.001,
            used_cf: true,
            degraded: false,
            speculative: false,
            slo_good,
            slo_threshold_us: 300_000_000,
            trace_spans: 5,
            at_us: 99,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let j = QueryJournal::new();
        j.append(entry("relaxed", "finished", true, 0.25));
        j.append(entry("immediate", "failed", false, 0.0));
        let text = j.render_jsonl();
        assert_eq!(text.lines().count(), 2);
        let parsed = QueryJournal::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, j.entries());
    }

    #[test]
    fn replay_aggregates_by_level_status_and_slo() {
        let entries = vec![
            entry("relaxed", "finished", true, 0.1),
            entry("relaxed", "finished", false, 0.2),
            entry("relaxed", "failed", false, 0.0),
            entry("immediate", "finished", true, 1.0),
        ];
        let agg = replay(&entries);
        assert_eq!(agg.queries[&("relaxed".into(), "finished".into())], 2);
        assert_eq!(agg.queries[&("relaxed".into(), "failed".into())], 1);
        assert_eq!(agg.slo_good["relaxed"], 1);
        assert_eq!(agg.slo_violation["relaxed"], 2);
        assert_eq!(agg.ledger_entries["relaxed"], 2, "failed ⇒ no ledger entry");
        assert_eq!(
            agg.revenue_dollars["relaxed"].to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn diff_catches_registry_drift() {
        let entries = vec![entry("relaxed", "finished", true, 0.25)];
        let agg = replay(&entries);
        let good = "pixels_queries_total{level=\"relaxed\",status=\"finished\"} 1\n\
                    pixels_slo_good_total{level=\"relaxed\"} 1\n\
                    pixels_slo_violation_total{level=\"relaxed\"} 0\n\
                    pixels_ledger_entries_total{level=\"all\"} 1\n\
                    pixels_ledger_entries_total{level=\"relaxed\"} 1\n\
                    pixels_ledger_revenue_dollars{level=\"all\"} 0.25\n\
                    pixels_ledger_revenue_dollars{level=\"relaxed\"} 0.25\n";
        assert_eq!(agg.diff_against_exposition(good), Vec::<String>::new());
        let drifted = good.replace(
            "pixels_queries_total{level=\"relaxed\",status=\"finished\"} 1",
            "pixels_queries_total{level=\"relaxed\",status=\"finished\"} 2",
        );
        let diffs = agg.diff_against_exposition(&drifted);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("pixels_queries_total"), "{diffs:?}");
        // A registry series the journal can't explain is also a diff.
        let phantom = format!("{good}pixels_slo_good_total{{level=\"best_effort\"}} 3\n");
        assert!(!agg.diff_against_exposition(&phantom).is_empty());
    }
}
