//! `pixels-obs` — observability for PixelsDB: end-to-end query tracing, a
//! unified metrics registry, and Prometheus text exposition.
//!
//! The paper's flexible service levels and per-query prices only work if the
//! system can account for *where* a query's time and bytes went — VM vs. CF,
//! queue wait vs. scan vs. shuffle. This crate provides the three pieces
//! every other crate instruments itself with:
//!
//! - **Tracing** ([`Trace`], [`TraceCtx`], [`Span`]): per-query span trees
//!   with parent links and typed attributes, stamped by a pluggable
//!   [`Clock`] so real execution (wall time) and the discrete-event
//!   simulator ([`SimClock`], virtual time) produce one coherent trace
//!   format. Disabled tracing is a no-op — no allocation, no locking.
//! - **Metrics** ([`MetricsRegistry`]): named counters (sharded for morsel
//!   workers), gauges, and histograms with labels, absorbed from exec
//!   metrics, storage accounting, cache stats, and scheduler state.
//! - **Exposition** ([`MetricsRegistry::render`],
//!   [`prometheus::validate_exposition`]): the `/metrics` text format plus a
//!   validator used by tests and CI.
//!
//! No external dependencies: like the rest of the workspace this builds
//! fully offline against the in-tree shims.

pub mod clock;
pub mod prometheus;
pub mod registry;
pub mod span;

pub use clock::{Clock, ClockRef, SimClock, WallClock};
pub use prometheus::{require_families, validate_exposition};
pub use registry::{Counter, Gauge, Histogram, MetricKind, MetricsRegistry};
pub use span::{AttrValue, Span, SpanData, Trace, TraceCtx};
