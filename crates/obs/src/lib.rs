//! `pixels-obs` — observability for PixelsDB: end-to-end query tracing, a
//! unified metrics registry, and Prometheus text exposition.
//!
//! The paper's flexible service levels and per-query prices only work if the
//! system can account for *where* a query's time and bytes went — VM vs. CF,
//! queue wait vs. scan vs. shuffle. This crate provides the three pieces
//! every other crate instruments itself with:
//!
//! - **Tracing** ([`Trace`], [`TraceCtx`], [`Span`]): per-query span trees
//!   with parent links and typed attributes, stamped by a pluggable
//!   [`Clock`] so real execution (wall time) and the discrete-event
//!   simulator ([`SimClock`], virtual time) produce one coherent trace
//!   format. Disabled tracing is a no-op — no allocation, no locking.
//! - **Metrics** ([`MetricsRegistry`]): named counters (sharded for morsel
//!   workers), gauges, and histograms with labels, absorbed from exec
//!   metrics, storage accounting, cache stats, and scheduler state.
//! - **Exposition** ([`MetricsRegistry::render`],
//!   [`prometheus::validate_exposition`]): the `/metrics` text format plus a
//!   validator used by tests and CI.
//!
//! Layer two turns those raw signals into the operator-facing economics of
//! the paper — are deadlines being met, and at what cost?
//!
//! - **SLOs** ([`SloTracker`]): per-service-level latency objectives with
//!   sliding-window burn rates, clock-driven so server and simulator share
//!   one implementation.
//! - **Economics** ([`Ledger`]): one append-only entry per query tying user
//!   revenue to provider CF/VM spend and speculation waste, reconciling
//!   bit-for-bit with billing and the policy core.
//! - **Journal** ([`QueryJournal`]): a JSON-lines lifecycle record per query;
//!   [`journal::replay`] recomputes registry aggregates from it alone.
//! - **Attribution** ([`selftime`]): self- vs. child-time rollups over the
//!   span tree, surfaced in query profiles and `EXPLAIN ANALYZE`.
//!
//! No external dependencies: like the rest of the workspace this builds
//! fully offline against the in-tree shims.

pub mod clock;
pub mod journal;
pub mod ledger;
pub mod prometheus;
pub mod registry;
pub mod selftime;
pub mod slo;
pub mod span;

pub use clock::{Clock, ClockRef, SimClock, WallClock};
pub use journal::{JournalEntry, QueryJournal, ReplayAggregates};
pub use ledger::{Ledger, LedgerEntry, LedgerSummary};
pub use prometheus::{require_families, validate_exposition};
pub use registry::{Counter, Gauge, Histogram, MetricKind, MetricsRegistry};
pub use selftime::{operator_rollup, render_operator_table, OperatorTiming};
pub use slo::{SloObjective, SloTracker};
pub use span::{AttrValue, Span, SpanData, Trace, TraceCtx};
