//! Lightweight spans: the per-query trace.
//!
//! A [`Trace`] collects [`SpanData`] records describing where one query's
//! time and bytes went — scheduler wait, tier dispatch, each exec operator,
//! each storage open and morsel read. Spans carry parent links, so a
//! finished trace reassembles into one tree ("the query profile") that is
//! rendered as JSON for the server API or as indented text for
//! `EXPLAIN ANALYZE`.
//!
//! Tracing is opt-in per query and designed to cost nothing when off: a
//! disabled [`TraceCtx`] hands out inert [`Span`]s whose every method is an
//! early return, with no allocation, clock read, or locking.

use crate::clock::{ClockRef, WallClock};
use parking_lot::Mutex;
use pixels_common::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl AttrValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::U64(v) => Some(*v as f64),
            AttrValue::F64(v) => Some(*v),
            AttrValue::Str(_) => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            AttrValue::U64(v) => Json::number(*v as f64),
            AttrValue::F64(v) => Json::number(*v),
            AttrValue::Str(s) => Json::string(s.clone()),
        }
    }
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanData {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanData {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A per-query trace: a clock plus the spans finished so far.
pub struct Trace {
    clock: ClockRef,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanData>>,
}

impl Trace {
    /// A trace on its own monotonic wall clock (origin = trace creation).
    pub fn wall() -> Arc<Trace> {
        Trace::with_clock(WallClock::shared())
    }

    /// A trace stamped by an external clock — e.g. a [`crate::SimClock`]
    /// advanced by the simulator, so the trace reads in virtual time.
    pub fn with_clock(clock: ClockRef) -> Arc<Trace> {
        Arc::new(Trace {
            clock,
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        })
    }

    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// All spans finished so far (finish order, not tree order).
    pub fn finished_spans(&self) -> Vec<SpanData> {
        self.spans.lock().clone()
    }

    /// Sum of a numeric attribute over every finished span — e.g. the total
    /// `bytes` attributed across storage opens and morsel reads, which must
    /// reconcile with `bytes_scanned` billing.
    pub fn attr_sum(&self, key: &str) -> f64 {
        self.spans
            .lock()
            .iter()
            .filter_map(|s| s.attr(key).and_then(|v| v.as_f64()))
            .sum()
    }

    /// The span tree as JSON: a list of roots, each
    /// `{"name","start_us","duration_us","self_us","attrs":{...},"children":[...]}`.
    /// `self_us` is the span's duration minus the union of its children's
    /// intervals (see [`crate::selftime`]).
    pub fn to_json(&self) -> Json {
        let spans = self.finished_spans();
        let selfs = crate::selftime::self_times(&spans);
        let forest = assemble(&spans);
        Json::array(forest.iter().map(|n| n.to_json(&selfs)))
    }

    /// The span tree as indented text (one span per line), for
    /// `EXPLAIN ANALYZE` and terminal clients.
    pub fn render_text(&self) -> String {
        let spans = self.finished_spans();
        let forest = assemble(&spans);
        let mut out = String::new();
        for root in &forest {
            root.render(&mut out, 0);
        }
        out
    }
}

/// A node of the reassembled span tree.
struct TreeNode<'a> {
    span: &'a SpanData,
    children: Vec<TreeNode<'a>>,
}

impl TreeNode<'_> {
    fn to_json(&self, selfs: &BTreeMap<u64, u64>) -> Json {
        let self_us = selfs
            .get(&self.span.id)
            .copied()
            .unwrap_or_else(|| self.span.duration_us());
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::string(self.span.name.clone())),
            ("start_us".into(), Json::number(self.span.start_us as f64)),
            (
                "duration_us".into(),
                Json::number(self.span.duration_us() as f64),
            ),
            ("self_us".into(), Json::number(self_us as f64)),
        ];
        if !self.span.attrs.is_empty() {
            fields.push((
                "attrs".into(),
                Json::Object(
                    self.span
                        .attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                Json::array(self.children.iter().map(|c| c.to_json(selfs))),
            ));
        }
        Json::Object(fields.into_iter().collect())
    }

    fn render(&self, out: &mut String, depth: usize) {
        let _ = write!(
            out,
            "{:indent$}{} {}",
            "",
            self.span.name,
            format_micros(self.span.duration_us()),
            indent = depth * 2
        );
        for (k, v) in &self.span.attrs {
            match v {
                AttrValue::U64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                AttrValue::F64(x) => {
                    let _ = write!(out, " {k}={x:.3}");
                }
                AttrValue::Str(s) => {
                    let _ = write!(out, " {k}={s}");
                }
            }
        }
        out.push('\n');
        for child in &self.children {
            child.render(out, depth + 1);
        }
    }
}

fn format_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else {
        format!("{:.1}ms", us as f64 / 1e3)
    }
}

/// Rebuild the forest from finished spans, children in start order.
fn assemble(spans: &[SpanData]) -> Vec<TreeNode<'_>> {
    let mut by_parent: BTreeMap<Option<u64>, Vec<&SpanData>> = BTreeMap::new();
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        // A parent that never finished (or was dropped unfinished) makes its
        // children roots, so a partial trace still renders.
        let parent = s.parent.filter(|p| ids.contains(p));
        by_parent.entry(parent).or_default().push(s);
    }
    fn build<'a>(
        parent: Option<u64>,
        by_parent: &BTreeMap<Option<u64>, Vec<&'a SpanData>>,
    ) -> Vec<TreeNode<'a>> {
        let mut nodes: Vec<TreeNode<'a>> = by_parent
            .get(&parent)
            .map(|children| {
                children
                    .iter()
                    .map(|s| TreeNode {
                        span: s,
                        children: build(Some(s.id), by_parent),
                    })
                    .collect()
            })
            .unwrap_or_default();
        nodes.sort_by_key(|n| (n.span.start_us, n.span.id));
        nodes
    }
    build(None, &by_parent)
}

/// A cheap handle naming "the current position in the trace": which trace
/// (if any) and which span new children should attach under. Cloned freely
/// into execution contexts and worker threads.
#[derive(Clone, Default)]
pub struct TraceCtx {
    trace: Option<Arc<Trace>>,
    parent: Option<u64>,
}

impl TraceCtx {
    /// The no-op context: spans created through it do nothing.
    pub fn disabled() -> TraceCtx {
        TraceCtx::default()
    }

    /// A context opening spans at the root of `trace`.
    pub fn root(trace: &Arc<Trace>) -> TraceCtx {
        TraceCtx {
            trace: Some(trace.clone()),
            parent: None,
        }
    }

    pub fn enabled(&self) -> bool {
        self.trace.is_some()
    }

    pub fn trace(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// Start a span under this context's parent. Inert if disabled.
    pub fn span(&self, name: &str) -> Span {
        match &self.trace {
            None => Span::noop(),
            Some(trace) => {
                let id = trace.next_id.fetch_add(1, Ordering::Relaxed);
                Span {
                    trace: Some(trace.clone()),
                    id,
                    parent: self.parent,
                    name: name.to_string(),
                    start_us: trace.now_micros(),
                    attrs: Vec::new(),
                }
            }
        }
    }
}

/// An open span. Records attributes while open; finishes (stamps the end
/// time and publishes itself to the trace) on drop or [`Span::finish`].
pub struct Span {
    trace: Option<Arc<Trace>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
    attrs: Vec<(String, AttrValue)>,
}

impl Span {
    fn noop() -> Span {
        Span {
            trace: None,
            id: 0,
            parent: None,
            name: String::new(),
            start_us: 0,
            attrs: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.trace.is_some()
    }

    pub fn record_u64(&mut self, key: &str, value: u64) {
        if self.trace.is_some() {
            self.attrs.push((key.to_string(), AttrValue::U64(value)));
        }
    }

    pub fn record_f64(&mut self, key: &str, value: f64) {
        if self.trace.is_some() {
            self.attrs.push((key.to_string(), AttrValue::F64(value)));
        }
    }

    pub fn record_str(&mut self, key: &str, value: &str) {
        if self.trace.is_some() {
            self.attrs
                .push((key.to_string(), AttrValue::Str(value.to_string())));
        }
    }

    /// A context for children of this span.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace: self.trace.clone(),
            parent: self.trace.as_ref().map(|_| self.id),
        }
    }

    /// Finish now (otherwise drop does it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(trace) = self.trace.take() {
            let end_us = trace.now_micros();
            trace.spans.lock().push(SpanData {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                start_us: self.start_us,
                end_us,
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    #[test]
    fn disabled_spans_do_nothing() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.enabled());
        let mut s = ctx.span("anything");
        s.record_u64("bytes", 42);
        s.finish();
        // Nothing to observe: no trace exists. This is the hot-path contract.
    }

    #[test]
    fn spans_reassemble_into_a_tree() {
        let trace = Trace::wall();
        let root_ctx = TraceCtx::root(&trace);
        {
            let mut query = root_ctx.span("query");
            query.record_str("sql", "SELECT 1");
            {
                let wait = query.ctx().span("scheduler_wait");
                wait.finish();
                let mut scan = query.ctx().span("scan");
                scan.record_u64("bytes", 100);
                {
                    let mut morsel = scan.ctx().span("morsel");
                    morsel.record_u64("bytes", 60);
                }
            }
        }
        let json = trace.to_json();
        let roots = json.as_array().unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].get("name").unwrap().as_str(), Some("query"));
        let children = roots[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(
            children[0].get("name").unwrap().as_str(),
            Some("scheduler_wait")
        );
        let scan = &children[1];
        let morsels = scan.get("children").unwrap().as_array().unwrap();
        assert_eq!(morsels[0].get("name").unwrap().as_str(), Some("morsel"));
        assert_eq!(trace.attr_sum("bytes"), 160.0);

        let text = trace.render_text();
        assert!(text.contains("query"), "{text}");
        assert!(text.contains("  scan"), "{text}");
        assert!(text.contains("    morsel"), "{text}");
    }

    #[test]
    fn sim_clock_traces_read_in_virtual_time() {
        let clock = SimClock::shared();
        let trace = Trace::with_clock(clock.clone());
        let ctx = TraceCtx::root(&trace);
        clock.set_micros(1_000_000);
        let span = ctx.span("vm_boot");
        clock.set_micros(91_000_000); // the simulator advances 90 virtual s
        span.finish();
        let spans = trace.finished_spans();
        assert_eq!(spans[0].start_us, 1_000_000);
        assert_eq!(spans[0].duration_us(), 90_000_000);
    }

    #[test]
    fn spans_from_worker_threads_land_in_one_trace() {
        let trace = Trace::wall();
        let parent = TraceCtx::root(&trace).span("scan");
        std::thread::scope(|s| {
            for i in 0..4 {
                let ctx = parent.ctx();
                s.spawn(move || {
                    let mut m = ctx.span("morsel");
                    m.record_u64("rg", i);
                });
            }
        });
        parent.finish();
        let spans = trace.finished_spans();
        assert_eq!(spans.len(), 5);
        let roots = trace.to_json();
        let scan = &roots.as_array().unwrap()[0];
        assert_eq!(
            scan.get("children").unwrap().as_array().unwrap().len(),
            4,
            "all worker morsels are children of the scan span"
        );
    }

    #[test]
    fn profile_json_carries_nonnegative_self_time() {
        let clock = SimClock::shared();
        let trace = Trace::with_clock(clock.clone());
        let parent = TraceCtx::root(&trace).span("scan");
        // Two workers overlap in (virtual) time and one outlives the parent:
        // self_us must subtract the union, clipped, never underflowing.
        let a_ctx = parent.ctx();
        let b_ctx = parent.ctx();
        let a = a_ctx.span("morsel");
        clock.set_micros(40);
        let b = b_ctx.span("morsel");
        clock.set_micros(60);
        a.finish();
        clock.set_micros(80);
        parent.finish();
        clock.set_micros(120);
        b.finish();
        let json = trace.to_json();
        let scan = &json.as_array().unwrap()[0];
        assert_eq!(scan.get("duration_us").unwrap().as_i64(), Some(80));
        // Children cover [0,60) ∪ [40,80) = the whole parent window.
        assert_eq!(scan.get("self_us").unwrap().as_i64(), Some(0));
        for child in scan.get("children").unwrap().as_array().unwrap() {
            let self_us = child.get("self_us").unwrap().as_i64().unwrap();
            let duration = child.get("duration_us").unwrap().as_i64().unwrap();
            assert!((0..=duration).contains(&self_us));
        }
    }

    #[test]
    fn unfinished_parent_does_not_orphan_children() {
        let trace = Trace::wall();
        let parent = TraceCtx::root(&trace).span("never_finished");
        let child = parent.ctx().span("child");
        child.finish();
        std::mem::forget(parent); // leaked open span
        let json = trace.to_json();
        assert_eq!(json.as_array().unwrap().len(), 1);
        assert_eq!(
            json.as_array().unwrap()[0].get("name").unwrap().as_str(),
            Some("child")
        );
    }
}
