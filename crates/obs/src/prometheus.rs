//! Prometheus text-exposition helpers: a validator for scrape output and a
//! family extractor, used by server tests and the CI observability smoke
//! check. Rendering lives on [`crate::MetricsRegistry::render`]; this module
//! is the other side — proving that what `/metrics` serves is well-formed.

use std::collections::{BTreeMap, BTreeSet};

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Base family name of a sample line's metric (strips histogram suffixes).
fn base_family(metric: &str, histogram_families: &BTreeSet<String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = metric.strip_suffix(suffix) {
            if histogram_families.contains(base) {
                return base.to_string();
            }
        }
    }
    metric.to_string()
}

/// Split `name{labels}` into the name and the raw label body (no braces).
fn split_labels(metric: &str) -> Result<(&str, Option<&str>), String> {
    match metric.find('{') {
        None => Ok((metric, None)),
        Some(open) => {
            if !metric.ends_with('}') {
                return Err(format!("unterminated label set in: {metric}"));
            }
            Ok((&metric[..open], Some(&metric[open + 1..metric.len() - 1])))
        }
    }
}

/// Parse a label body like `a="x",le="+Inf"` into pairs.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !valid_metric_name(&key) {
            return Err(format!("bad label name: {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value not quoted: {after}"));
        }
        // Find the closing quote, honouring escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated label value: {after}"));
            }
            match bytes[i] {
                b'"' => break,
                b'\\' if i + 1 < bytes.len() => {
                    // Unescape per the exposition format: \n is a newline,
                    // \\ and \" are the literal characters.
                    value.push(match bytes[i + 1] {
                        b'n' => '\n',
                        c => c as char,
                    });
                    i += 2;
                }
                c => {
                    value.push(c as char);
                    i += 1;
                }
            }
        }
        out.push((key, value));
        rest = after[i + 1..].trim_start_matches(',').trim_start();
    }
    Ok(out)
}

/// Quotes on a line that are not preceded by a backslash. An odd count
/// means a label value was opened but never closed on this text line.
fn unescaped_quote_count(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut count = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                count += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    count
}

/// Validate Prometheus text exposition format:
///
/// - every non-comment line is `name[{labels}] value`;
/// - every sample belongs to a family announced by a `# TYPE` line;
/// - metric and label names are well-formed, values parse as floats;
/// - histograms are internally consistent: buckets cumulative and
///   non-decreasing, an `le="+Inf"` bucket present and equal to `_count`.
///
/// Returns the set of family names on success.
pub fn validate_exposition(text: &str) -> Result<BTreeSet<String>, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: BTreeSet<String> = BTreeSet::new();
    // (family, non-le labels) -> [(le, cumulative count)]
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid family name {name:?}"));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {n}: unknown metric type {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            if kind == "histogram" {
                histograms.insert(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // A raw (unescaped) newline inside a label value splits the sample
        // across text lines, leaving this line with an unterminated quote.
        // Catch it explicitly — writers must escape newlines as \n.
        if !unescaped_quote_count(line).is_multiple_of(2) {
            return Err(format!(
                "line {n}: raw newline inside label value (unterminated quote)"
            ));
        }
        // Sample line: metric and value separated by whitespace. Label
        // values may contain spaces inside quotes, so when a label set is
        // present split after its closing brace; otherwise at the first
        // whitespace.
        let split_at = match line.rfind('}') {
            Some(close) => close + 1,
            None => line
                .find(char::is_whitespace)
                .ok_or_else(|| format!("line {n}: no value on sample line"))?,
        };
        let (metric, value_str) = line.split_at(split_at);
        if value_str.trim().is_empty() {
            return Err(format!("line {n}: no value on sample line"));
        }
        let metric = metric.trim();
        let value_str = value_str.trim();
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            s => s
                .parse()
                .map_err(|_| format!("line {n}: bad sample value {s:?}"))?,
        };
        let (name, label_body) = split_labels(metric).map_err(|e| format!("line {n}: {e}"))?;
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let labels = match label_body {
            Some(body) => parse_labels(body).map_err(|e| format!("line {n}: {e}"))?,
            None => Vec::new(),
        };
        let family = base_family(name, &histograms);
        if !types.contains_key(&family) {
            return Err(format!("line {n}: sample {name} has no preceding # TYPE"));
        }
        if histograms.contains(&family) {
            let non_le: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let series = (family.clone(), non_le.join(","));
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                let le_val = match le.1.as_str() {
                    "+Inf" => f64::INFINITY,
                    s => s
                        .parse()
                        .map_err(|_| format!("line {n}: bad le value {s:?}"))?,
                };
                buckets.entry(series).or_default().push((le_val, value));
            } else if name.ends_with("_count") {
                counts.insert(series, value);
            }
        }
    }

    // Histogram consistency.
    for ((family, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut prev = -1.0;
        for &(le, cum) in &series {
            if cum < prev {
                return Err(format!(
                    "histogram {family}{{{labels}}}: bucket le={le} not cumulative"
                ));
            }
            prev = cum;
        }
        let Some(&(last_le, last_cum)) = series.last() else {
            continue;
        };
        if !last_le.is_infinite() {
            return Err(format!(
                "histogram {family}{{{labels}}}: missing le=\"+Inf\" bucket"
            ));
        }
        if let Some(&count) = counts.get(&(family.clone(), labels.clone())) {
            if (count - last_cum).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{{{labels}}}: +Inf bucket {last_cum} != count {count}"
                ));
            }
        } else {
            return Err(format!("histogram {family}{{{labels}}}: missing _count"));
        }
    }

    Ok(types.keys().cloned().collect())
}

/// Validate `text` and require that every family in `required` is present.
pub fn require_families(text: &str, required: &[&str]) -> Result<(), String> {
    let families = validate_exposition(text)?;
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|f| !families.contains(*f))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("missing required metric families: {missing:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn registry_output_validates() {
        let r = MetricsRegistry::new();
        r.counter_with("pixels_queries_total", "Q.", &[("level", "immediate")])
            .add(2);
        r.gauge("pixels_scheduler_queue_depth", "D.").set(1.0);
        let h = r.histogram("pixels_query_pending_seconds", "P.", &[], None);
        h.observe(0.2);
        h.observe(7.0);
        let text = r.render();
        let families = validate_exposition(&text).expect("valid exposition");
        assert!(families.contains("pixels_queries_total"));
        assert!(families.contains("pixels_query_pending_seconds"));
        require_families(
            &text,
            &["pixels_queries_total", "pixels_scheduler_queue_depth"],
        )
        .unwrap();
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(validate_exposition("pixels_x 1").is_err(), "no TYPE line");
        assert!(
            validate_exposition("# TYPE pixels_x counter\npixels_x notanumber").is_err(),
            "bad value"
        );
        assert!(
            validate_exposition("# TYPE 9bad counter\n").is_err(),
            "bad name"
        );
        assert!(
            validate_exposition("# TYPE pixels_x counter\npixels_x{a=unquoted} 1").is_err(),
            "unquoted label"
        );
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        let text = "\
# TYPE pixels_h histogram
pixels_h_bucket{le=\"0.1\"} 5
pixels_h_bucket{le=\"1\"} 3
pixels_h_bucket{le=\"+Inf\"} 6
pixels_h_sum 1
pixels_h_count 6
";
        assert!(validate_exposition(text).is_err(), "non-cumulative buckets");
        let text = "\
# TYPE pixels_h histogram
pixels_h_bucket{le=\"0.1\"} 1
pixels_h_sum 1
pixels_h_count 1
";
        assert!(validate_exposition(text).is_err(), "missing +Inf");
        let text = "\
# TYPE pixels_h histogram
pixels_h_bucket{le=\"+Inf\"} 2
pixels_h_sum 1
pixels_h_count 3
";
        assert!(validate_exposition(text).is_err(), "count mismatch");
    }

    #[test]
    fn rejects_raw_newlines_but_accepts_escaped_ones() {
        // A raw newline inside a label value splits the sample line.
        let raw = "# TYPE pixels_x counter\npixels_x{msg=\"line1\nline2\"} 1\n";
        let err = validate_exposition(raw).unwrap_err();
        assert!(err.contains("raw newline"), "{err}");
        // The registry escapes newlines, so its output stays valid — and the
        // validator's unescaper recovers the original value.
        let r = MetricsRegistry::new();
        r.counter_with("pixels_x", "x", &[("msg", "line1\nline2")])
            .inc();
        let text = r.render();
        validate_exposition(&text).expect("escaped newline is valid");
        let body_line = text
            .lines()
            .find(|l| l.starts_with("pixels_x{"))
            .expect("sample line");
        let body = &body_line[body_line.find('{').unwrap() + 1..body_line.rfind('}').unwrap()];
        let labels = parse_labels(body).unwrap();
        assert_eq!(
            labels,
            vec![("msg".to_string(), "line1\nline2".to_string())]
        );
    }

    #[test]
    fn missing_family_is_reported() {
        let text = "# TYPE pixels_a counter\npixels_a 1\n";
        let err = require_families(text, &["pixels_a", "pixels_b"]).unwrap_err();
        assert!(err.contains("pixels_b"), "{err}");
    }
}
