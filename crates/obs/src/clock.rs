//! Time sources for tracing.
//!
//! Spans record microsecond timestamps from a [`Clock`] so the same trace
//! machinery serves both execution paths of PixelsDB: the real engine
//! ([`WallClock`], monotonic wall time) and the discrete-event simulator
//! ([`SimClock`], a shared virtual-time cell the simulation loop advances).
//! A trace never mixes the two — whichever clock the trace was built with
//! defines the meaning of every timestamp in it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's origin (process/trace start for wall
    /// clocks, simulation start for virtual clocks).
    fn now_micros(&self) -> u64;

    /// Let `us` microseconds of this clock's time pass. A wall clock blocks
    /// the calling thread; a virtual clock advances instantly. This is what
    /// lets one retry/backoff implementation (`pixels-chaos`) drive both the
    /// real engine and the simulator: backoff delays are expressed against
    /// the clock, not against `std::thread::sleep`.
    fn sleep_micros(&self, us: u64) {
        // Default for clocks that model no passage of time.
        let _ = us;
    }
}

/// Shared handle to a clock.
pub type ClockRef = Arc<dyn Clock>;

/// Monotonic wall time, measured from the moment the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }

    pub fn shared() -> ClockRef {
        Arc::new(WallClock::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn sleep_micros(&self, us: u64) {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// A virtual clock: holds whatever time the owner last set. The simulator
/// advances it from its event loop (`SimTime::as_micros()`), so spans opened
/// against it are stamped in simulation time.
#[derive(Debug, Default)]
pub struct SimClock {
    now_us: AtomicU64,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    pub fn shared() -> Arc<SimClock> {
        Arc::new(SimClock::new())
    }

    /// Move the clock to an absolute virtual time, in microseconds.
    /// Monotonicity is the caller's contract, as it is for `SimTime`.
    pub fn set_micros(&self, us: u64) {
        self.now_us.store(us, Ordering::Relaxed);
    }

    pub fn advance_micros(&self, us: u64) {
        self.now_us.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_micros(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    /// Sleeping on virtual time advances the clock without blocking — a
    /// simulated backoff costs zero wall time but is fully visible to every
    /// reader of the clock.
    fn sleep_micros(&self, us: u64) {
        self.advance_micros(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn sim_sleep_advances_virtual_time_instantly() {
        let c = SimClock::new();
        let wall = std::time::Instant::now();
        c.sleep_micros(30_000_000); // 30 virtual seconds
        assert_eq!(c.now_micros(), 30_000_000);
        assert!(wall.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn sim_clock_holds_set_time() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        c.set_micros(1_500_000);
        assert_eq!(c.now_micros(), 1_500_000);
        c.advance_micros(500_000);
        assert_eq!(c.now_micros(), 2_000_000);
    }
}
