//! The process-wide metrics registry: named counters, gauges, and
//! histograms with optional labels, rendered in Prometheus text format.
//!
//! Naming convention (see DESIGN.md "Observability"): every family is
//! `pixels_<subsystem>_<what>[_<unit>][_total]`, snake_case, with base units
//! (seconds, bytes). Labels distinguish series within a family — e.g.
//! `pixels_scheduler_queue_depth{level="relaxed"}`.
//!
//! Counters are sharded across cache-line-padded atomics so the morsel
//! workers of a parallel scan never contend on one cell; gauges and
//! histogram buckets are plain atomics.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    // Each thread gets a sticky shard, assigned round-robin on first use.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter, sharded for concurrent writers.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A gauge: an instantaneous f64 (stored as bits in an atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed upper-bound buckets (plus an implicit +Inf).
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the +Inf bucket at the end.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Latency buckets in seconds: 100µs .. 5min, roughly 2.5× apart.
    pub const SECONDS_BUCKETS: &'static [f64] = &[
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
        5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    ];

    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn observe(&self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative counts per bound, in bound order (excludes +Inf).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        self.bounds
            .iter()
            .zip(&self.counts)
            .map(|(&b, c)| {
                acc += c.load(Ordering::Relaxed);
                (b, acc)
            })
            .collect()
    }

    /// Estimated q-th percentile (0.0..=1.0): the upper bound of the bucket
    /// containing the nearest-rank observation. Returns 0.0 when empty;
    /// observations above the last bound report that last bound.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        for (bound, cum) in self.cumulative() {
            if cum >= rank {
                return bound;
            }
        }
        *self.bounds.last().unwrap_or(&0.0)
    }
}

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label set (`{a="x",b="y"}` or empty).
    series: BTreeMap<String, Instrument>,
}

/// The registry: a map of metric families, each a set of labeled series.
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| {
            // Exposition-format escaping: backslash first, then quote, then
            // newline (a raw newline would split the sample line).
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// The process-wide registry.
    pub fn global() -> &'static Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::shared)
    }

    fn instrument<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
        select: impl FnOnce(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name: {name}");
        let key = render_labels(labels);
        let mut families = self.families.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} re-registered as a different kind"
        );
        let instrument = family.series.entry(key).or_insert_with(make);
        select(instrument).expect("family kind matches series kind")
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Instrument::Counter(Arc::new(Counter::default())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Instrument::Gauge(Arc::new(Gauge::default())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a histogram; `bounds` defaults to
    /// [`Histogram::SECONDS_BUCKETS`] when `None`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
    ) -> Arc<Histogram> {
        let bounds = bounds.unwrap_or(Histogram::SECONDS_BUCKETS);
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let families = self.families.read();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.prometheus_name());
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_f64(g.get()));
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = format!("le=\"{}\"", fmt_f64(bound));
                            let _ = writeln!(out, "{name}_bucket{} {cum}", merge(labels, &le));
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            merge(labels, "le=\"+Inf\""),
                            h.count()
                        );
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_f64(h.sum()));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// Merge an extra label into an already-rendered label set.
fn merge(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::default();
        g.set(4.0);
        g.add(1.5);
        assert!((g.get() - 5.5).abs() < 1e-12);
        g.add(-5.5);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[0.01, 0.1, 1.0, 10.0]);
        for v in [0.005, 0.05, 0.05, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 55.605).abs() < 1e-9);
        let cum = h.cumulative();
        assert_eq!(cum, vec![(0.01, 1), (0.1, 3), (1.0, 4), (10.0, 5)]);
        assert_eq!(h.percentile(0.5), 0.1);
        assert_eq!(h.percentile(0.75), 10.0);
        // Above the last bound, the estimate saturates at the last bound.
        assert_eq!(h.percentile(1.0), 10.0);
        let empty = Histogram::new(&[1.0]);
        assert_eq!(empty.percentile(0.99), 0.0);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = MetricsRegistry::new();
        r.counter("pixels_queries_total", "Queries.").add(3);
        r.counter_with("pixels_queries_total", "Queries.", &[("level", "relaxed")])
            .inc();
        r.gauge_with(
            "pixels_scheduler_queue_depth",
            "Queue depth.",
            &[("level", "best_effort")],
        )
        .set(2.0);
        let h = r.histogram(
            "pixels_query_execution_seconds",
            "Execution latency.",
            &[],
            Some(&[0.1, 1.0]),
        );
        h.observe(0.05);
        h.observe(5.0);
        let text = r.render();
        assert!(
            text.contains("# TYPE pixels_queries_total counter"),
            "{text}"
        );
        assert!(text.contains("pixels_queries_total 3"), "{text}");
        assert!(
            text.contains("pixels_queries_total{level=\"relaxed\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pixels_scheduler_queue_depth{level=\"best_effort\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pixels_query_execution_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pixels_query_execution_seconds_count 2"),
            "{text}"
        );
    }

    #[test]
    fn same_series_is_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("pixels_x_total", "x");
        let b = r.counter("pixels_x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Label order does not create a new series.
        let c1 = r.counter_with("pixels_y_total", "y", &[("a", "1"), ("b", "2")]);
        let c2 = r.counter_with("pixels_y_total", "y", &[("b", "2"), ("a", "1")]);
        c1.inc();
        assert_eq!(c2.get(), 1);
    }

    #[test]
    fn label_values_escape_newlines_quotes_and_backslashes() {
        let r = MetricsRegistry::new();
        r.counter_with(
            "pixels_errors_total",
            "Errors.",
            &[("message", "line1\nline2 \"quoted\" back\\slash")],
        )
        .inc();
        let text = r.render();
        assert!(
            text.contains(r#"message="line1\nline2 \"quoted\" back\\slash""#),
            "{text}"
        );
        // The escaped newline must not split the sample line.
        let sample_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("pixels_errors_total"))
            .collect();
        assert_eq!(sample_lines.len(), 1, "{text}");
        assert!(sample_lines[0].ends_with(" 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("pixels_z", "z");
        r.gauge("pixels_z", "z");
    }
}
