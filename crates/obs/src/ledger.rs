//! The economics ledger: one append-only entry per finished query tying the
//! user-facing bill to the provider-side spend.
//!
//! PixelsDB sells *flexible service levels and prices*: the user pays a
//! per-TB rate discounted by level, while the provider pays for whatever
//! resources actually ran — accepted CF/VM attempt cost (`CostBreakdown`)
//! plus speculation waste (attempts that were cancelled or crashed but still
//! billed by the cloud, `provider_cf_dollars` minus the accepted CF cost).
//! The ledger records both sides per query so revenue, cost, and margin
//! reconcile *exactly* (bit-for-bit f64) against the billing pipeline and
//! the policy core; the chaos and parity suites assert that invariant.

use crate::registry::MetricsRegistry;
use parking_lot::Mutex;
use pixels_common::Json;
use std::collections::BTreeMap;

/// One query's economics.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Query id (e.g. "q-3").
    pub query: String,
    pub tenant: String,
    /// Service-level name ("immediate" / "relaxed" / "best_effort").
    pub level: String,
    /// Bytes the user was billed for (scanned bytes).
    pub bytes_billed: u64,
    /// What the user pays: `PriceSchedule::bill(level, bytes_billed)`.
    pub revenue_dollars: f64,
    /// Provider spend on accepted VM attempts.
    pub vm_dollars: f64,
    /// Provider spend on the accepted CF attempt.
    pub cf_dollars: f64,
    /// Provider CF spend across *all* attempts, including cancelled and
    /// crashed ones — always ≥ `cf_dollars`.
    pub provider_cf_dollars: f64,
    /// Provider spend on exchange spill traffic (the object-store shuffle
    /// between CF stages of a multi-stage plan). Provider-side only: spill
    /// bytes are never part of `bytes_billed`.
    pub shuffle_dollars: f64,
    /// Whether the query was degraded (e.g. CF→VM fallback).
    pub degraded: bool,
    /// Whether a speculative duplicate attempt ran.
    pub speculative: bool,
    /// When the entry was appended (clock micros of the owning domain).
    pub at_us: u64,
}

impl LedgerEntry {
    /// CF dollars burned on attempts that produced no accepted result.
    pub fn waste_dollars(&self) -> f64 {
        (self.provider_cf_dollars - self.cf_dollars).max(0.0)
    }

    /// Total provider spend: accepted VM cost, all CF attempts, and the
    /// exchange traffic of multi-stage plans.
    pub fn provider_total_dollars(&self) -> f64 {
        self.vm_dollars + self.provider_cf_dollars + self.shuffle_dollars
    }

    /// Revenue minus total provider spend.
    pub fn margin_dollars(&self) -> f64 {
        self.revenue_dollars - self.provider_total_dollars()
    }

    pub fn to_json(&self) -> Json {
        Json::object([
            ("query", Json::string(self.query.clone())),
            ("tenant", Json::string(self.tenant.clone())),
            ("level", Json::string(self.level.clone())),
            ("bytes_billed", Json::number(self.bytes_billed as f64)),
            ("revenue_dollars", Json::number(self.revenue_dollars)),
            ("vm_dollars", Json::number(self.vm_dollars)),
            ("cf_dollars", Json::number(self.cf_dollars)),
            (
                "provider_cf_dollars",
                Json::number(self.provider_cf_dollars),
            ),
            ("shuffle_dollars", Json::number(self.shuffle_dollars)),
            ("waste_dollars", Json::number(self.waste_dollars())),
            ("degraded", Json::Bool(self.degraded)),
            ("speculative", Json::Bool(self.speculative)),
            ("at_us", Json::number(self.at_us as f64)),
        ])
    }
}

/// Sums over a set of ledger entries. Sums are taken in append order, so two
/// ledgers fed the same entries in the same order agree bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSummary {
    pub entries: u64,
    pub bytes_billed: u64,
    pub revenue_dollars: f64,
    pub vm_dollars: f64,
    pub cf_dollars: f64,
    pub provider_cf_dollars: f64,
    pub shuffle_dollars: f64,
    pub waste_dollars: f64,
    pub degraded: u64,
    pub speculative: u64,
}

impl LedgerSummary {
    fn add(&mut self, e: &LedgerEntry) {
        self.entries += 1;
        self.bytes_billed += e.bytes_billed;
        self.revenue_dollars += e.revenue_dollars;
        self.vm_dollars += e.vm_dollars;
        self.cf_dollars += e.cf_dollars;
        self.provider_cf_dollars += e.provider_cf_dollars;
        self.shuffle_dollars += e.shuffle_dollars;
        self.waste_dollars += e.waste_dollars();
        self.degraded += e.degraded as u64;
        self.speculative += e.speculative as u64;
    }

    pub fn to_json(&self) -> Json {
        Json::object([
            ("entries", Json::number(self.entries as f64)),
            ("bytes_billed", Json::number(self.bytes_billed as f64)),
            ("revenue_dollars", Json::number(self.revenue_dollars)),
            ("vm_dollars", Json::number(self.vm_dollars)),
            ("cf_dollars", Json::number(self.cf_dollars)),
            (
                "provider_cf_dollars",
                Json::number(self.provider_cf_dollars),
            ),
            ("shuffle_dollars", Json::number(self.shuffle_dollars)),
            ("waste_dollars", Json::number(self.waste_dollars)),
            ("degraded", Json::number(self.degraded as f64)),
            ("speculative", Json::number(self.speculative as f64)),
        ])
    }
}

/// The append-only ledger.
#[derive(Default)]
pub struct Ledger {
    entries: Mutex<Vec<LedgerEntry>>,
    /// Per-level entry counts already pushed to a registry, so export emits
    /// deltas and scraped counters stay monotonic.
    published_entries: Mutex<BTreeMap<String, u64>>,
    /// Tenant labels emitted by the previous [`Ledger::export_tenants`]
    /// call. Series whose tenant drops out of the top-K are zeroed on the
    /// next export — otherwise a stale gauge would keep its last value
    /// while that tenant's revenue is also folded into "other",
    /// double-counting it in the exposition.
    published_tenants: Mutex<std::collections::BTreeSet<String>>,
}

impl Ledger {
    pub fn new() -> Ledger {
        Ledger::default()
    }

    pub fn append(&self, entry: LedgerEntry) {
        self.entries.lock().push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.entries.lock().clone()
    }

    /// Summary over every entry, in append order.
    pub fn summary(&self) -> LedgerSummary {
        let mut s = LedgerSummary::default();
        for e in self.entries.lock().iter() {
            s.add(e);
        }
        s
    }

    /// Per-level summaries, in append order within each level.
    pub fn by_level(&self) -> BTreeMap<String, LedgerSummary> {
        let mut out: BTreeMap<String, LedgerSummary> = BTreeMap::new();
        for e in self.entries.lock().iter() {
            out.entry(e.level.clone()).or_default().add(e);
        }
        out
    }

    /// Per-tenant summaries, in append order within each tenant.
    pub fn by_tenant(&self) -> BTreeMap<String, LedgerSummary> {
        let mut out: BTreeMap<String, LedgerSummary> = BTreeMap::new();
        for e in self.entries.lock().iter() {
            out.entry(e.tenant.clone()).or_default().add(e);
        }
        out
    }

    /// The `GET /ledger` payload: the overall summary plus per-level and
    /// per-tenant breakdowns.
    pub fn to_json(&self) -> Json {
        let levels = Json::Object(
            self.by_level()
                .into_iter()
                .map(|(k, v)| (k, v.to_json()))
                .collect(),
        );
        let tenants = Json::Object(
            self.by_tenant()
                .into_iter()
                .map(|(k, v)| (k, v.to_json()))
                .collect(),
        );
        Json::object([
            ("summary", self.summary().to_json()),
            ("by_level", levels),
            ("by_tenant", tenants),
        ])
    }

    /// Publish to a metrics registry: a per-level entry counter plus revenue
    /// and provider-spend gauges. Base series are seeded even with zero
    /// entries so the metric families always exist for `require_families`.
    pub fn export(&self, registry: &MetricsRegistry) {
        registry.counter_with(
            "pixels_ledger_entries_total",
            "Ledger entries appended (one per finished query).",
            &[("level", "all")],
        );
        registry.gauge_with(
            "pixels_ledger_revenue_dollars",
            "User revenue recorded in the ledger, by service level.",
            &[("level", "all")],
        );
        let by_level = self.by_level();
        let mut published = self.published_entries.lock();
        let mut all = 0u64;
        let mut all_revenue = 0.0f64;
        for (level, s) in &by_level {
            all += s.entries;
            all_revenue += s.revenue_dollars;
            let mark = published.entry(level.clone()).or_insert(0);
            registry
                .counter_with(
                    "pixels_ledger_entries_total",
                    "Ledger entries appended (one per finished query).",
                    &[("level", level)],
                )
                .add(s.entries - *mark);
            *mark = s.entries;
            registry
                .gauge_with(
                    "pixels_ledger_revenue_dollars",
                    "User revenue recorded in the ledger, by service level.",
                    &[("level", level)],
                )
                .set(s.revenue_dollars);
        }
        let all_mark = published.entry("all".to_string()).or_insert(0);
        registry
            .counter_with(
                "pixels_ledger_entries_total",
                "Ledger entries appended (one per finished query).",
                &[("level", "all")],
            )
            .add(all - *all_mark);
        *all_mark = all;
        registry
            .gauge_with(
                "pixels_ledger_revenue_dollars",
                "User revenue recorded in the ledger, by service level.",
                &[("level", "all")],
            )
            .set(all_revenue);
        let total = self.summary();
        for (component, dollars) in [
            ("vm", total.vm_dollars),
            ("cf", total.cf_dollars),
            ("cf_waste", total.waste_dollars),
            ("cf_shuffle", total.shuffle_dollars),
        ] {
            registry
                .gauge_with(
                    "pixels_ledger_provider_dollars",
                    "Provider spend recorded in the ledger, by component.",
                    &[("component", component)],
                )
                .set(dollars);
        }
    }

    /// Publish per-tenant revenue and entry-count gauges, capped at the
    /// `top_k` tenants by revenue (ties broken by name) plus one aggregate
    /// `other` bucket — so a fleet with a million tenants exports at most
    /// `top_k + 1` series per family instead of a million. Gauges, not
    /// counters: the top-K membership may change between scrapes, so series
    /// whose tenant dropped out since the last export are zeroed — a stale
    /// nonzero gauge would double-count that tenant's revenue, which is now
    /// folded into "other".
    pub fn export_tenants(&self, registry: &MetricsRegistry, top_k: usize) {
        let by_tenant = self.by_tenant();
        let mut ranked: Vec<(&String, &LedgerSummary)> = by_tenant.iter().collect();
        ranked.sort_by(|a, b| {
            b.1.revenue_dollars
                .total_cmp(&a.1.revenue_dollars)
                .then_with(|| a.0.cmp(b.0))
        });
        let mut other = LedgerSummary::default();
        let emit = |tenant: &str, s: &LedgerSummary| {
            registry
                .gauge_with(
                    "pixels_ledger_tenant_revenue_dollars",
                    "User revenue recorded in the ledger, by tenant (top-K + other).",
                    &[("tenant", tenant)],
                )
                .set(s.revenue_dollars);
            registry
                .gauge_with(
                    "pixels_ledger_tenant_entries",
                    "Ledger entries, by tenant (top-K + other).",
                    &[("tenant", tenant)],
                )
                .set(s.entries as f64);
        };
        let mut emitted = std::collections::BTreeSet::new();
        for (i, (tenant, s)) in ranked.iter().enumerate() {
            if i < top_k {
                emit(tenant, s);
                emitted.insert((*tenant).clone());
            } else {
                other.entries += s.entries;
                other.revenue_dollars += s.revenue_dollars;
            }
        }
        if ranked.len() > top_k {
            emit("other", &other);
            emitted.insert("other".to_string());
        }
        // Zero any series emitted last scrape whose tenant is no longer in
        // the top-K: its revenue now lives in "other" (or it left the
        // ledger's view entirely) and must not be counted twice.
        let mut published = self.published_tenants.lock();
        for stale in published.iter().filter(|t| !emitted.contains(*t)) {
            emit(stale, &LedgerSummary::default());
        }
        *published = emitted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, level: &str, revenue: f64) -> LedgerEntry {
        LedgerEntry {
            query: query.to_string(),
            tenant: "default".to_string(),
            level: level.to_string(),
            bytes_billed: 1000,
            revenue_dollars: revenue,
            vm_dollars: 0.001,
            cf_dollars: 0.002,
            provider_cf_dollars: 0.003,
            shuffle_dollars: 0.0,
            degraded: false,
            speculative: true,
            at_us: 7,
        }
    }

    #[test]
    fn waste_and_margin_derive_from_the_entry() {
        let e = entry("q-1", "relaxed", 0.5);
        assert!((e.waste_dollars() - 0.001).abs() < 1e-12);
        assert!((e.provider_total_dollars() - 0.004).abs() < 1e-12);
        assert!((e.margin_dollars() - 0.496).abs() < 1e-12);
        // Accepted cost above the all-attempts figure clamps to zero waste.
        let mut odd = e.clone();
        odd.provider_cf_dollars = 0.0;
        assert_eq!(odd.waste_dollars(), 0.0);
        // Exchange traffic is provider spend, not waste.
        let mut sh = e.clone();
        sh.shuffle_dollars = 0.01;
        assert!((sh.provider_total_dollars() - 0.014).abs() < 1e-12);
        assert!((sh.margin_dollars() - 0.486).abs() < 1e-12);
        assert!((sh.waste_dollars() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn summaries_group_by_level_and_tenant() {
        let l = Ledger::new();
        l.append(entry("q-1", "immediate", 1.0));
        l.append(entry("q-2", "relaxed", 0.2));
        let mut other = entry("q-3", "relaxed", 0.3);
        other.tenant = "acme".to_string();
        l.append(other);
        let s = l.summary();
        assert_eq!(s.entries, 3);
        assert_eq!(s.speculative, 3);
        assert_eq!(s.bytes_billed, 3000);
        assert_eq!(s.revenue_dollars.to_bits(), (1.0f64 + 0.2 + 0.3).to_bits());
        let by_level = l.by_level();
        assert_eq!(by_level["relaxed"].entries, 2);
        assert_eq!(by_level["immediate"].revenue_dollars, 1.0);
        let by_tenant = l.by_tenant();
        assert_eq!(by_tenant["acme"].entries, 1);
        assert_eq!(by_tenant["default"].entries, 2);
        let json = l.to_json();
        assert_eq!(
            json.get("summary")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_i64(),
            Some(3)
        );
    }

    #[test]
    fn export_deltas_are_monotonic_and_seed_base_series() {
        let r = MetricsRegistry::new();
        let l = Ledger::new();
        l.export(&r); // empty ledger still creates families
        let text = r.render();
        assert!(text.contains("pixels_ledger_entries_total"), "{text}");
        assert!(text.contains("pixels_ledger_revenue_dollars"), "{text}");
        assert!(text.contains("pixels_ledger_provider_dollars"), "{text}");
        l.append(entry("q-1", "relaxed", 0.25));
        l.export(&r);
        l.export(&r); // re-scrape without new entries: counters must hold
        let text = r.render();
        assert!(
            text.contains("pixels_ledger_entries_total{level=\"relaxed\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_entries_total{level=\"all\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_revenue_dollars{level=\"relaxed\"} 0.25"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_provider_dollars{component=\"cf_waste\"} 0.001"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_provider_dollars{component=\"cf_shuffle\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn tenant_export_caps_label_cardinality_at_top_k_plus_other() {
        let r = MetricsRegistry::new();
        let l = Ledger::new();
        // 100 tenants with distinct revenue; only the top 8 may get their
        // own series, everyone else folds into "other".
        for i in 0..100u32 {
            let mut e = entry(&format!("q-{i}"), "relaxed", (i + 1) as f64 * 0.01);
            e.tenant = format!("tenant-{i:03}");
            l.append(e);
        }
        l.export_tenants(&r, 8);
        let text = r.render();
        let series: Vec<&str> = text
            .lines()
            .filter(|line| line.starts_with("pixels_ledger_tenant_revenue_dollars{"))
            .collect();
        assert_eq!(series.len(), 9, "top-8 + other, never 100: {series:?}");
        // Highest-revenue tenant keeps its own series...
        assert!(
            text.contains("pixels_ledger_tenant_revenue_dollars{tenant=\"tenant-099\"} 1"),
            "{text}"
        );
        // ...the long tail is aggregated, losing no dollars.
        let sum: f64 = series
            .iter()
            .map(|line| line.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum();
        let total: f64 = l.summary().revenue_dollars;
        assert!((sum - total).abs() < 1e-9, "export conserves revenue");
        assert!(text.contains("pixels_ledger_tenant_entries{tenant=\"other\"} 92"));
        // A small fleet exports every tenant and no "other" bucket.
        let r2 = MetricsRegistry::new();
        let small = Ledger::new();
        small.append(entry("q-1", "relaxed", 0.5));
        small.export_tenants(&r2, 8);
        let text2 = r2.render();
        assert!(text2.contains("tenant=\"default\""), "{text2}");
        assert!(!text2.contains("tenant=\"other\""), "{text2}");
    }

    #[test]
    fn tenants_dropping_out_of_top_k_are_zeroed_not_double_counted() {
        let r = MetricsRegistry::new();
        let l = Ledger::new();
        let add = |q: &str, tenant: &str, rev: f64| {
            let mut e = entry(q, "relaxed", rev);
            e.tenant = tenant.to_string();
            l.append(e);
        };
        // Scrape 1: alpha leads, beta folds into "other".
        add("q-1", "alpha", 2.0);
        add("q-2", "beta", 1.0);
        l.export_tenants(&r, 1);
        let text = r.render();
        assert!(
            text.contains("pixels_ledger_tenant_revenue_dollars{tenant=\"alpha\"} 2"),
            "{text}"
        );
        // Scrape 2: beta overtakes alpha, which now folds into "other".
        // Alpha's old series must be zeroed — keeping its last value while
        // its revenue also sits in "other" would double-count it.
        add("q-3", "beta", 5.0);
        l.export_tenants(&r, 1);
        let text = r.render();
        assert!(
            text.contains("pixels_ledger_tenant_revenue_dollars{tenant=\"alpha\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_tenant_revenue_dollars{tenant=\"beta\"} 6"),
            "{text}"
        );
        assert!(
            text.contains("pixels_ledger_tenant_revenue_dollars{tenant=\"other\"} 2"),
            "{text}"
        );
        // The exposition still conserves total revenue exactly once.
        let sum: f64 = text
            .lines()
            .filter(|line| line.starts_with("pixels_ledger_tenant_revenue_dollars{"))
            .map(|line| line.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((sum - l.summary().revenue_dollars).abs() < 1e-9, "{text}");
        // Same discipline on the entry-count family.
        assert!(
            text.contains("pixels_ledger_tenant_entries{tenant=\"alpha\"} 0"),
            "{text}"
        );
    }
}
