//! Every query template must execute successfully (and sensibly) against
//! freshly generated data — this pins the generator, the SQL dialect, and
//! the engine together.

use pixels_catalog::Catalog;
use pixels_exec::run_query;
use pixels_storage::InMemoryObjectStore;
use pixels_workload::{all_queries, load_tpch, load_weblog, QueryClass, TpchConfig, WeblogConfig};

fn setup() -> (Catalog, pixels_storage::ObjectStoreRef) {
    let catalog = Catalog::new();
    let store = InMemoryObjectStore::shared();
    load_tpch(
        &catalog,
        store.as_ref(),
        "tpch",
        &TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 1024,
            files_per_table: 1,
        },
    )
    .unwrap();
    load_weblog(
        &catalog,
        store.as_ref(),
        "logs",
        &WeblogConfig {
            rows: 2000,
            seed: 7,
            row_group_rows: 512,
        },
    )
    .unwrap();
    (catalog, store)
}

#[test]
fn every_template_executes() {
    let (catalog, store) = setup();
    for q in all_queries() {
        let result = run_query(&catalog, store.clone(), q.database, q.sql);
        let batch = result.unwrap_or_else(|e| panic!("{} failed: {e}", q.id));
        // Aggregation queries must produce at least one row; lookups may be
        // empty but must keep their declared column count.
        assert!(batch.num_columns() > 0, "{} produced no columns", q.id);
    }
}

#[test]
fn q1_is_consistent_with_manual_aggregation() {
    let (catalog, store) = setup();
    let q1 = pixels_workload::query_by_id("q1_pricing_summary").unwrap();
    let result = run_query(&catalog, store.clone(), "tpch", q1.sql).unwrap();
    assert!(
        result.num_rows() >= 3,
        "expected several flag/status groups"
    );

    // COUNT across groups == total qualifying rows.
    let total: i64 = result
        .to_rows()
        .iter()
        .map(|r| r.last().unwrap().as_i64().unwrap())
        .sum();
    let check = run_query(
        &catalog,
        store,
        "tpch",
        "SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'",
    )
    .unwrap();
    assert_eq!(total, check.row(0)[0].as_i64().unwrap());
}

#[test]
fn join_queries_respect_filters() {
    let (catalog, store) = setup();
    let r = run_query(
        &catalog,
        store,
        "tpch",
        "SELECT COUNT(*) FROM customer JOIN nation ON c_nationkey = n_nationkey \
         JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'ASIA'",
    )
    .unwrap();
    let asia = r.row(0)[0].as_i64().unwrap();
    assert!(asia > 0, "some customers should be in ASIA");
    assert!(asia < 150, "but not all of them");
}

#[test]
fn classes_cover_all_levels() {
    let qs = all_queries();
    for class in QueryClass::ALL {
        assert!(
            qs.iter().any(|q| q.class == class),
            "no template with class {class:?}"
        );
    }
}

#[test]
fn multi_file_tables_scan_identically() {
    // The same data split across 4 files per table must give identical
    // query results and register all paths.
    let single = {
        let catalog = Catalog::new();
        let store = InMemoryObjectStore::shared();
        load_tpch(
            &catalog,
            store.as_ref(),
            "tpch",
            &TpchConfig {
                scale: 0.001,
                seed: 42,
                row_group_rows: 512,
                files_per_table: 1,
            },
        )
        .unwrap();
        run_query(&catalog, store, "tpch",
            "SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus")
            .unwrap()
    };
    let multi = {
        let catalog = Catalog::new();
        let store = InMemoryObjectStore::shared();
        load_tpch(
            &catalog,
            store.as_ref(),
            "tpch",
            &TpchConfig {
                scale: 0.001,
                seed: 42,
                row_group_rows: 512,
                files_per_table: 4,
            },
        )
        .unwrap();
        let t = catalog.get_table("tpch", "orders").unwrap();
        assert_eq!(t.paths.len(), 4, "orders split into 4 files");
        run_query(&catalog, store, "tpch",
            "SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus")
            .unwrap()
    };
    assert_eq!(single, multi);
}

#[test]
fn weblog_error_rate_query_matches_generator() {
    let (catalog, store) = setup();
    let errors = run_query(
        &catalog,
        store.clone(),
        "logs",
        "SELECT COUNT(*) FROM requests WHERE status >= 500",
    )
    .unwrap()
    .row(0)[0]
        .as_i64()
        .unwrap();
    let total = run_query(&catalog, store, "logs", "SELECT COUNT(*) FROM requests")
        .unwrap()
        .row(0)[0]
        .as_i64()
        .unwrap();
    assert_eq!(total, 2000);
    let frac = errors as f64 / total as f64;
    assert!(frac > 0.005 && frac < 0.06, "5xx fraction {frac}");
}
