//! Internet-log-analysis workload generator (the paper's second evaluation
//! workload class alongside TPC-H).
//!
//! Produces a single wide `requests` table shaped like a web server access
//! log: timestamps with a diurnal traffic pattern, skewed URL popularity
//! (Zipf-ish), status codes with a realistic error fraction, and per-request
//! latency/bytes.

use pixels_catalog::{Catalog, CreateTable};
use pixels_common::{DataType, Field, RecordBatch, Result, Schema, SchemaRef, Value};
use pixels_storage::{ObjectStore, PixelsReader, PixelsWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
pub struct WeblogConfig {
    pub rows: usize,
    pub seed: u64,
    pub row_group_rows: usize,
}

impl Default for WeblogConfig {
    fn default() -> Self {
        WeblogConfig {
            rows: 10_000,
            seed: 7,
            row_group_rows: 4096,
        }
    }
}

pub fn weblog_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("ts", DataType::Timestamp),
        Field::required("ip", DataType::Utf8),
        Field::required("url", DataType::Utf8),
        Field::required("method", DataType::Utf8),
        Field::required("status", DataType::Int32),
        Field::required("bytes", DataType::Int64),
        Field::required("latency_ms", DataType::Float64),
        Field::required("country", DataType::Utf8),
        Field::nullable("referrer", DataType::Utf8),
    ]))
}

const URLS: [&str; 12] = [
    "/",
    "/index.html",
    "/search",
    "/login",
    "/api/v1/items",
    "/api/v1/users",
    "/cart",
    "/checkout",
    "/static/app.js",
    "/static/logo.png",
    "/docs",
    "/admin",
];
const METHODS: [&str; 3] = ["GET", "POST", "PUT"];
const COUNTRIES: [&str; 8] = ["US", "DE", "FR", "CN", "IN", "BR", "JP", "GB"];

/// Zipf-like index selection: rank r chosen with probability ∝ 1/(r+1).
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    let harmonic: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut target = rng.gen_range(0.0..harmonic);
    for i in 0..n {
        target -= 1.0 / (i + 1) as f64;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generate the requests table. Timestamps span one simulated day starting
/// at 2024-01-01 00:00 with a diurnal density (peak around 14:00).
pub fn generate_weblog(cfg: &WeblogConfig) -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let day_start_ms: i64 = 19_723 * 86_400_000; // 2024-01-01
    let mut rows = Vec::with_capacity(cfg.rows);
    for i in 0..cfg.rows {
        // Diurnal time-of-day: rejection-sample an hour weighted by a
        // raised cosine peaking at 14:00.
        let hour = loop {
            let h = rng.gen_range(0.0..24.0f64);
            let w = 0.55 + 0.45 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            if rng.gen_bool(w.clamp(0.05, 1.0)) {
                break h;
            }
        };
        let ts = day_start_ms + (hour * 3_600_000.0) as i64 + (i % 1000) as i64;
        let url = URLS[zipf(&mut rng, URLS.len())];
        let status = match rng.gen_range(0..100) {
            0..=88 => 200,
            89..=92 => 304,
            93..=95 => 404,
            96..=97 => 403,
            _ => 500,
        };
        let latency = if status == 500 {
            rng.gen_range(200.0..5000.0)
        } else {
            rng.gen_range(1.0..250.0)
        };
        rows.push(vec![
            Value::Timestamp(ts),
            Value::Utf8(format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..255),
                rng.gen_range(0..255),
                rng.gen_range(0..255),
                rng.gen_range(1..255)
            )),
            Value::Utf8(url.to_string()),
            Value::Utf8(METHODS[zipf(&mut rng, METHODS.len())].to_string()),
            Value::Int32(status),
            Value::Int64(rng.gen_range(200..2_000_000)),
            Value::Float64((latency * 100.0f64).round() / 100.0),
            Value::Utf8(COUNTRIES[zipf(&mut rng, COUNTRIES.len())].to_string()),
            if rng.gen_bool(0.4) {
                Value::Utf8(format!("https://ref{}.example.com", rng.gen_range(0..20)))
            } else {
                Value::Null
            },
        ]);
    }
    RecordBatch::from_rows(weblog_schema(), &rows)
}

/// Generate and register the weblog database.
pub fn load_weblog(
    catalog: &Catalog,
    store: &dyn ObjectStore,
    db: &str,
    cfg: &WeblogConfig,
) -> Result<()> {
    catalog.create_database(db);
    catalog.create_table(CreateTable {
        database: db.into(),
        name: "requests".into(),
        schema: weblog_schema(),
        primary_key: None,
        foreign_keys: vec![],
        comment: Some("web server access log: one row per HTTP request".into()),
    })?;
    let batch = generate_weblog(cfg)?;
    let path = format!("{db}/requests/part-0.pxl");
    let mut w =
        PixelsWriter::with_row_group_rows(store, &path, weblog_schema(), cfg.row_group_rows);
    w.write_batch(&batch)?;
    let size = w.finish()?;
    let reader = PixelsReader::open(store, &path)?;
    catalog.register_data_file(db, "requests", &path, reader.footer(), size)?;
    catalog.set_distinct_count(db, "requests", "url", URLS.len() as u64)?;
    catalog.set_distinct_count(db, "requests", "country", COUNTRIES.len() as u64)?;
    catalog.set_distinct_count(db, "requests", "status", 5)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_storage::InMemoryObjectStore;

    #[test]
    fn deterministic() {
        let cfg = WeblogConfig {
            rows: 500,
            ..Default::default()
        };
        assert_eq!(
            generate_weblog(&cfg).unwrap(),
            generate_weblog(&cfg).unwrap()
        );
    }

    #[test]
    fn status_distribution_is_plausible() {
        let cfg = WeblogConfig {
            rows: 5000,
            ..Default::default()
        };
        let b = generate_weblog(&cfg).unwrap();
        let statuses: Vec<i64> = b.to_rows().iter().map(|r| r[4].as_i64().unwrap()).collect();
        let ok = statuses.iter().filter(|&&s| s == 200).count() as f64 / statuses.len() as f64;
        let errs = statuses.iter().filter(|&&s| s >= 500).count() as f64 / statuses.len() as f64;
        assert!(ok > 0.8, "expected mostly 200s, got {ok}");
        assert!(errs > 0.005 && errs < 0.06, "5xx fraction {errs}");
    }

    #[test]
    fn url_popularity_is_skewed() {
        let cfg = WeblogConfig {
            rows: 5000,
            ..Default::default()
        };
        let b = generate_weblog(&cfg).unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in b.to_rows() {
            *counts
                .entry(r[2].as_str().unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let top = counts.values().max().unwrap();
        let bottom = counts.values().min().unwrap();
        assert!(top > &(bottom * 3), "Zipf skew expected: {top} vs {bottom}");
    }

    #[test]
    fn load_registers_table() {
        let catalog = Catalog::new();
        let store = InMemoryObjectStore::new();
        load_weblog(
            &catalog,
            &store,
            "logs",
            &WeblogConfig {
                rows: 300,
                ..Default::default()
            },
        )
        .unwrap();
        let t = catalog.get_table("logs", "requests").unwrap();
        assert_eq!(t.stats.row_count, 300);
        assert_eq!(t.stats.columns[2].distinct_count, Some(12));
    }
}
