//! `pixels-workload` — deterministic datasets and workload traces.
//!
//! - [`tpch`]: an eight-table TPC-H subset generator (the paper's primary
//!   evaluation workload).
//! - [`weblog`]: an Internet-access-log table (the paper's second workload
//!   class, "Internet log analysis").
//! - [`arrivals`]: Poisson / spike / diurnal arrival processes on the
//!   virtual clock, plus classed workload traces.
//! - [`queries`]: query templates over both datasets with size classes for
//!   the scheduler's cost model.

pub mod arrivals;
pub mod queries;
pub mod tpch;
pub mod weblog;

pub use arrivals::{diurnal, poisson, spike, QueryClass, TraceEntry, WorkloadTrace};
pub use queries::{
    all_queries, query_by_id, representative, QueryTemplate, TPCH_QUERIES, WEBLOG_QUERIES,
};
pub use tpch::{load_tpch, TpchConfig};
pub use weblog::{load_weblog, WeblogConfig};
