//! Query arrival processes for the scheduling experiments.
//!
//! The paper's claims about autoscaling and service levels are claims about
//! workload *shape*: sustained load (where VM clusters win), bursty spikes
//! (where CF acceleration wins), and diurnal patterns (where watermark
//! autoscaling tracks load). These generators produce those shapes
//! deterministically on the virtual clock.

use pixels_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw an exponential inter-arrival gap for a Poisson process at `rate`
/// (arrivals per second).
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Homogeneous Poisson arrivals over `[0, duration)`.
pub fn poisson(rate_per_sec: f64, duration: SimDuration, seed: u64) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0;
    let end = duration.as_secs_f64();
    loop {
        t += exp_gap(&mut rng, rate_per_sec);
        if t >= end {
            break;
        }
        out.push(SimTime::from_secs_f64(t));
    }
    out
}

/// Non-homogeneous Poisson arrivals by thinning: `rate_at(t_secs)` gives the
/// instantaneous rate; `peak_rate` must bound it from above.
pub fn inhomogeneous(
    peak_rate: f64,
    duration: SimDuration,
    seed: u64,
    rate_at: impl Fn(f64) -> f64,
) -> Vec<SimTime> {
    assert!(peak_rate > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0;
    let end = duration.as_secs_f64();
    loop {
        t += exp_gap(&mut rng, peak_rate);
        if t >= end {
            break;
        }
        let r = rate_at(t);
        debug_assert!(r <= peak_rate + 1e-9, "rate_at exceeds peak_rate");
        if rng.gen_range(0.0..1.0) < r / peak_rate {
            out.push(SimTime::from_secs_f64(t));
        }
    }
    out
}

/// A base load with one rectangular spike — the canonical shape for the
/// paper's "workload spike absorbed by CF" scenario.
pub fn spike(
    base_rate: f64,
    spike_rate: f64,
    spike_start: SimDuration,
    spike_end: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> Vec<SimTime> {
    let (s0, s1) = (spike_start.as_secs_f64(), spike_end.as_secs_f64());
    inhomogeneous(base_rate.max(spike_rate), duration, seed, move |t| {
        if t >= s0 && t < s1 {
            spike_rate
        } else {
            base_rate
        }
    })
}

/// Diurnal (sinusoidal) load: `mean_rate * (1 + amplitude * sin)` with the
/// given period. Models the paper's "typical analytical workloads".
pub fn diurnal(
    mean_rate: f64,
    amplitude: f64,
    period: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> Vec<SimTime> {
    assert!((0.0..=1.0).contains(&amplitude));
    let p = period.as_secs_f64();
    let peak = mean_rate * (1.0 + amplitude);
    inhomogeneous(peak, duration, seed, move |t| {
        mean_rate * (1.0 + amplitude * (t / p * std::f64::consts::TAU).sin())
    })
}

/// The coarse size class of a query in a workload mix; the turbo cost model
/// maps classes to work (bytes scanned / CPU time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Point-ish lookup or tiny scan (sub-second on one worker).
    Light,
    /// Single-table aggregation (seconds).
    Medium,
    /// Multi-join analytical query (tens of seconds on one worker).
    Heavy,
}

impl QueryClass {
    pub const ALL: [QueryClass; 3] = [QueryClass::Light, QueryClass::Medium, QueryClass::Heavy];

    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Light => "light",
            QueryClass::Medium => "medium",
            QueryClass::Heavy => "heavy",
        }
    }
}

/// One query submission in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    pub at: SimTime,
    pub class: QueryClass,
}

/// A deterministic sequence of query submissions.
#[derive(Debug, Clone, Default)]
pub struct WorkloadTrace {
    pub entries: Vec<TraceEntry>,
}

impl WorkloadTrace {
    /// Tag each arrival with a class drawn from `mix` (weights over
    /// light/medium/heavy).
    pub fn from_arrivals(arrivals: Vec<SimTime>, mix: [f64; 3], seed: u64) -> WorkloadTrace {
        let total: f64 = mix.iter().sum();
        assert!(total > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = arrivals
            .into_iter()
            .map(|at| {
                let mut x = rng.gen_range(0.0..total);
                let mut class = QueryClass::Heavy;
                for (c, w) in QueryClass::ALL.iter().zip(mix) {
                    if x < w {
                        class = *c;
                        break;
                    }
                    x -= w;
                }
                TraceEntry { at, class }
            })
            .collect();
        WorkloadTrace { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn duration(&self) -> SimDuration {
        self.entries
            .last()
            .map(|e| e.at.since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let arrivals = poisson(2.0, SimDuration::from_secs(1000), 1);
        let rate = arrivals.len() as f64 / 1000.0;
        assert!((rate - 2.0).abs() < 0.3, "measured rate {rate}");
        // Sorted and within bounds.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.last().unwrap() < &SimTime::from_secs(1000));
    }

    #[test]
    fn poisson_is_deterministic() {
        let a = poisson(1.0, SimDuration::from_secs(100), 9);
        let b = poisson(1.0, SimDuration::from_secs(100), 9);
        assert_eq!(a, b);
        let c = poisson(1.0, SimDuration::from_secs(100), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn spike_increases_density() {
        let arrivals = spike(
            0.5,
            20.0,
            SimDuration::from_secs(100),
            SimDuration::from_secs(200),
            SimDuration::from_secs(300),
            3,
        );
        let in_spike = arrivals
            .iter()
            .filter(|t| **t >= SimTime::from_secs(100) && **t < SimTime::from_secs(200))
            .count();
        let outside = arrivals.len() - in_spike;
        assert!(
            in_spike as f64 > outside as f64 * 5.0,
            "spike {in_spike} vs outside {outside}"
        );
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let period = SimDuration::from_secs(3600);
        let arrivals = diurnal(1.0, 0.9, period, SimDuration::from_secs(3600), 5);
        // First quarter (rising sine) should be denser than third quarter
        // (falling below mean).
        let q = |a: u64, b: u64| {
            arrivals
                .iter()
                .filter(|t| **t >= SimTime::from_secs(a) && **t < SimTime::from_secs(b))
                .count()
        };
        assert!(q(0, 900) > q(1800, 2700));
    }

    #[test]
    fn trace_mix_roughly_matches_weights() {
        let arrivals = poisson(5.0, SimDuration::from_secs(1000), 2);
        let trace = WorkloadTrace::from_arrivals(arrivals, [0.7, 0.2, 0.1], 3);
        let count = |c: QueryClass| trace.entries.iter().filter(|e| e.class == c).count() as f64;
        let n = trace.len() as f64;
        assert!((count(QueryClass::Light) / n - 0.7).abs() < 0.05);
        assert!((count(QueryClass::Heavy) / n - 0.1).abs() < 0.05);
        assert!(trace.duration() > SimDuration::from_secs(900));
    }
}
