//! Query templates over the generated datasets.
//!
//! Each template carries the SQL text (within the engine's supported
//! dialect), a size class for the scheduler's cost model, and a stable id
//! used by experiments and the text-to-SQL benchmark.

use crate::arrivals::QueryClass;

/// A named, classed query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTemplate {
    pub id: &'static str,
    /// Database the query targets ("tpch" or "logs").
    pub database: &'static str,
    pub class: QueryClass,
    pub sql: &'static str,
    /// Short human description (shown by Rover and used as gold text for
    /// the NL benchmark where applicable).
    pub description: &'static str,
}

/// TPC-H-derived templates (adapted to the supported SQL subset).
pub const TPCH_QUERIES: &[QueryTemplate] = &[
    QueryTemplate {
        id: "q1_pricing_summary",
        database: "tpch",
        class: QueryClass::Heavy,
        sql: "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
              SUM(l_extendedprice) AS sum_base_price, \
              SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
              AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, \
              COUNT(*) AS count_order \
              FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
              GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
        description: "pricing summary report per return flag and line status",
    },
    QueryTemplate {
        id: "q3_shipping_priority",
        database: "tpch",
        class: QueryClass::Heavy,
        sql: "SELECT o_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate \
              FROM customer JOIN orders ON c_custkey = o_custkey \
              JOIN lineitem ON l_orderkey = o_orderkey \
              WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' \
              AND l_shipdate > DATE '1995-03-15' \
              GROUP BY o_orderkey, o_orderdate ORDER BY revenue DESC, o_orderdate LIMIT 10",
        description: "top unshipped orders by potential revenue in the building segment",
    },
    QueryTemplate {
        id: "q5_local_supplier_volume",
        database: "tpch",
        class: QueryClass::Heavy,
        sql: "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer JOIN orders ON c_custkey = o_custkey \
              JOIN lineitem ON l_orderkey = o_orderkey \
              JOIN nation ON c_nationkey = n_nationkey \
              JOIN region ON n_regionkey = r_regionkey \
              WHERE r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' \
              AND o_orderdate < DATE '1995-01-01' \
              GROUP BY n_name ORDER BY revenue DESC",
        description: "revenue from Asian customers per nation during 1994",
    },
    QueryTemplate {
        id: "q6_forecast_revenue",
        database: "tpch",
        class: QueryClass::Medium,
        sql: "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
              WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
              AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        description: "revenue increase from eliminating small discounts in 1994",
    },
    QueryTemplate {
        id: "q10_returned_items",
        database: "tpch",
        class: QueryClass::Heavy,
        sql: "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer JOIN orders ON c_custkey = o_custkey \
              JOIN lineitem ON l_orderkey = o_orderkey \
              WHERE o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
              AND l_returnflag = 'R' \
              GROUP BY c_custkey, c_name ORDER BY revenue DESC LIMIT 20",
        description: "customers who returned the most revenue in late 1993",
    },
    QueryTemplate {
        id: "orders_by_status",
        database: "tpch",
        class: QueryClass::Medium,
        sql: "SELECT o_orderstatus, COUNT(*) AS n, AVG(o_totalprice) AS avg_price \
              FROM orders GROUP BY o_orderstatus ORDER BY n DESC",
        description: "order counts and average price per order status",
    },
    QueryTemplate {
        id: "top_customers",
        database: "tpch",
        class: QueryClass::Medium,
        sql: "SELECT c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC LIMIT 10",
        description: "ten customers with the highest account balance",
    },
    QueryTemplate {
        id: "customer_lookup",
        database: "tpch",
        class: QueryClass::Light,
        sql: "SELECT c_name, c_mktsegment, c_acctbal FROM customer WHERE c_custkey = 42",
        description: "look up one customer by key",
    },
    QueryTemplate {
        id: "nation_counts",
        database: "tpch",
        class: QueryClass::Light,
        sql: "SELECT n_name, COUNT(*) AS customers FROM customer \
              JOIN nation ON c_nationkey = n_nationkey GROUP BY n_name \
              ORDER BY customers DESC LIMIT 5",
        description: "nations with the most customers",
    },
];

/// Web-log analysis templates.
pub const WEBLOG_QUERIES: &[QueryTemplate] = &[
    QueryTemplate {
        id: "errors_by_url",
        database: "logs",
        class: QueryClass::Medium,
        sql: "SELECT url, COUNT(*) AS errors FROM requests WHERE status >= 500 \
              GROUP BY url ORDER BY errors DESC LIMIT 10",
        description: "urls producing the most server errors",
    },
    QueryTemplate {
        id: "traffic_by_country",
        database: "logs",
        class: QueryClass::Medium,
        sql: "SELECT country, COUNT(*) AS hits, SUM(bytes) AS total_bytes FROM requests \
              GROUP BY country ORDER BY hits DESC",
        description: "request volume and bytes served per country",
    },
    QueryTemplate {
        id: "slow_requests",
        database: "logs",
        class: QueryClass::Light,
        sql: "SELECT url, latency_ms FROM requests WHERE latency_ms > 1000 \
              ORDER BY latency_ms DESC LIMIT 20",
        description: "slowest requests above one second",
    },
    QueryTemplate {
        id: "avg_latency_by_method",
        database: "logs",
        class: QueryClass::Medium,
        sql: "SELECT method, AVG(latency_ms) AS avg_latency, COUNT(*) AS n FROM requests \
              GROUP BY method ORDER BY avg_latency DESC",
        description: "average latency per HTTP method",
    },
    QueryTemplate {
        id: "status_breakdown",
        database: "logs",
        class: QueryClass::Light,
        sql: "SELECT status, COUNT(*) AS n FROM requests GROUP BY status ORDER BY n DESC",
        description: "request count per status code",
    },
];

/// All templates.
pub fn all_queries() -> Vec<QueryTemplate> {
    TPCH_QUERIES.iter().chain(WEBLOG_QUERIES).copied().collect()
}

/// Look up a template by id.
pub fn query_by_id(id: &str) -> Option<QueryTemplate> {
    all_queries().into_iter().find(|q| q.id == id)
}

/// A representative template for each [`QueryClass`] (used by the
/// simulator to map trace entries to concrete queries).
pub fn representative(class: QueryClass) -> QueryTemplate {
    let id = match class {
        QueryClass::Light => "customer_lookup",
        QueryClass::Medium => "q6_forecast_revenue",
        QueryClass::Heavy => "q3_shipping_priority",
    };
    query_by_id(id).expect("representative template exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_parse() {
        for q in all_queries() {
            let parsed = pixels_sql::parse_query(q.sql);
            assert!(
                parsed.is_ok(),
                "{} failed to parse: {:?}",
                q.id,
                parsed.err()
            );
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all_queries().iter().map(|q| q.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn lookup_and_representatives() {
        assert!(query_by_id("q1_pricing_summary").is_some());
        assert!(query_by_id("nope").is_none());
        for c in QueryClass::ALL {
            assert_eq!(representative(c).class, c);
        }
    }
}
