//! Deterministic TPC-H-subset data generator.
//!
//! Generates the eight TPC-H tables (region, nation, supplier, customer,
//! part, partsupp, orders, lineitem) with schema-faithful column names and
//! value distributions close enough to the benchmark's for query shapes to
//! behave realistically (e.g. ~1.5% of lineitem rows per `l_shipdate`
//! month, skewless uniform keys, comment strings with low compressibility).
//! Everything is a pure function of `(scale, seed)`.

use pixels_catalog::{Catalog, CreateTable, ForeignKey};
use pixels_common::{DataType, Field, RecordBatch, Result, Schema, SchemaRef, Value};
use pixels_storage::{ObjectStore, PixelsReader, PixelsWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// TPC-H generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor: 1.0 ≈ the full benchmark's 150k customers. Tests use
    /// 0.001–0.01.
    pub scale: f64,
    pub seed: u64,
    /// Rows per row group in the generated files.
    pub row_group_rows: usize,
    /// Number of data files each table is split into (tables smaller than
    /// this keep one file). Exercises multi-file scans.
    pub files_per_table: usize,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.001,
            seed: 42,
            row_group_rows: 4096,
            files_per_table: 1,
        }
    }
}

impl TpchConfig {
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.scale) as usize).max(10)
    }
    pub fn orders(&self) -> usize {
        self.customers() * 10
    }
    pub fn parts(&self) -> usize {
        ((200_000.0 * self.scale) as usize).max(20)
    }
    pub fn suppliers(&self) -> usize {
        ((10_000.0 * self.scale) as usize).max(5)
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "STANDARD BRASS",
    "SMALL PLATED COPPER",
    "MEDIUM ANODIZED NICKEL",
    "LARGE BURNISHED STEEL",
    "ECONOMY POLISHED TIN",
    "PROMO BRUSHED ZINC",
];
const WORDS: [&str; 16] = [
    "blithely",
    "carefully",
    "furiously",
    "quickly",
    "slyly",
    "deposits",
    "requests",
    "accounts",
    "packages",
    "instructions",
    "theodolites",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "platelets",
];

/// 1992-01-01 and 1998-12-01 as days since the epoch — the TPC-H date range.
pub const START_DATE: i32 = 8036;
pub const END_DATE: i32 = 10561;

fn comment(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

// -- schemas ------------------------------------------------------------------

pub fn region_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("r_regionkey", DataType::Int64),
        Field::required("r_name", DataType::Utf8),
        Field::required("r_comment", DataType::Utf8),
    ]))
}

pub fn nation_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("n_nationkey", DataType::Int64),
        Field::required("n_name", DataType::Utf8),
        Field::required("n_regionkey", DataType::Int64),
    ]))
}

pub fn supplier_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("s_suppkey", DataType::Int64),
        Field::required("s_name", DataType::Utf8),
        Field::required("s_nationkey", DataType::Int64),
        Field::required("s_acctbal", DataType::Float64),
    ]))
}

pub fn customer_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("c_custkey", DataType::Int64),
        Field::required("c_name", DataType::Utf8),
        Field::required("c_nationkey", DataType::Int64),
        Field::required("c_acctbal", DataType::Float64),
        Field::required("c_mktsegment", DataType::Utf8),
    ]))
}

pub fn part_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("p_partkey", DataType::Int64),
        Field::required("p_name", DataType::Utf8),
        Field::required("p_brand", DataType::Utf8),
        Field::required("p_type", DataType::Utf8),
        Field::required("p_size", DataType::Int32),
        Field::required("p_retailprice", DataType::Float64),
    ]))
}

pub fn partsupp_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("ps_partkey", DataType::Int64),
        Field::required("ps_suppkey", DataType::Int64),
        Field::required("ps_availqty", DataType::Int32),
        Field::required("ps_supplycost", DataType::Float64),
    ]))
}

pub fn orders_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("o_orderkey", DataType::Int64),
        Field::required("o_custkey", DataType::Int64),
        Field::required("o_orderstatus", DataType::Utf8),
        Field::required("o_totalprice", DataType::Float64),
        Field::required("o_orderdate", DataType::Date),
        Field::required("o_orderpriority", DataType::Utf8),
    ]))
}

pub fn lineitem_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("l_orderkey", DataType::Int64),
        Field::required("l_linenumber", DataType::Int32),
        Field::required("l_partkey", DataType::Int64),
        Field::required("l_suppkey", DataType::Int64),
        Field::required("l_quantity", DataType::Float64),
        Field::required("l_extendedprice", DataType::Float64),
        Field::required("l_discount", DataType::Float64),
        Field::required("l_tax", DataType::Float64),
        Field::required("l_returnflag", DataType::Utf8),
        Field::required("l_linestatus", DataType::Utf8),
        Field::required("l_shipdate", DataType::Date),
        Field::required("l_receiptdate", DataType::Date),
    ]))
}

// -- row generation -------------------------------------------------------------

pub fn generate_region() -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Vec<Value>> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int64(i as i64),
                Value::Utf8(name.to_string()),
                Value::Utf8(comment(&mut rng, 6)),
            ]
        })
        .collect();
    RecordBatch::from_rows(region_schema(), &rows)
}

pub fn generate_nation() -> Result<RecordBatch> {
    let rows: Vec<Vec<Value>> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int64(i as i64),
                Value::Utf8(name.to_string()),
                Value::Int64(*region as i64),
            ]
        })
        .collect();
    RecordBatch::from_rows(nation_schema(), &rows)
}

pub fn generate_supplier(cfg: &TpchConfig) -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5);
    let rows: Vec<Vec<Value>> = (0..cfg.suppliers())
        .map(|i| {
            vec![
                Value::Int64(i as i64 + 1),
                Value::Utf8(format!("Supplier#{:09}", i + 1)),
                Value::Int64(rng.gen_range(0..25)),
                Value::Float64((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
            ]
        })
        .collect();
    RecordBatch::from_rows(supplier_schema(), &rows)
}

pub fn generate_customer(cfg: &TpchConfig) -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC);
    let rows: Vec<Vec<Value>> = (0..cfg.customers())
        .map(|i| {
            vec![
                Value::Int64(i as i64 + 1),
                Value::Utf8(format!("Customer#{:09}", i + 1)),
                Value::Int64(rng.gen_range(0..25)),
                Value::Float64((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
                Value::Utf8(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
            ]
        })
        .collect();
    RecordBatch::from_rows(customer_schema(), &rows)
}

pub fn generate_part(cfg: &TpchConfig) -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA);
    let rows: Vec<Vec<Value>> = (0..cfg.parts())
        .map(|i| {
            let key = i as i64 + 1;
            vec![
                Value::Int64(key),
                Value::Utf8(format!(
                    "{} {}",
                    WORDS[rng.gen_range(0..WORDS.len())],
                    WORDS[rng.gen_range(0..WORDS.len())]
                )),
                Value::Utf8(BRANDS[rng.gen_range(0..BRANDS.len())].to_string()),
                Value::Utf8(TYPES[rng.gen_range(0..TYPES.len())].to_string()),
                Value::Int32(rng.gen_range(1..=50)),
                Value::Float64(900.0 + (key % 1000) as f64 / 10.0),
            ]
        })
        .collect();
    RecordBatch::from_rows(part_schema(), &rows)
}

pub fn generate_partsupp(cfg: &TpchConfig) -> Result<RecordBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37);
    let suppliers = cfg.suppliers() as i64;
    let mut rows = Vec::new();
    for p in 0..cfg.parts() {
        for s in 0..4 {
            rows.push(vec![
                Value::Int64(p as i64 + 1),
                Value::Int64((p as i64 + s * 7) % suppliers + 1),
                Value::Int32(rng.gen_range(1..10_000)),
                Value::Float64((rng.gen_range(100..100_000) as f64) / 100.0),
            ]);
        }
    }
    RecordBatch::from_rows(partsupp_schema(), &rows)
}

const O_STATUS: [&str; 3] = ["F", "O", "P"];

/// Orders and lineitem are generated together so FK relationships and the
/// `o_totalprice` ≈ sum of line prices invariant hold.
pub fn generate_orders_lineitem(cfg: &TpchConfig) -> Result<(RecordBatch, RecordBatch)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let customers = cfg.customers() as i64;
    let parts = cfg.parts() as i64;
    let suppliers = cfg.suppliers() as i64;
    let mut order_rows = Vec::with_capacity(cfg.orders());
    let mut line_rows = Vec::new();
    for o in 0..cfg.orders() {
        let orderkey = o as i64 + 1;
        let orderdate = rng.gen_range(START_DATE..END_DATE - 151);
        let lines = rng.gen_range(1..=7);
        let mut total = 0.0;
        let mut any_open = false;
        for ln in 0..lines {
            let quantity = rng.gen_range(1..=50) as f64;
            let partkey = rng.gen_range(0..parts) + 1;
            let price = (900.0 + (partkey % 1000) as f64 / 10.0) * quantity;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            // Return flag / line status follow the TPC-H rule: lines shipped
            // long ago are 'F' (finished), recent ones 'O' (open).
            let cutoff = 9839; // 1995-06-17
            let (returnflag, linestatus) = if shipdate <= cutoff {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if linestatus == "O" {
                any_open = true;
            }
            total += price * (1.0 - discount) * (1.0 + tax);
            line_rows.push(vec![
                Value::Int64(orderkey),
                Value::Int32(ln + 1),
                Value::Int64(partkey),
                Value::Int64((partkey + ln as i64 * 13) % suppliers + 1),
                Value::Float64(quantity),
                Value::Float64(price),
                Value::Float64(discount),
                Value::Float64(tax),
                Value::Utf8(returnflag.to_string()),
                Value::Utf8(linestatus.to_string()),
                Value::Date(shipdate),
                Value::Date(receiptdate),
            ]);
        }
        let status = if any_open {
            if rng.gen_bool(0.3) {
                O_STATUS[2]
            } else {
                O_STATUS[1]
            }
        } else {
            O_STATUS[0]
        };
        order_rows.push(vec![
            Value::Int64(orderkey),
            Value::Int64(rng.gen_range(0..customers) + 1),
            Value::Utf8(status.to_string()),
            Value::Float64((total * 100.0).round() / 100.0),
            Value::Date(orderdate),
            Value::Utf8(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string()),
        ]);
    }
    Ok((
        RecordBatch::from_rows(orders_schema(), &order_rows)?,
        RecordBatch::from_rows(lineitem_schema(), &line_rows)?,
    ))
}

// -- loading into catalog + store ---------------------------------------------

/// Generate the full TPC-H subset into `store` under `db` and register every
/// table (schemas, foreign keys, statistics, NDV estimates) in `catalog`.
pub fn load_tpch(
    catalog: &Catalog,
    store: &dyn ObjectStore,
    db: &str,
    cfg: &TpchConfig,
) -> Result<()> {
    catalog.create_database(db);
    let region = generate_region()?;
    let nation = generate_nation()?;
    let supplier = generate_supplier(cfg)?;
    let customer = generate_customer(cfg)?;
    let part = generate_part(cfg)?;
    let partsupp = generate_partsupp(cfg)?;
    let (orders, lineitem) = generate_orders_lineitem(cfg)?;

    let fk = |col: &str, t: &str, rc: &str| ForeignKey {
        column: col.into(),
        ref_table: t.into(),
        ref_column: rc.into(),
    };

    type TableSpec<'a> = (
        &'a str,
        SchemaRef,
        RecordBatch,
        Option<&'a str>,
        Vec<ForeignKey>,
        &'a str,
    );
    let tables: Vec<TableSpec<'_>> = vec![
        (
            "region",
            region_schema(),
            region,
            Some("r_regionkey"),
            vec![],
            "world regions",
        ),
        (
            "nation",
            nation_schema(),
            nation,
            Some("n_nationkey"),
            vec![fk("n_regionkey", "region", "r_regionkey")],
            "nations and their regions",
        ),
        (
            "supplier",
            supplier_schema(),
            supplier,
            Some("s_suppkey"),
            vec![fk("s_nationkey", "nation", "n_nationkey")],
            "parts suppliers",
        ),
        (
            "customer",
            customer_schema(),
            customer,
            Some("c_custkey"),
            vec![fk("c_nationkey", "nation", "n_nationkey")],
            "registered customers with market segment and account balance",
        ),
        (
            "part",
            part_schema(),
            part,
            Some("p_partkey"),
            vec![],
            "parts for sale",
        ),
        (
            "partsupp",
            partsupp_schema(),
            partsupp,
            None,
            vec![
                fk("ps_partkey", "part", "p_partkey"),
                fk("ps_suppkey", "supplier", "s_suppkey"),
            ],
            "part availability per supplier",
        ),
        (
            "orders",
            orders_schema(),
            orders,
            Some("o_orderkey"),
            vec![fk("o_custkey", "customer", "c_custkey")],
            "customer orders with status, price, and date",
        ),
        (
            "lineitem",
            lineitem_schema(),
            lineitem,
            None,
            vec![fk("l_orderkey", "orders", "o_orderkey")],
            "order line items: quantities, prices, discounts, ship dates",
        ),
    ];

    for (name, schema, batch, pk, fks, desc) in tables {
        catalog.create_table(CreateTable {
            database: db.into(),
            name: name.into(),
            schema: schema.clone(),
            primary_key: pk.map(|s| s.to_string()),
            foreign_keys: fks,
            comment: Some(desc.into()),
        })?;
        // Split the table across the configured number of data files.
        let files = cfg.files_per_table.max(1).min(batch.num_rows().max(1));
        let rows_per_file = batch.num_rows().div_ceil(files);
        let mut offset = 0;
        let mut part = 0;
        while offset < batch.num_rows() || (batch.num_rows() == 0 && part == 0) {
            let len = rows_per_file.min(batch.num_rows() - offset);
            let slice = if batch.num_rows() == 0 {
                batch.clone()
            } else {
                batch.slice(offset, len)?
            };
            let path = format!("{db}/{name}/part-{part}.pxl");
            let mut w =
                PixelsWriter::with_row_group_rows(store, &path, schema.clone(), cfg.row_group_rows);
            w.write_batch(&slice)?;
            let size = w.finish()?;
            let reader = PixelsReader::open(store, &path)?;
            catalog.register_data_file(db, name, &path, reader.footer(), size)?;
            offset += len;
            part += 1;
            if batch.num_rows() == 0 {
                break;
            }
        }
        // Record generator-known NDVs for the planner.
        let ndvs: &[(&str, u64)] = match name {
            "customer" => &[("c_custkey", 0), ("c_nationkey", 25), ("c_mktsegment", 5)],
            "orders" => &[("o_orderstatus", 3), ("o_orderpriority", 5)],
            "lineitem" => &[("l_returnflag", 3), ("l_linestatus", 2)],
            "nation" => &[("n_regionkey", 5)],
            _ => &[],
        };
        for (col, ndv) in ndvs {
            let ndv = if *ndv == 0 {
                batch_rows(catalog, db, name)
            } else {
                *ndv
            };
            catalog.set_distinct_count(db, name, col, ndv)?;
        }
    }
    Ok(())
}

fn batch_rows(catalog: &Catalog, db: &str, name: &str) -> u64 {
    catalog
        .get_table(db, name)
        .map(|t| t.stats.row_count)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixels_storage::InMemoryObjectStore;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig::default();
        let a = generate_customer(&cfg).unwrap();
        let b = generate_customer(&cfg).unwrap();
        assert_eq!(a, b);
        let (o1, l1) = generate_orders_lineitem(&cfg).unwrap();
        let (o2, l2) = generate_orders_lineitem(&cfg).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_customer(&TpchConfig::default()).unwrap();
        let b = generate_customer(&TpchConfig {
            seed: 43,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn row_counts_scale() {
        let cfg = TpchConfig {
            scale: 0.002,
            ..Default::default()
        };
        assert_eq!(cfg.customers(), 300);
        assert_eq!(cfg.orders(), 3000);
        let c = generate_customer(&cfg).unwrap();
        assert_eq!(c.num_rows(), 300);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let cfg = TpchConfig::default();
        let (orders, lineitem) = generate_orders_lineitem(&cfg).unwrap();
        let customers = cfg.customers() as i64;
        for row in orders.to_rows() {
            let cust = row[1].as_i64().unwrap();
            assert!(cust >= 1 && cust <= customers);
        }
        let order_count = orders.num_rows() as i64;
        for row in lineitem.to_rows().iter().take(500) {
            let ok = row[0].as_i64().unwrap();
            assert!(ok >= 1 && ok <= order_count);
            let ship = match row[10] {
                Value::Date(d) => d,
                _ => panic!("expected date"),
            };
            assert!(ship > START_DATE && ship < END_DATE + 121);
        }
    }

    #[test]
    fn load_registers_everything() {
        let catalog = Catalog::new();
        let store = InMemoryObjectStore::new();
        let cfg = TpchConfig {
            scale: 0.0005,
            ..Default::default()
        };
        load_tpch(&catalog, &store, "tpch", &cfg).unwrap();
        let tables = catalog.list_tables("tpch").unwrap();
        assert_eq!(tables.len(), 8);
        let li = catalog.get_table("tpch", "lineitem").unwrap();
        assert!(li.stats.row_count > 0);
        assert!(li.stats.total_bytes > 0);
        assert_eq!(li.foreign_keys.len(), 1);
        let c = catalog.get_table("tpch", "customer").unwrap();
        assert_eq!(c.stats.columns[4].distinct_count, Some(5));
    }
}
